#!/usr/bin/env python
"""CI smoke for the durable state store.

Two gates, both cheap enough for every CI pass:

1. **Corruption detection** — save a checkpoint, flip one byte in one
   cell blob, and assert ``repro state inspect`` exits non-zero.
2. **Restore parity** — save at half the horizon, restore, run to the
   full horizon, and assert ``metrics_key()`` equality with the
   uninterrupted run (the store's core bit-identity contract).

Run from the repository root::

    PYTHONPATH=src python scripts/state_smoke.py
"""

import sys
import tempfile
from dataclasses import replace
from pathlib import Path

from repro.simulation.scenarios import stationary
from repro.simulation.simulator import CellularSimulator
from repro.state import inspect_state, restore_simulator, save_checkpoint


def check_corruption_detected(config, scratch: Path) -> None:
    sim = CellularSimulator(replace(config, duration=60.0))
    sim.run()
    path = save_checkpoint(sim, scratch / "corrupt-me")
    if inspect_state(path, out=lambda _line: None) != 0:
        raise SystemExit("fresh checkpoint failed inspection")
    blob = path / "cells" / "cell_0003.bin"
    data = bytearray(blob.read_bytes())
    data[len(data) // 2] ^= 0xFF
    blob.write_bytes(bytes(data))
    if inspect_state(path, out=lambda _line: None) == 0:
        raise SystemExit("inspect accepted a corrupted blob")
    print("corruption smoke: one flipped byte detected, non-zero exit")


def check_restore_parity(config, scratch: Path) -> None:
    full = CellularSimulator(config).run()
    half = CellularSimulator(replace(config, duration=config.duration / 2))
    half.run()
    path = save_checkpoint(half, scratch / "parity")
    resumed = restore_simulator(path, config).run()
    if resumed.metrics_key() != full.metrics_key():
        raise SystemExit("restored run diverged from the straight run")
    print(
        "parity smoke: save @ "
        f"{config.duration / 2:g}s -> load -> run to {config.duration:g}s"
        " is bit-identical"
        f" (P_CB={full.blocking_probability:.4f},"
        f" {full.events_processed} events)"
    )


def main() -> None:
    config = stationary(
        "AC3", offered_load=150.0, voice_ratio=0.8, duration=240.0, seed=7
    )
    with tempfile.TemporaryDirectory() as scratch:
        scratch = Path(scratch)
        check_corruption_detected(config, scratch)
        check_restore_parity(config, scratch)
    print("state smoke OK")


if __name__ == "__main__":
    sys.exit(main())
