#!/usr/bin/env python
"""CI smoke check of the observability layer.

Runs one short telemetry-enabled scenario through the CLI (JSON logs
on), then asserts that the Prometheus export parses and that the key
series — events fired/rate, Eq. 4 kernel dispatch counts, estimation
snapshot hits — are present and non-zero.  A second section runs a
2-shard spatial city with streaming sampling and epoch tracing on and
asserts the JSONL stream is well-formed with per-shard rows and the
Chrome trace contains the barrier-phase spans.  Exercised by
``scripts/ci.sh``; runnable standalone::

    PYTHONPATH=src python scripts/telemetry_smoke.py
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

from repro.cli import main as cli_main
from repro.obs import parse_prometheus, span_names

#: Series that must exist with a strictly positive value.
REQUIRED_NONZERO = (
    "repro_des_events_fired",
    "repro_des_events_per_sec",
    'repro_estimation_snapshot{outcome="hit"}',
    "repro_cellular_reservation_updates",
    "repro_window_handoffs",
)


def check_streaming(tmp: Path) -> list[str]:
    """2-shard spatial run: JSONL stream + barrier-phase trace spans."""
    series_path = tmp / "stream.jsonl"
    trace_path = tmp / "trace.json"
    exit_code = cli_main(
        [
            "run",
            "--shards", "2",
            "--inline-shards",
            "--hex", "6x6",
            "--duration", "60",
            "--load", "150",
            "--seed", "5",
            "--series", "5",
            "--series-out", str(series_path),
            "--trace-out", str(trace_path),
            "--log-level", "warning",
        ]
    )
    if exit_code != 0:
        return [f"spatial streaming run exited {exit_code}"]
    problems = []
    rows = []
    for line in series_path.read_text(encoding="utf-8").splitlines():
        if not line.strip():
            continue
        try:
            rows.append(json.loads(line))
        except json.JSONDecodeError:
            problems.append(f"malformed JSONL line: {line[:60]!r}")
    if not rows:
        problems.append("series stream is empty")
    shards_seen = {
        row["shard"] for row in rows if row.get("shard") is not None
    }
    if shards_seen != {0, 1}:
        problems.append(f"expected rows from shards 0 and 1, saw"
                        f" {sorted(shards_seen)}")
    if not any("events_per_s" in row for row in rows):
        problems.append("no events_per_s in any series row")
    trace = json.loads(trace_path.read_text(encoding="utf-8"))
    events = trace.get("traceEvents", [])
    names = span_names(events)
    barrier_spans = {
        name for name in names if name.startswith(("barrier.", "epoch."))
    }
    if len(barrier_spans) < 3:
        problems.append(
            f"expected >= 3 distinct barrier-phase span names, got"
            f" {sorted(barrier_spans)}"
        )
    if not problems:
        print(
            f"streaming smoke OK: {len(rows)} samples from"
            f" {len(shards_seen)} shards, {len(events)} trace events,"
            f" spans: {', '.join(sorted(names))}"
        )
    return problems


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        prom_path = Path(tmp) / "smoke.prom"
        json_path = Path(tmp) / "smoke.json"
        exit_code = cli_main(
            [
                "run",
                "--duration", "120",
                "--load", "200",
                "--seed", "5",
                "--telemetry",
                "--log-json",
                "--log-level", "warning",
                "--prom-out", str(prom_path),
                "--telemetry-json", str(json_path),
            ]
        )
        if exit_code != 0:
            print(f"FAIL: CLI run exited {exit_code}", file=sys.stderr)
            return 1
        series = parse_prometheus(prom_path.read_text(encoding="utf-8"))
        problems = []
        for name in REQUIRED_NONZERO:
            value = series.get(name)
            if value is None:
                problems.append(f"missing series {name}")
            elif value <= 0:
                problems.append(f"series {name} is {value}, expected > 0")
        # The Eq. 4 dispatch counters split by kernel; at least one side
        # must have seen batches.
        dispatched = sum(
            value
            for key, value in series.items()
            if key.startswith("repro_estimation_eq4_batches")
        )
        if dispatched <= 0:
            problems.append("no Eq. 4 batches dispatched")
        if not json_path.exists():
            problems.append("telemetry JSON snapshot not written")
        if problems:
            for problem in problems:
                print(f"FAIL: {problem}", file=sys.stderr)
            return 1
        print(
            f"telemetry smoke OK: {len(series)} series,"
            f" {series['repro_des_events_fired']:.0f} events,"
            f" {dispatched:.0f} Eq. 4 batches"
        )
        problems = check_streaming(Path(tmp))
        if problems:
            for problem in problems:
                print(f"FAIL: {problem}", file=sys.stderr)
            return 1
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
