#!/usr/bin/env python
"""CI smoke check of the observability layer.

Runs one short telemetry-enabled scenario through the CLI (JSON logs
on), then asserts that the Prometheus export parses and that the key
series — events fired/rate, Eq. 4 kernel dispatch counts, estimation
snapshot hits — are present and non-zero.  Exercised by
``scripts/ci.sh``; runnable standalone::

    PYTHONPATH=src python scripts/telemetry_smoke.py
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.cli import main as cli_main
from repro.obs import parse_prometheus

#: Series that must exist with a strictly positive value.
REQUIRED_NONZERO = (
    "repro_des_events_fired",
    "repro_des_events_per_sec",
    'repro_estimation_snapshot{outcome="hit"}',
    "repro_cellular_reservation_updates",
    "repro_window_handoffs",
)


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        prom_path = Path(tmp) / "smoke.prom"
        json_path = Path(tmp) / "smoke.json"
        exit_code = cli_main(
            [
                "run",
                "--duration", "120",
                "--load", "200",
                "--seed", "5",
                "--telemetry",
                "--log-json",
                "--log-level", "warning",
                "--prom-out", str(prom_path),
                "--telemetry-json", str(json_path),
            ]
        )
        if exit_code != 0:
            print(f"FAIL: CLI run exited {exit_code}", file=sys.stderr)
            return 1
        series = parse_prometheus(prom_path.read_text(encoding="utf-8"))
        problems = []
        for name in REQUIRED_NONZERO:
            value = series.get(name)
            if value is None:
                problems.append(f"missing series {name}")
            elif value <= 0:
                problems.append(f"series {name} is {value}, expected > 0")
        # The Eq. 4 dispatch counters split by kernel; at least one side
        # must have seen batches.
        dispatched = sum(
            value
            for key, value in series.items()
            if key.startswith("repro_estimation_eq4_batches")
        )
        if dispatched <= 0:
            problems.append("no Eq. 4 batches dispatched")
        if not json_path.exists():
            problems.append("telemetry JSON snapshot not written")
        if problems:
            for problem in problems:
                print(f"FAIL: {problem}", file=sys.stderr)
            return 1
        print(
            f"telemetry smoke OK: {len(series)} series,"
            f" {series['repro_des_events_fired']:.0f} events,"
            f" {dispatched:.0f} Eq. 4 batches"
        )
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
