#!/bin/sh
# CI gate: tier-1 test suite plus a smoke pass of the benchmark harness.
# Run from the repository root:  sh scripts/ci.sh
set -e

cd "$(dirname "$0")/.."

echo "== tier-1 tests =="
PYTHONPATH=src python -m pytest -x -q

echo "== benchmark smoke =="
PYTHONPATH=src python scripts/bench.py --smoke --output /tmp/bench-smoke.json
rm -f /tmp/bench-smoke.json

echo "CI OK"
