#!/bin/sh
# CI gate: tier-1 test suite plus a smoke pass of the benchmark harness
# compared against the newest committed BENCH_<date>.json baseline.
# Run from the repository root:  sh scripts/ci.sh
set -e

cd "$(dirname "$0")/.."

echo "== tier-1 tests =="
PYTHONPATH=src python -m pytest -x -q

echo "== kernel matrix =="
# All backends must be bit-identical, so the kernel-sensitive suites
# re-run under each forced backend.  numba is optional: when absent
# its leg is skipped with a notice (requesting it would error).
KERNEL_TESTS="tests/properties/test_kernel_backend_parity.py \
    tests/cellular/test_reservation_cache.py tests/estimation \
    tests/simulation/test_columnar.py tests/simulation/test_spatial.py"
for KERNEL in python numpy; do
    echo "-- REPRO_KERNEL=$KERNEL --"
    REPRO_KERNEL=$KERNEL PYTHONPATH=src python -m pytest -x -q $KERNEL_TESTS
done
if PYTHONPATH=src python -c "import numba" 2>/dev/null; then
    echo "-- REPRO_KERNEL=numba --"
    REPRO_KERNEL=numba PYTHONPATH=src python -m pytest -x -q $KERNEL_TESTS
else
    echo "-- numba not installed; skipping the numba kernel leg --"
fi

echo "== telemetry smoke =="
PYTHONPATH=src python scripts/telemetry_smoke.py

echo "== benchmark smoke =="
# A slightly longer-than-smoke measuring window keeps the regression
# comparison out of timer-noise territory while staying CI-cheap.
# A missing/never-committed baseline is tolerated: bench.py warns and
# skips the comparison instead of failing the gate.
BASELINE=$(git ls-files 'BENCH_*.json' 2>/dev/null | sort | tail -n 1 || true)
if [ -n "$BASELINE" ]; then
    echo "comparing against $BASELINE"
    REPRO_BENCH_DURATION=0.3 PYTHONPATH=src python scripts/bench.py \
        --output /tmp/bench-smoke.json \
        --compare "$BASELINE"
else
    echo "no committed BENCH_*.json baseline; skipping comparison"
    PYTHONPATH=src python scripts/bench.py --smoke \
        --output /tmp/bench-smoke.json
fi
rm -f /tmp/bench-smoke.json

echo "== state smoke =="
# Durable state store: corruption must fail `state inspect`, and
# save -> load -> run must be bit-identical to the straight run.
PYTHONPATH=src python scripts/state_smoke.py

echo "== serve smoke =="
# Live admission service: WebSocket decision round-trip, 500 load-
# generator decisions, a well-formed streamed series frame, and a
# clean shutdown.
PYTHONPATH=src python scripts/serve_smoke.py

echo "== spatial smoke =="
# City-scale spatial sharding: a 2-shard process run must merge to the
# same metrics_key() as the single-shard in-process run.
PYTHONPATH=src python scripts/spatial_smoke.py

echo "== replication perf smoke =="
# The sharded replication runner end-to-end: warm pool, shared-memory
# columnar snapshots, merged CIs, and the scheduling-independence
# recheck (smoke mode).  Throughput gating stays with the main bench
# job above; this one exercises the machinery.
REPRO_BENCH_DURATION=0.1 PYTHONPATH=src python scripts/bench.py \
    --smoke --workers 2 --replications 4 \
    --output /tmp/bench-replication-smoke.json
rm -f /tmp/bench-replication-smoke.json

echo "CI OK"
