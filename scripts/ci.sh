#!/bin/sh
# CI gate: tier-1 test suite plus a smoke pass of the benchmark harness
# compared against the newest committed BENCH_<date>.json baseline.
# Run from the repository root:  sh scripts/ci.sh
set -e

cd "$(dirname "$0")/.."

echo "== tier-1 tests =="
PYTHONPATH=src python -m pytest -x -q

echo "== telemetry smoke =="
PYTHONPATH=src python scripts/telemetry_smoke.py

echo "== benchmark smoke =="
# A slightly longer-than-smoke measuring window keeps the regression
# comparison out of timer-noise territory while staying CI-cheap.
BASELINE=$(git ls-files 'BENCH_*.json' | sort | tail -n 1)
if [ -n "$BASELINE" ]; then
    echo "comparing against $BASELINE"
    REPRO_BENCH_DURATION=0.3 PYTHONPATH=src python scripts/bench.py \
        --output /tmp/bench-smoke.json \
        --compare "$BASELINE"
else
    PYTHONPATH=src python scripts/bench.py --smoke \
        --output /tmp/bench-smoke.json
fi
rm -f /tmp/bench-smoke.json

echo "CI OK"
