"""CI smoke for the spatial sharding runner.

Runs the same small hex city three ways — one shard in-process, two
shards in worker processes, and a hot-spot variant on a load-balanced
four-shard plan — and requires the merged ``metrics_key()`` to be
bit-identical within each scenario.  Those comparisons exercise the
whole stack: row-band and load-weighted partitioning, the epoch-barrier
protocol (mirrors, remote reservation requests/replies, migrations),
the columnar connection store, process hosts, and the cell-ascending
merge.  Exit 1 on any mismatch.
"""

import sys

sys.path.insert(0, "src")

from repro.simulation.scenarios import hex_city  # noqa: E402
from repro.simulation.spatial import run_spatial  # noqa: E402


def main() -> int:
    config = hex_city(
        "AC3",
        rows=6,
        cols=6,
        offered_load=150.0,
        voice_ratio=0.8,
        duration=60.0,
        seed=11,
    )
    single = run_spatial(config, 1, processes=False)
    sharded = run_spatial(config, 2, processes=True)
    for result, label in ((single, "1 shard, inline"),
                          (sharded, "2 shards, processes")):
        rate = (
            result.events_processed / result.wall_seconds
            if result.wall_seconds > 0
            else 0.0
        )
        print(
            f"{label:>20}: P_CB={result.blocking_probability:.4f}"
            f" P_HD={result.dropping_probability:.4f}"
            f" events={result.events_processed}"
            f" ({rate:,.0f} events/s)"
        )
    if single.metrics_key() != sharded.metrics_key():
        print("FAIL: sharded metrics differ from the single-shard run")
        return 1
    if sum(cell.handoff_attempts for cell in single.cells) == 0:
        print("FAIL: smoke scenario produced no hand-offs")
        return 1
    # Load-balanced leg: a hot-spot city on a 4-shard load-weighted
    # plan must merge identically to its own single-shard run.
    hot = hex_city(
        "AC3",
        rows=8,
        cols=6,
        offered_load=150.0,
        voice_ratio=0.8,
        duration=60.0,
        seed=11,
        hotspots=((2, 2, 3.0), (6, 4, 2.0, 1.5)),
    )
    hot_single = run_spatial(hot, 1, processes=False)
    hot_balanced = run_spatial(hot, 4, processes=True, plan_kind="load")
    rate = (
        hot_balanced.events_processed / hot_balanced.wall_seconds
        if hot_balanced.wall_seconds > 0
        else 0.0
    )
    print(
        f"{'4 shards, load plan':>20}:"
        f" P_CB={hot_balanced.blocking_probability:.4f}"
        f" P_HD={hot_balanced.dropping_probability:.4f}"
        f" events={hot_balanced.events_processed}"
        f" shard_events={list(hot_balanced.shard_events or ())}"
        f" ({rate:,.0f} events/s)"
    )
    if hot_single.metrics_key() != hot_balanced.metrics_key():
        print("FAIL: load-balanced 4-shard metrics differ from 1 shard")
        return 1
    print(
        "spatial smoke OK: 2-shard rows and 4-shard load plans are"
        " bit-identical"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
