"""CI smoke for the spatial sharding runner.

Runs the same small hex city twice — one shard in-process, two shards
in worker processes — and requires the merged ``metrics_key()`` to be
bit-identical.  That one comparison exercises the whole stack: row-band
partitioning, the epoch-barrier protocol (mirrors, remote reservation
requests/replies, migrations), the columnar connection store, process
hosts, and the cell-ascending merge.  Exit 1 on any mismatch.
"""

import sys

sys.path.insert(0, "src")

from repro.simulation.scenarios import hex_city  # noqa: E402
from repro.simulation.spatial import run_spatial  # noqa: E402


def main() -> int:
    config = hex_city(
        "AC3",
        rows=6,
        cols=6,
        offered_load=150.0,
        voice_ratio=0.8,
        duration=60.0,
        seed=11,
    )
    single = run_spatial(config, 1, processes=False)
    sharded = run_spatial(config, 2, processes=True)
    for result, label in ((single, "1 shard, inline"),
                          (sharded, "2 shards, processes")):
        rate = (
            result.events_processed / result.wall_seconds
            if result.wall_seconds > 0
            else 0.0
        )
        print(
            f"{label:>20}: P_CB={result.blocking_probability:.4f}"
            f" P_HD={result.dropping_probability:.4f}"
            f" events={result.events_processed}"
            f" ({rate:,.0f} events/s)"
        )
    if single.metrics_key() != sharded.metrics_key():
        print("FAIL: sharded metrics differ from the single-shard run")
        return 1
    if sum(cell.handoff_attempts for cell in single.cells) == 0:
        print("FAIL: smoke scenario produced no hand-offs")
        return 1
    print("spatial smoke OK: 2-shard process run is bit-identical")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
