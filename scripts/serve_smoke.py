"""CI smoke for the live admission service.

Starts an :class:`AdmissionService` with its WebSocket gateway, drives
500 decisions through the bundled load generator while a WebSocket
subscriber listens, then asserts:

* the decision API answers (an ``admit`` round-trip over the socket
  returns a decision frame carrying the reserved/used snapshot);
* the state stream produces a well-formed frame — it must parse as a
  JSON series row with the fields ``repro dash`` renders;
* shutdown is clean (worker drained, clients closed, no stray tasks).

Run from the repository root:  PYTHONPATH=src python scripts/serve_smoke.py
"""

import asyncio
import sys

from repro.serve import AdmissionService
from repro.serve.loadgen import run_load
from repro.serve.ws import AsyncWsClient, WebSocketGateway
from repro.simulation.scenarios import stationary

DECISIONS = 500


async def main() -> int:
    config = stationary(
        "AC3", offered_load=100.0, duration=3600.0, seed=5, num_cells=6
    )
    service = AdmissionService(config, series_wall_interval=0.05)
    await service.start()
    gateway = WebSocketGateway(service, port=0)
    await gateway.start()
    print(f"serve smoke: service up on {gateway.url}")

    subscriber = await AsyncWsClient.connect(gateway.url)
    await subscriber.send_json({"op": "subscribe"})

    client = await AsyncWsClient.connect(gateway.url)
    decision = await client.request({"op": "admit", "cell": 2, "id": 7})
    assert decision is not None and decision["op"] == "decision", decision
    assert decision["id"] == 7 and decision["kind"] == "arrival", decision
    for field in ("t", "cell", "admitted", "reserved", "used"):
        assert field in decision, f"decision frame missing {field!r}"
    print(f"serve smoke: decision round-trip ok ({decision['cell']=})")

    report = await run_load(
        service, decisions=DECISIONS, concurrency=8, pipeline=16
    )
    assert report.decisions >= DECISIONS, report
    print(
        f"serve smoke: {report.decisions} decisions at"
        f" {report.decisions_per_s:,.0f}/s"
        f" (P50 {report.p50_ms:.2f} ms, P99 {report.p99_ms:.2f} ms)"
    )

    # The subscriber must have received at least one well-formed series
    # frame by now (wall cadence 0.05 s, and the load took longer).
    row = await asyncio.wait_for(subscriber.recv_json(), timeout=5.0)
    assert isinstance(row, dict) and "op" not in row, row
    for field in ("t", "events", "events_per_s", "heap"):
        assert field in row, f"series frame missing {field!r}: {row}"
    print(
        f"serve smoke: series frame ok"
        f" (t={row['t']}, events={row['events']})"
    )

    stats = await client.request({"op": "stats"})
    assert stats["op"] == "stats" and stats["decisions"] > DECISIONS, stats

    await client.close()
    await subscriber.close()
    await gateway.stop()
    await service.stop()
    assert service._queue.empty(), "queue not drained at shutdown"
    pending = [
        task
        for task in asyncio.all_tasks()
        if task is not asyncio.current_task() and not task.done()
    ]
    assert not pending, f"stray tasks after shutdown: {pending}"
    print("serve smoke: clean shutdown OK")
    return 0


if __name__ == "__main__":
    sys.exit(asyncio.run(main()))
