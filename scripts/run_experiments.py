#!/usr/bin/env python
"""Run the full reproduction suite and record rendered outputs.

Writes one text file per experiment under ``results/`` plus a combined
``results/ALL.txt``.  This is the recorded-scale run behind
EXPERIMENTS.md; the pytest benchmarks run the same code CI-sized.

Usage:  python scripts/run_experiments.py [--workers N] [experiment-id ...]
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.obs import configure_logging, ensure_configured

#: Experiments whose runners accept a ``workers`` process-pool argument.
PARALLEL_EXPERIMENTS = {"fig7", "fig8+9", "fig12+13"}

#: Recorded-scale parameters per experiment (paper-comparable horizons).
SCALES: dict[str, dict[str, object]] = {
    "fig7": {"duration": 2000.0},
    "fig8+9": {"duration": 2000.0},
    "fig10+11": {"duration": 2000.0},
    "fig12+13": {"duration": 2000.0},
    "fig14": {"time_compression": 12.0},
    "table2": {"duration": 2000.0},
    "table3": {"duration": 2000.0},
    "ablation-window-steps": {"duration": 1500.0},
    "ablation-estimator-depth": {"duration": 1500.0},
    "ablation-signaling": {"duration": 800.0},
    "ablation-hex2d": {"duration": 1500.0},
    "ablation-cdma": {"duration": 1500.0},
    "ablation-wired": {"duration": 1200.0},
    "comparison-ns": {"duration": 600.0},
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("names", nargs="*", metavar="experiment-id",
                        help="experiments to run (default: all)")
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="process-pool size for the sweep experiments"
                        " (results are unchanged, only faster)")
    parser.add_argument("--log-level", default=None, metavar="SPEC",
                        help="log level spec, e.g. 'info' or"
                        " 'info,experiments=debug' (also: REPRO_LOG)")
    parser.add_argument("--log-json", action="store_true",
                        help="emit logs as JSON lines (also:"
                        " REPRO_LOG_JSON=1)")
    args = parser.parse_args(argv)
    if args.log_level is not None or args.log_json:
        configure_logging(spec=args.log_level, json_lines=args.log_json)
    else:
        ensure_configured()
    names = args.names or list(EXPERIMENTS)
    results_dir = Path(__file__).resolve().parent.parent / "results"
    results_dir.mkdir(exist_ok=True)
    combined: list[str] = []
    for name in names:
        kwargs = dict(SCALES.get(name, {}))
        if args.workers is not None and name in PARALLEL_EXPERIMENTS:
            kwargs["workers"] = args.workers
        started = time.perf_counter()
        print(f"[{time.strftime('%H:%M:%S')}] running {name} {kwargs} ...",
              flush=True)
        outputs = run_experiment(name, **kwargs)
        elapsed = time.perf_counter() - started
        for output in outputs:
            rendered = output.render()
            path = results_dir / f"{output.experiment_id}.txt"
            path.write_text(rendered + "\n")
            combined.append(rendered)
            print(f"  wrote {path} ({elapsed:.1f}s total for {name})",
                  flush=True)
    if not args.names:
        # Only a full run may rewrite the combined file; partial runs
        # would otherwise clobber it with a subset.
        (results_dir / "ALL.txt").write_text(
            "\n\n".join(combined) + "\n"
        )
    print("done")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
