#!/usr/bin/env python
"""Run the persisted benchmark harness (thin wrapper over repro.benchtool).

Usage:  python scripts/bench.py [--smoke] [--output FILE]

Writes ``BENCH_<date>.json`` in the current directory unless --output is
given.  See ``repro/benchtool.py`` for what is measured.
"""

from __future__ import annotations

import sys
from pathlib import Path

# Allow running from a source checkout without installing the package.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.benchtool import main

if __name__ == "__main__":
    raise SystemExit(main())
