#!/usr/bin/env python
"""Quickstart: hold the hand-off drop rate below 1% on a loaded highway.

Runs the paper's ring-of-10 highway at an offered load of 200 BUs/cell
twice — once with the mid-80s static guard-channel baseline, once with
the paper's predictive/adaptive AC3 scheme — and compares the two
connection-level QoS probabilities:

* ``P_CB`` — probability a *new* connection request is blocked;
* ``P_HD`` — probability an ongoing connection's *hand-off* is dropped
  (the paper's target: keep this below 0.01).
"""

from repro import simulate, stationary


def main() -> None:
    load = 200.0
    print(f"highway, 10 cells, offered load {load:g} BUs/cell, "
          "30% video traffic, 80-120 km/h\n")
    print(f"{'scheme':<10} {'P_CB':>8} {'P_HD':>9} {'avg B_r':>9}")
    for scheme in ("static", "AC3"):
        config = stationary(
            scheme,
            offered_load=load,
            voice_ratio=0.7,
            high_mobility=True,
            duration=1200.0,
            seed=42,
        )
        result = simulate(config)
        flag = "" if result.dropping_probability <= 0.01 else "  <- over target!"
        print(
            f"{scheme:<10} {result.blocking_probability:>8.3f} "
            f"{result.dropping_probability:>9.4f} "
            f"{result.average_reservation:>9.2f}{flag}"
        )
    print(
        "\nAC3 reserves just enough bandwidth for the hand-offs its"
        "\nmobility estimator predicts, so P_HD stays under the 1% target"
        "\nwhile the static guard either over- or under-reserves."
    )


if __name__ == "__main__":
    main()
