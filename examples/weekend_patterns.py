#!/usr/bin/env python
"""Weekday vs weekend pattern sets (paper §3.1's T_week machinery).

Mobility on weekends differs enough from weekdays that the paper keeps
*separate* sets of quadruplets for them, building the weekend estimation
functions over the weekly period T_week.  This example shows the
mechanism directly: a cell sees commuter traffic (fast, eastbound) on
weekdays and leisure traffic (slow, both ways) on weekends; a single
pooled estimator blurs the two, the calendar estimator keeps them
apart.
"""

import random

from repro.estimation import (
    CacheConfig,
    CalendarEstimator,
    MobilityEstimator,
    WeekSchedule,
)

DAY = 1000.0  # compressed day, in seconds


def feed(estimator, rng, weeks=3):
    """Record two simulated weeks of hand-off history."""
    for day in range(int(7 * weeks)):
        base = day * DAY
        weekend = day % 7 >= 5
        for index in range(40):
            event_time = base + 100.0 + index * 20.0
            if weekend:
                # Leisure: slow, either direction.
                next_cell = 2 if rng.random() < 0.5 else 4
                sojourn = rng.uniform(80.0, 140.0)
            else:
                # Commute: fast, almost all continue east (cell 2).
                next_cell = 2 if rng.random() < 0.95 else 4
                sojourn = rng.uniform(25.0, 40.0)
            estimator.record_departure(event_time, 1, next_cell, sojourn)


def probe(estimator, label, now):
    ph = estimator.handoff_probabilities(now, 1, extant_sojourn=10.0,
                                         t_est=40.0)
    east = ph.get(2, 0.0)
    south = ph.get(4, 0.0)
    print(f"  {label:<22} p(east)={east:.2f} p(south)={south:.2f}")


def main() -> None:
    rng = random.Random(0)
    pooled = MobilityEstimator(CacheConfig(interval=None))
    feed(pooled, random.Random(0))
    calendar = CalendarEstimator(
        schedule=WeekSchedule(day_seconds=DAY), interval=DAY / 2
    )
    feed(calendar, random.Random(0))

    weekday_noon = 21 * DAY + 500.0   # day 21 = a Monday
    weekend_noon = 26 * DAY + 500.0   # day 26 = a Saturday
    print("probability of handing off within 40 s, mobile here for 10 s\n")
    print("pooled history (no pattern sets):")
    probe(pooled, "any day", weekday_noon)
    print("\ncalendar estimator (weekday/weekend sets):")
    probe(calendar, "weekday query", weekday_noon)
    probe(calendar, "weekend query", weekend_noon)
    print(
        "\nThe pooled estimator mixes commuters with weekend wanderers"
        "\nand hedges both predictions; the calendar estimator answers"
        "\nweekday queries from weekday history (fast, eastbound) and"
        "\nweekend queries from weekend history (slow: in 40 s almost"
        "\nnobody leaves)."
    )


if __name__ == "__main__":
    main()
