#!/usr/bin/env python
"""QoS adaptation on top of the reservation scheme (paper §1).

The paper notes its scheme composes with adaptive QoS: a video hand-off
that does not fit at 4 BUs can be accepted degraded (down to its 1-BU
base layer) instead of being dropped, freed bandwidth upgrades degraded
sessions back, and the reservation targets are computed on the minimum
QoS basis.  This example runs the same over-loaded mixed-traffic highway
with and without the adaptation layer and shows where the hand-off
losses went.
"""

from dataclasses import replace

from repro.core.qos import AdaptiveQoSPolicy
from repro.simulation import CellularSimulator, stationary


def main() -> None:
    base = stationary(
        "AC3",
        offered_load=250.0,
        voice_ratio=0.5,
        duration=1500.0,
        warmup=500.0,
        seed=9,
    )
    print("over-loaded highway, 50% video, AC3\n")
    print(f"{'variant':<14} {'P_CB':>7} {'P_HD':>8} {'degraded':>9} "
          f"{'upgraded':>9}")
    for label, config in (
        ("rigid", base),
        ("adaptive QoS", replace(base, adaptive_qos=True)),
    ):
        simulator = CellularSimulator(config)
        result = simulator.run()
        policy = simulator.policy
        degradations = getattr(policy, "degradations", 0)
        upgrades = getattr(policy, "upgrades", 0)
        print(
            f"{label:<14} {result.blocking_probability:>7.3f} "
            f"{result.dropping_probability:>8.4f} {degradations:>9} "
            f"{upgrades:>9}"
        )
        if isinstance(policy, AdaptiveQoSPolicy):
            drops = sum(c.handoff_drops for c in result.cells)
            print(
                f"\n{degradations} hand-offs continued at reduced rate"
                f" instead of joining the {drops} hard drops;"
                f"\n{upgrades} upgrades restored full rate when bandwidth"
                " freed up."
            )


if __name__ == "__main__":
    main()
