#!/usr/bin/env python
"""Inspecting the mobility estimator: footprints and Bayes updates.

Uses the estimation API directly (no simulator) to show how a base
station turns its hand-off history into predictions — the Figure 4/5
story.  We synthesize a cell whose traffic from the west (prev=1)
either continues east quickly (cell 2) or turns off slowly (cell 4),
and then watch the hand-off probability evolve as a mobile lingers.
"""

import random

from repro.estimation import CacheConfig, MobilityEstimator


def main() -> None:
    rng = random.Random(0)
    estimator = MobilityEstimator(CacheConfig(interval=None))
    # History: 70% of westbound mobiles cross to cell 2 within 18-40 s
    # (highway), 30% turn toward cell 4 after 90-150 s (local road).
    for index in range(200):
        if rng.random() < 0.7:
            estimator.record_departure(
                float(index), 1, 2, rng.uniform(18.0, 40.0)
            )
        else:
            estimator.record_departure(
                float(index), 1, 4, rng.uniform(90.0, 150.0)
            )

    snapshot = estimator.function_for(1000.0, 1)
    print("F_HOE footprint for prev=1 (mass per next cell):")
    for next_cell in sorted(snapshot.next_cells()):
        mass = snapshot.mass_above(next_cell, 0.0)
        largest = max(s for s, _ in snapshot.footprint()[next_cell])
        print(f"  next={next_cell}: mass={mass:.0f}, max sojourn={largest:.0f}s")

    print("\nBayes update as a mobile from cell 1 lingers (T_est = 30 s):")
    print(f"{'extant sojourn':>15} {'p(-> 2)':>9} {'p(-> 4)':>9} {'verdict'}")
    for extant in (0.0, 25.0, 50.0, 100.0, 200.0):
        to_highway = estimator.handoff_probability(1000.0, 1, extant, 2, 30.0)
        to_local = estimator.handoff_probability(1000.0, 1, extant, 4, 30.0)
        if estimator.is_stationary(1000.0, 1, extant):
            verdict = "estimated stationary"
        elif max(to_highway, to_local) < 0.05:
            verdict = "no hand-off expected within 30 s"
        elif to_highway > to_local:
            verdict = "probably continuing east"
        else:
            verdict = "probably turning off"
        print(f"{extant:>13.0f}s {to_highway:>9.3f} {to_local:>9.3f} {verdict}")

    print(
        "\nA fresh mobile looks like highway traffic; once it has stayed"
        "\npast ~40 s the highway mass is ruled out and the estimator"
        "\nreassigns all probability to the slow turn — and past the"
        "\nlongest observed sojourn it declares the mobile stationary."
    )


if __name__ == "__main__":
    main()
