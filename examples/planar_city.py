#!/usr/bin/env python
"""Geometric 2-D mobility: straight-line travel on a hex-tiled plane.

The paper's future work (§7) asks for "more realistic moving patterns"
in two dimensions.  :class:`~repro.mobility.PlanarHexModel` gives every
mobile real coordinates: it travels in a straight line at constant
speed (the 2-D analogue of assumption A4), and hand-offs happen exactly
where its path crosses a Voronoi boundary between cell centers.

Straight lines make mobility *predictable from history*: a mobile that
entered a cell from the west almost surely exits east.  This example
runs AC3 on a 4x6-cell district and then interrogates one base
station's learned estimation function to show it discovered that
structure on its own — no coordinates ever reach the estimator.
"""

from repro.cellular.topology import HexTopology
from repro.mobility import (
    HexGeometry,
    PlanarHexModel,
    UniformSpeedSampler,
)
from repro.simulation import CellularSimulator, stationary


def main() -> None:
    topology = HexTopology(4, 6, wrap=False)
    geometry = HexGeometry(topology)  # 1 km cells
    model = PlanarHexModel(
        geometry,
        UniformSpeedSampler(60.0, 100.0),
        stationary_fraction=0.25,
    )
    config = stationary("AC3", offered_load=120.0, voice_ratio=0.8,
                        duration=1500.0, seed=12)
    simulator = CellularSimulator(config, mobility_model=model)
    result = simulator.run()
    print(
        f"4x6 hex district, 25% stationary users:"
        f" P_CB={result.blocking_probability:.3f}"
        f" P_HD={result.dropping_probability:.4f}\n"
    )

    center = topology.cell_id(2, 2)
    station = simulator.network.station(center)
    print(f"what cell ({2},{2})'s base station learned "
          "(hand-off probability by previous cell, T_est=60 s):")
    for prev_name, prev in (("west", topology.cell_id(2, 1)),
                            ("east", topology.cell_id(2, 3))):
        probabilities = station.estimator.handoff_probabilities(
            config.duration, prev, extant_sojourn=5.0, t_est=60.0
        )
        ranked = sorted(
            probabilities.items(), key=lambda item: -item[1]
        )[:3]
        rendered = ", ".join(
            f"{topology.coordinates(cell)}:{probability:.2f}"
            for cell, probability in ranked
        )
        print(f"  entered from the {prev_name}: {rendered}")
    print(
        "\nStraight lines never turn back: the learned mass sits on the"
        "\nforward and lateral edges and essentially none on the edge the"
        "\nmobile came through — the aggregate quadruplet history alone"
        "\nrecovered the geometry, no coordinates needed."
    )


if __name__ == "__main__":
    main()
