#!/usr/bin/env python
"""End-to-end reservation including the wired backbone (paper §2/§7).

The paper evaluates wireless-link reservation only, but describes the
extension: a connection also occupies the wired links from its base
station to the gateway, hand-offs re-route, and the per-cell hand-off
targets (B_r) map onto the wired links along each cell's route.

Here the 10-cell highway hangs off a chain of routers (2 cells each)
with the gateway at one end — far cells cross four trunk hops — and we
compare three configurations under the same radio conditions:

* no backbone model (the paper's evaluation);
* best-effort backbone (wired admission, no wired reservation);
* predictive backbone (wired links reserve for expected re-routes).
"""

from repro.simulation import CellularSimulator, stationary
from repro.wired import (
    WiredBackboneExtension,
    WiredReservationManager,
    chain_backbone,
)


def run(label, manager):
    config = stationary(
        "AC3", offered_load=200.0, voice_ratio=0.8, duration=1200.0,
        warmup=300.0, seed=6,
    )
    extensions = []
    if manager is not None:
        extensions.append(WiredBackboneExtension(manager))
    simulator = CellularSimulator(config, extensions=extensions)
    result = simulator.run()
    line = (
        f"{label:<24} P_CB={result.blocking_probability:.3f} "
        f"P_HD={result.dropping_probability:.4f}"
    )
    if manager is not None:
        line += (
            f"  wired: blocks={manager.wired_blocks}"
            f" drops={manager.wired_drops}"
            f" reroutes={manager.reroutes}"
            f" max-util={manager.max_utilization():.2f}"
        )
    print(line)


def main() -> None:
    print("10-cell highway on a router chain, gateway at one end\n")
    run("radio only", None)
    run(
        "best-effort backbone",
        WiredReservationManager(
            chain_backbone(10, access_capacity=250.0, trunk_capacity=450.0),
            predictive=False,
        ),
    )
    run(
        "predictive backbone",
        WiredReservationManager(
            chain_backbone(10, access_capacity=250.0, trunk_capacity=450.0),
            predictive=True,
        ),
    )
    print(
        "\nWith tight trunks the backbone becomes the real bottleneck:"
        "\nblocking shifts from the radio to the wired layer while P_HD"
        "\nstays at zero.  Note the structural reason hand-offs survive"
        "\neven best-effort wired admission: in a tree-like backbone a"
        "\nre-route only *adds* links near the mobile (access + maybe one"
        "\ntrunk); the loaded aggregation links toward the gateway are"
        "\nshared with the old route and keep their allocation.  The"
        "\npredictive variant additionally keeps trunk utilization under"
        "\n100% (reserved re-route headroom), at slightly higher P_CB."
    )


if __name__ == "__main__":
    main()
