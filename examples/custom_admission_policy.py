#!/usr/bin/env python
"""Plugging a custom admission policy into the simulator.

The library's :class:`~repro.core.AdmissionPolicy` interface lets you
experiment with your own schemes.  Here we build a *hedged AC1* that
inflates the predictive reservation target by a safety factor — a
one-line idea the paper's framework makes trivial to test — and sweep
the factor to see the P_CB vs P_HD trade-off it buys.
"""

from repro.core import AC1, AdmissionDecision
from repro.simulation import CellularSimulator, stationary


class HedgedAC1(AC1):
    """AC1 with the reservation target inflated by ``margin``."""

    def __init__(self, margin: float) -> None:
        self.margin = margin
        self.name = f"AC1x{margin:g}"

    def admit_new(self, network, cell_id, bandwidth, now) -> AdmissionDecision:
        station = network.station(cell_id)
        messages_before = network.total_messages()
        station.update_target_reservation(now)
        station.cell.reserved_target *= self.margin
        admitted = station.cell.fits_new_connection(bandwidth)
        return AdmissionDecision(
            admitted=admitted,
            calculations=1,
            messages=network.total_messages() - messages_before,
        )


def main() -> None:
    print("hedged AC1 on the L=300 highway (paper's worst case for AC1)\n")
    print(f"{'policy':<10} {'P_CB':>7} {'P_HD':>8}")
    config = stationary("AC1", offered_load=300.0, duration=900.0, seed=5)
    for margin in (1.0, 1.5, 2.0, 3.0):
        simulator = CellularSimulator(config, policy=HedgedAC1(margin))
        result = simulator.run()
        print(
            f"{simulator.policy.name:<10} {result.blocking_probability:>7.3f}"
            f" {result.dropping_probability:>8.4f}"
        )
        config = stationary("AC1", offered_load=300.0, duration=900.0, seed=5)
    print(
        "\nInflating the target trades new-connection blocking for fewer"
        "\nhand-off drops — but unlike AC3 it cannot fix AC1's structural"
        "\nblindness to saturated neighbours (compare one_way_convoy.py)."
    )


if __name__ == "__main__":
    main()
