#!/usr/bin/env python
"""CDMA soft capacity and soft hand-off (the paper's §7 future work).

The paper excludes CDMA's two drop-reducing mechanisms from its model
and names them as planned extensions:

* **soft capacity** — a CDMA cell's capacity is an interference budget,
  not a channel count; hand-offs can be accepted at a slightly higher
  interference level (here: up to ``capacity * 1.10``);
* **soft hand-off** — near the boundary a mobile can communicate via
  both base stations, so a blocked hand-off retries during the overlap
  window instead of dropping.

Both are single config switches here.  To isolate their effect we use
the *static* scheme (no adaptive reservation compensating), mixed
voice/video traffic, over-loaded.
"""

from dataclasses import replace

from repro.simulation import CellularSimulator, stationary


def main() -> None:
    base = stationary(
        "static",
        offered_load=250.0,
        voice_ratio=0.5,
        duration=1500.0,
        warmup=300.0,
        seed=3,
    )
    variants = [
        ("hard hand-off (paper)", base),
        ("soft capacity +10%", replace(base, handoff_overload=1.10)),
        ("soft hand-off 5 s", replace(base, soft_handoff_window=5.0)),
        ("both", replace(base, handoff_overload=1.10,
                         soft_handoff_window=5.0)),
    ]
    print("static guard G=10, L=250, 50% video (worst case for drops)\n")
    print(f"{'variant':<24} {'P_CB':>7} {'P_HD':>8}")
    for label, config in variants:
        result = CellularSimulator(config).run()
        print(
            f"{label:<24} {result.blocking_probability:>7.3f} "
            f"{result.dropping_probability:>8.4f}"
        )
    print(
        "\nEach mechanism alone cuts drops several-fold; combined they"
        "\npush even the dumb static scheme under the 1% target — at a"
        "\nsmall P_CB cost (overload head-room and waiting mobiles both"
        "\noccupy bandwidth new calls cannot take)."
    )


if __name__ == "__main__":
    main()
