#!/usr/bin/env python
"""A multi-day campaign through the durable state store.

The paper's estimator is built for *days* of history: F_HOE weighs
quadruplets from the ``N_win`` previous days by day-age (Eq. 3), so a
cell's predictions sharpen as identical days accumulate.  One simulated
day is already millions of events — long campaigns want to run day by
day, each day a separate process if need be, with the warm state
carried across through checkpoints.

This example runs a compressed three-"day" campaign with
:func:`repro.state.run_campaign`: day 2 warm-starts from day 1's
checkpoint (history rebased one period back, window positions carried),
day 3 from day 2's, and every day leaves a durable, CRC-checksummed
state directory plus one JSONL report row behind.  Re-running the
campaign with the same arguments resumes from whatever days already
finished — kill it anywhere and run it again.

Equivalent CLI::

    repro campaign --load 140 --days 3 --state-dir camp-state
"""

import json
import tempfile
from dataclasses import replace
from pathlib import Path

from repro.simulation.scenarios import stationary
from repro.state import inspect_state, run_campaign

DAY = 150.0  # compressed day, in seconds


def main() -> None:
    config = replace(
        stationary("AC3", offered_load=140.0, voice_ratio=0.8, seed=42),
        day_seconds=DAY,
    )
    with tempfile.TemporaryDirectory() as scratch:
        state_dir = Path(scratch) / "campaign"
        reports = run_campaign(config, days=3, state_dir=state_dir)

        print("day   P_CB     P_HD     mean T_est  quadruplets")
        for report in reports:
            print(
                f"{report.day + 1:>3}   {report.p_cb:.4f}   "
                f"{report.p_hd:.4f}   {report.mean_t_est:>9.2f}  "
                f"{report.quadruplets:>11}"
            )
        print(
            "\nEach day warm-starts from the previous checkpoint, so the"
            "\nquadruplet pool keeps growing while every day still draws"
            "\nfrom its own derived seed.\n"
        )

        # The per-day JSONL is the campaign's machine-readable record.
        jsonl = state_dir / "campaign.jsonl"
        first = json.loads(jsonl.read_text().splitlines()[0])
        print(f"report row keys: {sorted(first)}\n")

        # Every day's state is a verifiable artifact in its own right.
        inspect_state(state_dir / "day_002")


if __name__ == "__main__":
    main()
