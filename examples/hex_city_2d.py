#!/usr/bin/env python
"""2-D city deployment: the paper's stated future work (§7), working.

A wrapped hexagonal grid of cells with a mixed population — vehicles
(fast, strong heading persistence), pedestrians (slow, wandering) and
stationary users — drives the same estimator/reservation/admission
machinery that the 1-D experiments use.  The estimator learns the
(prev, next)-cell correlations created by heading persistence with no
topology-specific code.
"""

from repro.cellular.topology import HexTopology
from repro.mobility.models import HexMobilityModel, PopulationClass
from repro.simulation import CellularSimulator, stationary

POPULATION = (
    PopulationClass("vehicular", 0.30, 45.0, heading_persistence=0.85),
    PopulationClass("pedestrian", 0.45, 300.0, heading_persistence=0.6),
    PopulationClass("stationary", 0.25, 0.0),
)


def main() -> None:
    topology = HexTopology(4, 5, wrap=True)
    print(
        f"hex city: {topology.rows}x{topology.cols} cells, "
        f"6 neighbours each, mixed population\n"
    )
    print(f"{'scheme':<8} {'P_CB':>7} {'P_HD':>8} {'N_calc':>7}")
    for scheme in ("static", "AC1", "AC3"):
        config = stationary(
            scheme,
            offered_load=130.0,
            voice_ratio=0.8,
            duration=1200.0,
            seed=11,
        )
        simulator = CellularSimulator(
            config,
            mobility_model=HexMobilityModel(topology, POPULATION),
        )
        result = simulator.run()
        print(
            f"{scheme:<8} {result.blocking_probability:>7.3f} "
            f"{result.dropping_probability:>8.4f} "
            f"{result.average_calculations:>7.2f}"
        )
    print(
        "\nWith six neighbours, a full AC2 test would need 7 B_r"
        "\ncalculations per request; AC3's hybrid stays close to 1 until"
        "\ncells actually saturate — the 1-D conclusion carries over."
    )


if __name__ == "__main__":
    main()
