#!/usr/bin/env python
"""A compressed rush-hour day: time-varying load, speeds and retries.

Replays the paper's §5.3 scenario — offered load peaking around 9 am,
1 pm and 5-6 pm while traffic slows down, with blocked users retrying
every 5 s with probability ``1 - 0.1 * N_ret`` — on a time-compressed
day (1 "day" = 30 simulated minutes) so it finishes in seconds.

Prints the hourly P_CB / P_HD table of Figure 14(b) for AC3.
"""

from repro import simulate, time_varying


def bar(value: float, scale: float, width: int = 30) -> str:
    filled = min(int(value / scale * width), width)
    return "#" * filled


def main() -> None:
    config = time_varying("AC3", days=1.0, time_compression=48.0, seed=3)
    print("simulating one profile-driven day (compressed 48x) ...")
    result = simulate(config)
    print(f"\n{'hour':>4} {'requests':>9} {'P_CB':>7} {'P_HD':>8}  load")
    for bucket in result.hourly:
        print(
            f"{bucket.hour % 24:>4} {bucket.new_requests:>9} "
            f"{bucket.blocking_probability:>7.3f} "
            f"{bucket.dropping_probability:>8.4f}  "
            f"{bar(bucket.new_requests, 600)}"
        )
    peak = max(b.dropping_probability for b in result.hourly)
    print(
        f"\noverall: P_CB={result.blocking_probability:.3f} "
        f"P_HD={result.dropping_probability:.4f} "
        f"(worst hour P_HD={peak:.4f}, target 0.01)"
    )
    print(
        "off-peak hours are effectively free; during the rush-hour peaks"
        "\nblocking rises (amplified by retries) while hand-off drops stay"
        "\nbounded — the scheme sheds load at connection setup, never"
        " mid-call."
    )


if __name__ == "__main__":
    main()
