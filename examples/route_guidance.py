#!/usr/bin/env python
"""Route-guidance mobiles (ITS/GPS): the paper's §7 extension, working.

When a mobile's route is known (e.g. from an in-car navigation system),
the base station no longer has to *guess* its next cell — the aggregate
history is needed only for the sojourn time.  On the two-way highway
this halves the wasted reservations: a history-only estimator spreads
each mobile's hand-off mass over both neighbours, while the route-aware
one concentrates it on the real destination.

Run AC3 with both estimators and compare the blocking probability at
the same bounded drop rate.
"""

from repro.estimation import CacheConfig, KnownPathEstimator
from repro.simulation import CellularSimulator, stationary


def direction_oracle(connection):
    """The 1-D road makes routes trivial: next cell follows direction."""
    mobile = connection.mobile
    if mobile is None or not mobile.is_moving:
        return None
    # Ring of 10 cells; EXIT never happens here.
    return (mobile.cell_id + mobile.direction) % 10


def run(label, estimator_factory):
    config = stationary(
        "AC3",
        offered_load=250.0,
        voice_ratio=0.8,
        duration=1500.0,
        warmup=500.0,
        seed=21,
    )
    simulator = CellularSimulator(config)
    if estimator_factory is not None:
        # Swap every station's estimator before the run starts.
        for station in simulator.network.stations:
            station.estimator = estimator_factory()
    result = simulator.run()
    print(
        f"{label:<22} P_CB={result.blocking_probability:.3f} "
        f"P_HD={result.dropping_probability:.4f} "
        f"avg B_r={result.average_reservation:.2f}"
    )
    return result


def main() -> None:
    print("AC3 on the two-way highway, L=250, 20% video\n")
    run("history-only (Eq. 4)", None)
    run(
        "route-aware (§7)",
        lambda: KnownPathEstimator(
            CacheConfig(interval=None), route_oracle=direction_oracle
        ),
    )
    print(
        "\nKnowing the direction removes the 50/50 split of each mobile's"
        "\nhand-off mass between its two neighbours.  The adaptive window"
        "\nalready compensates for estimation spread, so the visible win"
        "\nis a moderate B_r/P_CB saving at the same bounded drop rate —"
        "\nnot the naive 2x."
    )


if __name__ == "__main__":
    main()
