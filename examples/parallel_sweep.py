#!/usr/bin/env python
"""Parallel sweep: fan an offered-load sweep out over a process pool.

Every configuration in a sweep carries its own seed and every simulator
is self-contained, so ``run_sweep(configs, workers=N)`` produces results
identical to the sequential run, in the same order — only the wall
clock changes.  This example runs the Figure 8 AC3 load axis both ways,
verifies the metrics match, and reports the speed-up.
"""

import time

from repro.simulation.runner import DEFAULT_LOAD_AXIS, run_sweep
from repro.simulation.scenarios import stationary


def main() -> None:
    configs = [
        stationary(
            "AC3",
            offered_load=load,
            voice_ratio=0.8,
            high_mobility=True,
            duration=400.0,
            seed=8,
        )
        for load in DEFAULT_LOAD_AXIS
    ]

    started = time.perf_counter()
    sequential = run_sweep(configs)
    sequential_seconds = time.perf_counter() - started

    started = time.perf_counter()
    parallel = run_sweep(configs, workers=4)
    parallel_seconds = time.perf_counter() - started

    print(f"{'L':>6} {'P_CB':>8} {'P_HD':>9} {'avg B_r':>9}")
    for load, result in zip(DEFAULT_LOAD_AXIS, parallel):
        print(
            f"{load:>6g} {result.blocking_probability:>8.3f} "
            f"{result.dropping_probability:>9.4f} "
            f"{result.average_reservation:>9.2f}"
        )

    matches = all(
        a.metrics_key() == b.metrics_key()
        for a, b in zip(sequential, parallel)
    )
    print(f"\nsequential: {sequential_seconds:.1f}s, "
          f"4 workers: {parallel_seconds:.1f}s")
    print("parallel results identical to sequential:", matches)


if __name__ == "__main__":
    main()
