#!/usr/bin/env python
"""One-directional traffic on an open road (the paper's Table 3 case).

Every mobile drives from cell <1> toward cell <10> and leaves the
system at the end; the borders are disconnected.  This is the scenario
where checking only the local cell (AC1) visibly breaks: upstream cells
admit greedily and starve the cells downstream of them, in an
alternating pattern.  AC3 makes each cell care about its downstream
neighbour and rebalances the whole road.
"""

from repro import simulate, one_directional


def show(result, scheme: str) -> None:
    print(f"\n{scheme}: per-cell state after 30 simulated minutes")
    print(f"{'cell':>4} {'P_CB':>7} {'P_HD':>8} {'T_est':>6} {'B_r':>7}")
    for status in result.statuses:
        over = "  <- over target" if status.dropping_probability > 0.01 else ""
        print(
            f"{status.cell_id + 1:>4} {status.blocking_probability:>7.3f} "
            f"{status.dropping_probability:>8.4f} {status.t_est:>6.0f} "
            f"{status.reserved_target:>7.2f}{over}"
        )


def main() -> None:
    for scheme in ("AC1", "AC3"):
        result = simulate(
            one_directional(scheme, offered_load=300.0, duration=1800.0,
                            seed=7)
        )
        show(result, scheme)
    print(
        "\nAC1 starves alternating cells (very high P_CB, P_HD over the"
        "\n1% target) because cell <i> never looks at cell <i+1>;"
        "\nAC3's hybrid test spreads the blocking evenly and keeps every"
        "\ncell's P_HD bounded."
    )


if __name__ == "__main__":
    main()
