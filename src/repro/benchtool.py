"""Persisted benchmark harness: time the hot paths and record a JSON report.

Complements the pytest micro-benchmarks (``benchmarks/``) with a
dependency-free runner that can be executed anywhere the package is
importable and leaves an artifact behind::

    python scripts/bench.py            # full run, writes BENCH_<date>.json
    python scripts/bench.py --smoke    # CI-sized sanity run
    repro-bench --output out.json      # installed console entry point

The report covers:

* micro-benchmarks — steady-state Eq. 6 reservation update, the Eq. 4
  hand-off probability query, and the raw event loop (ops/sec each);
* one representative AC3 simulation — wall time, events/sec, and the
  paper's complexity metrics (``N_calc`` per admission test, average
  inter-BS messages).

Per-benchmark measuring time defaults to ``REPRO_BENCH_DURATION``
seconds (0.5 if unset), so CI can shrink it without flag plumbing.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import time
from datetime import date
from pathlib import Path
from typing import Callable, Sequence

from repro.cellular.network import CellularNetwork
from repro.cellular.topology import LinearTopology
from repro.des import Engine
from repro.estimation.cache import CacheConfig
from repro.estimation.estimator import MobilityEstimator
from repro.simulation.scenarios import stationary
from repro.simulation.simulator import CellularSimulator
from repro.traffic.classes import VOICE
from repro.traffic.connection import Connection


def _measure(operation: Callable[[], object], duration: float) -> dict:
    """Time ``operation`` repeatedly for about ``duration`` seconds."""
    # Warm up and calibrate a batch size so the clock is read far less
    # often than the operation runs.
    operation()
    started = time.perf_counter()
    operation()
    single = time.perf_counter() - started
    batch = max(1, int(0.01 / single) if single > 0 else 1000)
    calls = 0
    started = time.perf_counter()
    while True:
        for _ in range(batch):
            operation()
        calls += batch
        elapsed = time.perf_counter() - started
        if elapsed >= duration:
            break
    mean = elapsed / calls
    return {
        "calls": calls,
        "mean_us": mean * 1e6,
        "ops_per_sec": 1.0 / mean if mean > 0 else float("inf"),
    }


# ----------------------------------------------------------------------
# micro-benchmark setups (mirroring benchmarks/test_microbench.py)
# ----------------------------------------------------------------------
def _reservation_update_station():
    network = CellularNetwork(
        LinearTopology(10),
        cache_config=CacheConfig(interval=None),
    )
    rng = random.Random(1)
    for neighbor in (1, 9):
        station = network.station(neighbor)
        for index in range(100):
            station.estimator.record_departure(
                float(index), None, 0, rng.uniform(10.0, 60.0)
            )
        for _ in range(80):
            connection = Connection(
                VOICE, 0.0, neighbor, cell_entry_time=rng.uniform(0, 90)
            )
            network.cell(neighbor).attach(connection)
    station = network.station(0)
    station.window.t_est = 10.0
    return station


def bench_reservation_update(duration: float) -> dict:
    """Steady-state Eq. 6 update: 2 contributing neighbours, 80 conns each."""
    station = _reservation_update_station()
    return _measure(
        lambda: station.update_target_reservation(100.0), duration
    )


def bench_handoff_probability(duration: float) -> dict:
    """One Eq. 4 query against a warm 100-quadruplet snapshot."""
    estimator = MobilityEstimator(CacheConfig(interval=None))
    rng = random.Random(0)
    for index in range(100):
        estimator.record_departure(
            float(index), 1, rng.choice((0, 2)), rng.uniform(10.0, 60.0)
        )
    estimator.function_for(1000.0, 1)
    return _measure(
        lambda: estimator.handoff_probability(1000.0, 1, 20.0, 2, 15.0),
        duration,
    )


def bench_event_loop(duration: float) -> dict:
    """10k self-rescheduling events through a fresh engine per call."""

    def run_10k_events():
        engine = Engine()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 10_000:
                engine.call_in(1.0, tick)

        engine.call_in(1.0, tick)
        engine.run()

    report = _measure(run_10k_events, max(duration, 0.2))
    report["events_per_sec"] = report["ops_per_sec"] * 10_000
    return report


# ----------------------------------------------------------------------
# representative simulation
# ----------------------------------------------------------------------
def bench_ac3_run(smoke: bool) -> dict:
    """One AC3 run at L=200: wall time plus the paper's cost metrics."""
    config = stationary(
        "AC3",
        offered_load=200.0,
        voice_ratio=0.8,
        high_mobility=True,
        duration=200.0 if smoke else 1000.0,
        seed=3,
    )
    result = CellularSimulator(config).run()
    return {
        "duration": config.duration,
        "offered_load": config.offered_load,
        "wall_seconds": result.wall_seconds,
        "events_processed": result.events_processed,
        "events_per_sec": (
            result.events_processed / result.wall_seconds
            if result.wall_seconds > 0
            else float("inf")
        ),
        "n_calc": result.average_calculations,
        "avg_messages": result.average_messages,
        "p_cb": result.blocking_probability,
        "p_hd": result.dropping_probability,
    }


def run_benchmarks(smoke: bool = False) -> dict:
    duration = float(os.environ.get("REPRO_BENCH_DURATION", "0.5"))
    if smoke:
        duration = min(duration, 0.1)
    report = {
        "date": date.today().isoformat(),
        "smoke": smoke,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "micro_seconds_per_bench": duration,
        "micro": {
            "reservation_update": bench_reservation_update(duration),
            "handoff_probability": bench_handoff_probability(duration),
            "event_loop": bench_event_loop(duration),
        },
        "simulation": {"ac3_load200": bench_ac3_run(smoke)},
    }
    return report


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="short CI run: tiny measuring windows and a short simulation",
    )
    parser.add_argument(
        "--output", type=Path, default=None, metavar="FILE",
        help="report path (default: ./BENCH_<date>.json)",
    )
    args = parser.parse_args(argv)
    report = run_benchmarks(smoke=args.smoke)
    output = args.output
    if output is None:
        output = Path(f"BENCH_{report['date']}.json")
    if output.parent != Path("."):
        output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(report, indent=2) + "\n")
    micro = report["micro"]
    for name, stats in micro.items():
        print(f"{name:<22} {stats['mean_us']:>10.2f} us/op "
              f"{stats['ops_per_sec']:>14,.0f} ops/s")
    sim = report["simulation"]["ac3_load200"]
    print(f"{'ac3_load200':<22} {sim['wall_seconds']:>10.2f} s    "
          f"{sim['events_per_sec']:>14,.0f} events/s  "
          f"N_calc={sim['n_calc']:.2f}  msgs={sim['avg_messages']:.2f}")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
