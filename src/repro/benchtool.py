"""Persisted benchmark harness: time the hot paths and record a JSON report.

Complements the pytest micro-benchmarks (``benchmarks/``) with a
dependency-free runner that can be executed anywhere the package is
importable and leaves an artifact behind::

    python scripts/bench.py            # full run, writes BENCH_<date>.json
    python scripts/bench.py --smoke    # CI-sized sanity run
    repro-bench --output out.json      # installed console entry point
    repro-bench --kernel python        # force the pure-Python kernel
    repro-bench --profile              # cProfile the run, print the top-N
    repro-bench --compare BENCH_x.json # per-bench speedups vs a baseline
    repro-bench --history              # markdown trend over BENCH_*.json

The report covers:

* micro-benchmarks — steady-state Eq. 6 reservation update, batched and
  scalar Eq. 4 hand-off probability queries, and the raw event loop
  (ops/sec each);
* one representative AC3 simulation — wall time, events/sec, and the
  paper's complexity metrics (``N_calc`` per admission test, average
  inter-BS messages);
* ``state_io`` — durable checkpoint write/read throughput (MB/s and
  wall time) against an L=200 warm state, plus the state's size;
* ``sampling`` — the streaming time-series sampler's throughput cost
  (events/s with sampling on vs off), gated at 5% by ``--compare``;
* ``serve_latency`` — the live admission service under the bundled
  load generator: decisions/s with P50/P99 decision latency for a
  ``static`` (service-layer, floor-gated at 10k decisions/s) and an
  ``ac3`` (full adaptive scheme) variant.

``--compare`` prints the per-bench throughput delta against a previous
report and exits non-zero when any bench regressed by more than the
``--regression-threshold`` (20% by default) — the CI gate
(``scripts/ci.sh``) runs it against the newest committed baseline.

Per-benchmark measuring time defaults to ``REPRO_BENCH_DURATION``
seconds (0.5 if unset), so CI can shrink it without flag plumbing.
"""

from __future__ import annotations

import argparse
import contextlib
import gc
import json
import os
import platform
import random
import time
from dataclasses import replace
from datetime import date
from pathlib import Path
from typing import Callable, Sequence

from repro._kernel import KERNELS, kernel_name, set_kernel
from repro.cellular.network import CellularNetwork
from repro.obs import configure_logging, ensure_configured
from repro.cellular.topology import LinearTopology
from repro.des import Engine
from repro.estimation.cache import CacheConfig
from repro.estimation.estimator import MobilityEstimator
from repro.simulation.scenarios import stationary
from repro.simulation.simulator import CellularSimulator
from repro.traffic.classes import VOICE
from repro.traffic.connection import Connection

#: Queries per call of the batched Eq. 4 micro-benchmark.
_BATCH = 256


def _measure(
    operation: Callable[[], object], duration: float, repeats: int = 5
) -> dict:
    """Time ``operation`` for about ``duration`` seconds; best-of-N.

    The budget is split into ``repeats`` slices and the *fastest* slice
    is reported: transient interference (other tenants, frequency
    scaling) only ever slows a slice down, so the minimum mean is the
    most reproducible estimate — which is what the ``--compare``
    regression gate needs.
    """
    # Warm up and calibrate a batch size so the clock is read far less
    # often than the operation runs.
    operation()
    started = time.perf_counter()
    operation()
    single = time.perf_counter() - started
    batch = max(1, int(0.01 / single) if single > 0 else 1000)
    slice_duration = duration / repeats
    best_mean = float("inf")
    total_calls = 0
    for _ in range(repeats):
        calls = 0
        started = time.perf_counter()
        while True:
            for _ in range(batch):
                operation()
            calls += batch
            elapsed = time.perf_counter() - started
            if elapsed >= slice_duration:
                break
        total_calls += calls
        mean = elapsed / calls
        if mean < best_mean:
            best_mean = mean
    return {
        "calls": total_calls,
        "mean_us": best_mean * 1e6,
        "ops_per_sec": 1.0 / best_mean if best_mean > 0 else float("inf"),
    }


# ----------------------------------------------------------------------
# micro-benchmark setups (mirroring benchmarks/test_microbench.py)
# ----------------------------------------------------------------------
def _reservation_update_station():
    network = CellularNetwork(
        LinearTopology(10),
        cache_config=CacheConfig(interval=None),
    )
    rng = random.Random(1)
    for neighbor in (1, 9):
        station = network.station(neighbor)
        for index in range(100):
            station.estimator.record_departure(
                float(index), None, 0, rng.uniform(10.0, 60.0)
            )
        for _ in range(80):
            connection = Connection(
                VOICE, 0.0, neighbor, cell_entry_time=rng.uniform(0, 90)
            )
            network.cell(neighbor).attach(connection)
    station = network.station(0)
    station.window.t_est = 10.0
    return station


def bench_reservation_update(duration: float) -> dict:
    """Cold Eq. 6 update: 2 contributing neighbours, 80 conns each.

    Every call recomputes the full batched Eq. 5 evaluation — there is
    no per-``(version, now)`` memo any more (retired: under the
    coalesced tick every admission evaluates at a distinct ``now``, so
    its hit rate was structurally zero).  Reported as
    ``reservation_update_cold`` so ``--compare`` treats it as a new
    bench rather than a regression of the old memo-warm number.
    """
    station = _reservation_update_station()
    return _measure(
        lambda: station.update_target_reservation(100.0), duration
    )


def _warm_estimator() -> MobilityEstimator:
    estimator = MobilityEstimator(CacheConfig(interval=None))
    rng = random.Random(0)
    for index in range(100):
        estimator.record_departure(
            float(index), 1, rng.choice((0, 2)), rng.uniform(10.0, 60.0)
        )
    estimator.function_for(1000.0, 1)
    return estimator


def bench_handoff_probability(duration: float) -> dict:
    """Batched Eq. 4: 256 extant sojourns per call, per-probability rate.

    This is how the reservation protocol actually consumes Eq. 4 — whole
    per-``prev`` connection populations against one warm snapshot — so
    the headline number is probabilities/second, not batch calls/second.
    """
    estimator = _warm_estimator()
    rng = random.Random(7)
    extants = [rng.uniform(0.0, 70.0) for _ in range(_BATCH)]
    report = _measure(
        lambda: estimator.handoff_probability_batch(
            1000.0, 1, extants, 2, 15.0
        ),
        duration,
    )
    report["batch_size"] = _BATCH
    report["mean_us"] /= _BATCH
    report["ops_per_sec"] *= _BATCH
    return report


def bench_handoff_probability_scalar(duration: float) -> dict:
    """One Eq. 4 query against a warm 100-quadruplet snapshot."""
    estimator = _warm_estimator()
    return _measure(
        lambda: estimator.handoff_probability(1000.0, 1, 20.0, 2, 15.0),
        duration,
    )


def bench_event_loop(duration: float) -> dict:
    """10k self-rescheduling events through a fresh engine per call."""

    def run_10k_events():
        engine = Engine()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 10_000:
                engine.call_in(1.0, tick)

        engine.call_in(1.0, tick)
        engine.run()

    report = _measure(run_10k_events, max(duration, 0.2))
    report["events_per_sec"] = report["ops_per_sec"] * 10_000
    return report


# ----------------------------------------------------------------------
# representative simulation
# ----------------------------------------------------------------------
def bench_ac3_run(smoke: bool) -> dict:
    """One AC3 run at L=200: wall time plus the paper's cost metrics."""
    config = stationary(
        "AC3",
        offered_load=200.0,
        voice_ratio=0.8,
        high_mobility=True,
        duration=200.0 if smoke else 1000.0,
        seed=3,
    )
    # Best of two runs: the simulation is deterministic, so both produce
    # identical metrics and only wall time differs with machine noise.
    result = CellularSimulator(config).run()
    rerun = CellularSimulator(config).run()
    if rerun.wall_seconds < result.wall_seconds:
        result = rerun
    return {
        "duration": config.duration,
        "offered_load": config.offered_load,
        "wall_seconds": result.wall_seconds,
        "events_processed": result.events_processed,
        "events_per_sec": (
            result.events_processed / result.wall_seconds
            if result.wall_seconds > 0
            else float("inf")
        ),
        "n_calc": result.average_calculations,
        "avg_messages": result.average_messages,
        "p_cb": result.blocking_probability,
        "p_hd": result.dropping_probability,
    }


def bench_ac3_replicated(
    smoke: bool,
    workers: int | None = None,
    replications: int | None = None,
    ci_level: float = 0.95,
) -> dict:
    """Sharded replication runner vs one sequential long run (AC3).

    Runs the same scenario twice: once as a single long run whose
    hourly buckets feed a sequential batch-means interval, once through
    :func:`repro.simulation.replication.run_replicated` on the
    persistent warm pool.  Reports both wall clocks, the speedup, and
    whether the merged shard estimate lands inside the sequential CI.
    The speedup is bounded by physical cores — ``cpu_count`` is
    recorded, the default worker count is capped at it, and an
    explicitly oversubscribed pool is annotated in the report so a
    reader never mistakes scheduler thrash for sharding overhead.
    """
    from repro.analysis.stats import batch_means_from_hourly
    from repro.simulation.replication import run_replicated
    from repro.simulation.runner import shared_pool

    cpu_count = os.cpu_count() or 1
    requested_workers = workers
    if workers is None:
        # Default widths clamp to the machine: an oversubscribed pool
        # measures scheduler thrash, not sharding (BENCH_2026-08-06
        # recorded a 0.57x "speedup" from 8 workers on one core).
        # Explicit --workers above cpu_count still runs, but is
        # annotated and excluded from the regression gate.
        requested_workers = 2 if smoke else 8
        workers = min(requested_workers, cpu_count)
    if replications is None:
        replications = 4 if smoke else 8
    batch = 100.0 if smoke else 200.0
    config = stationary(
        "AC3",
        offered_load=200.0,
        voice_ratio=0.8,
        high_mobility=True,
        duration=batch + batch * replications,
        warmup=batch,
        seed=3,
    )
    # Sequential reference: same measured interval in one process, with
    # hourly buckets sized to one batch each (bucket 0 = the warm-up).
    sequential = CellularSimulator(
        replace(config, hourly_stats=True, day_seconds=24.0 * batch)
    ).run()
    seq_blocking, seq_dropping = batch_means_from_hourly(
        sequential, ci_level, skip_buckets=1
    )
    # Warm the persistent pool before timing: in steady state (sweeps,
    # repeated replication calls) the workers already exist, and fork
    # cost is a constant, not part of the sharding speedup.
    pool = shared_pool(min(workers, replications))
    pool.warm()
    replicated = run_replicated(
        config,
        replications=replications,
        ci_level=ci_level,
        pool=pool,
    )
    # The merged metrics must not depend on how the shards were
    # scheduled across workers.  Always re-run and verify — a silent
    # scheduling dependence would invalidate every replicated result —
    # and fail the whole benchmark loudly on a mismatch instead of
    # recording ``null``.
    recheck = run_replicated(
        config, replications=replications, ci_level=ci_level
    )
    deterministic = recheck.metrics_key() == replicated.metrics_key()
    if not deterministic:
        raise RuntimeError(
            "replicated merge is not deterministic: two runs of the"
            " same sharded scenario produced different merged metrics"
        )
    return {
        "workers": workers,
        "requested_workers": requested_workers,
        "replications": replications,
        "cpu_count": cpu_count,
        "oversubscribed": workers > cpu_count,
        "measured_seconds": config.duration - config.warmup,
        "sequential": {
            "wall_seconds": sequential.wall_seconds,
            "p_cb": sequential.blocking_probability,
            "p_hd": sequential.dropping_probability,
            "p_cb_half_width": seq_blocking.half_width,
            "p_hd_half_width": seq_dropping.half_width,
        },
        "replicated": {
            "wall_seconds": replicated.wall_seconds,
            "warm_seconds": replicated.warm_seconds,
            "shared_bytes": replicated.shared_bytes,
            "events_processed": replicated.events_processed,
            "p_cb": replicated.blocking_probability,
            "p_hd": replicated.dropping_probability,
            "p_cb_half_width": replicated.blocking_ci.half_width,
            "p_hd_half_width": replicated.dropping_ci.half_width,
        },
        "speedup": (
            sequential.wall_seconds / replicated.wall_seconds
            if replicated.wall_seconds > 0
            else float("inf")
        ),
        "merged_within_sequential_ci": bool(
            seq_blocking.covers(replicated.blocking_probability)
            and seq_dropping.covers(replicated.dropping_probability)
        ),
        "merge_deterministic": deterministic,
    }


def _shard_imbalance(shard_events) -> float:
    """Peak-to-mean ratio of per-shard event counts (1.0 = perfect)."""
    if not shard_events:
        return 1.0
    mean = sum(shard_events) / len(shard_events)
    return max(shard_events) / mean if mean > 0 else 1.0


def _spatial_oversubscribed(shards: int, cpu_count: int) -> bool:
    """True when a spatial leg cannot get a core per process.

    A multi-shard leg runs ``shards`` worker processes *plus* the
    coordinating parent, so it needs ``shards + 1`` cores before the
    epoch barrier stops timeslicing; a single-shard leg runs
    in-process.  Oversubscribed legs are still measured (they show
    where the scaling curve flattens) but excluded from the regression
    gate — their wall time tracks scheduler contention, not the
    runner, and swings far beyond the gate threshold with host load.
    """
    return shards > 1 and shards + 1 > cpu_count


@contextlib.contextmanager
def _quiet_gc():
    """Silence the cyclic collector around a timed leg.

    By the time the spatial benches run, the report process has built
    and dropped several whole simulations; every gen-2 collection
    during a timed run rescans that accumulated heap, depressing the
    measured events/s by 30-40% versus the same call in a fresh
    process.  Collect once up front, then let pure refcounting carry
    the leg — the DES hot path allocates no cycles.
    """
    was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def bench_ac3_spatial(smoke: bool) -> dict:
    """Spatially sharded hex city: events/s versus shard count (AC3).

    Runs the same city once per shard count.  Every run must merge to
    the same ``metrics_key()`` — shard-count independence is the
    spatial runner's core invariant, so a mismatch fails the whole
    benchmark loudly.  Legs whose processes (workers plus the
    coordinating parent) exceed the core count still run (they show
    where the scaling curve flattens) but are annotated
    ``oversubscribed`` and excluded from the regression gate.
    """
    from repro.simulation.scenarios import hex_city
    from repro.simulation.spatial import run_spatial

    cpu_count = os.cpu_count() or 1
    if smoke:
        rows = cols = 6
        duration, load = 40.0, 150.0
        shard_counts = (1, 2)
    else:
        # Heavy per-epoch work (cells x load) is what the barrier cost
        # amortises against; a lightly loaded city measures sync, not
        # scaling.
        rows = cols = 30
        duration, load = 20.0, 700.0
        shard_counts = (1, 2, 4, 8)
    config = hex_city(
        "AC3",
        rows=rows,
        cols=cols,
        offered_load=load,
        voice_ratio=0.8,
        duration=duration,
        seed=5,
    )
    runs = []
    reference_key = None
    # Best-of-3 per leg (best-of-1 in smoke): a single 4-6 s run on a
    # shared box is too noisy for the 20% --compare gate; the minimum
    # wall time estimates the undisturbed cost, and every repeat must
    # merge to the same metrics_key().
    repeats = 1 if smoke else 3
    for shards in shard_counts:
        result = None
        for _ in range(repeats):
            with _quiet_gc():
                attempt = run_spatial(config, shards, processes=shards > 1)
            key = attempt.metrics_key()
            if reference_key is None:
                reference_key = key
            elif key != reference_key:
                raise RuntimeError(
                    f"spatial merge is not shard-independent: {shards}"
                    " shards produced different merged metrics than 1 shard"
                )
            if result is None or attempt.wall_seconds < result.wall_seconds:
                result = attempt
        shard_events = list(result.shard_events or ())
        runs.append({
            "shards": shards,
            "wall_seconds": result.wall_seconds,
            "events_processed": result.events_processed,
            "events_per_sec": (
                result.events_processed / result.wall_seconds
                if result.wall_seconds > 0
                else 0.0
            ),
            "shard_events": shard_events,
            "imbalance": _shard_imbalance(shard_events),
            "oversubscribed": _spatial_oversubscribed(shards, cpu_count),
            "repeats": repeats,
        })
    base = runs[0]["wall_seconds"]
    for run in runs:
        run["speedup_vs_1"] = (
            base / run["wall_seconds"] if run["wall_seconds"] > 0
            else float("inf")
        )
    return {
        "grid": f"{rows}x{cols}",
        "offered_load": load,
        "duration": duration,
        "cpu_count": cpu_count,
        "p_cb": result.blocking_probability,
        "p_hd": result.dropping_probability,
        "runs": runs,
        "merge_deterministic": True,
    }


def bench_ac3_spatial_balanced(smoke: bool) -> dict:
    """City-scale spatial runs on the columnar hot loop (AC3).

    Three legs:

    * ``throughput`` — a uniform hex city (100x100 at L=500 in the
      full run) swept over shard counts on the default plan.  These
      events/s rows are the headline the ``--compare`` gate tracks
      (non-oversubscribed only, like ``ac3_spatial``).  Each shard
      count is timed best-of-3 (best-of-1 in smoke): like the
      ``sampling`` section, the minimum wall time estimates the
      undisturbed cost on a shared box, and every repeat must merge
      to the same ``metrics_key()``.
    * ``plans`` — the same city with traffic hot spots, one run per
      shard-plan kind at a fixed shard count: events/s plus the
      peak-to-mean shard imbalance the load-balanced plans exist to
      shrink.
    * ``campaign`` — a small hot-spot city run as a 2-day warm-started
      campaign once per plan kind; day 1 restores from day 0's written
      checkpoint, so matching per-day results across kinds prove the
      restore path is plan-independent.

    Every merged run of the same scenario must agree on
    ``metrics_key()`` regardless of shard count or plan kind; any
    mismatch raises.
    """
    import shutil
    import tempfile

    from repro.simulation.scenarios import hex_city
    from repro.simulation.spatial import (
        PLAN_KINDS,
        run_spatial,
        run_spatial_campaign,
    )

    cpu_count = os.cpu_count() or 1
    if smoke:
        rows = cols = 6
        duration, load = 30.0, 150.0
        shard_counts = (1, 2)
        plan_shards = 2
    else:
        rows = cols = 100
        duration, load = 5.0, 500.0
        shard_counts = (1, 2, 4)
        plan_shards = 4
    hotspots = (
        (rows // 5, cols // 3, 4.0, 6.0),
        (7 * rows // 10, 3 * cols // 5, 3.0, 5.0),
    )
    uniform = hex_city(
        "AC3",
        rows=rows,
        cols=cols,
        offered_load=load,
        duration=duration,
        seed=11,
    )
    hotspot = hex_city(
        "AC3",
        rows=rows,
        cols=cols,
        offered_load=load,
        duration=duration,
        seed=11,
        hotspots=hotspots,
    )
    throughput = []
    reference_key = None
    repeats = 1 if smoke else 3
    for shards in shard_counts:
        result = None
        for _ in range(repeats):
            with _quiet_gc():
                attempt = run_spatial(uniform, shards, processes=shards > 1)
            key = attempt.metrics_key()
            if reference_key is None:
                reference_key = key
            elif key != reference_key:
                raise RuntimeError(
                    "balanced spatial merge is not shard-independent:"
                    f" {shards} shards diverged"
                )
            if result is None or attempt.wall_seconds < result.wall_seconds:
                result = attempt
        shard_events = list(result.shard_events or ())
        throughput.append({
            "shards": shards,
            "wall_seconds": result.wall_seconds,
            "events_processed": result.events_processed,
            "events_per_sec": (
                result.events_processed / result.wall_seconds
                if result.wall_seconds > 0
                else 0.0
            ),
            "shard_events": shard_events,
            "imbalance": _shard_imbalance(shard_events),
            "oversubscribed": _spatial_oversubscribed(shards, cpu_count),
            "repeats": repeats,
        })
    plans = []
    plan_key = None
    for kind in PLAN_KINDS:
        with _quiet_gc():
            result = run_spatial(
                hotspot, plan_shards, processes=True, plan_kind=kind
            )
        key = result.metrics_key()
        if plan_key is None:
            plan_key = key
        elif key != plan_key:
            raise RuntimeError(
                "spatial merge is not plan-independent:"
                f" kind={kind!r} diverged"
            )
        shard_events = list(result.shard_events or ())
        plans.append({
            "plan": kind,
            "shards": plan_shards,
            "wall_seconds": result.wall_seconds,
            "events_per_sec": (
                result.events_processed / result.wall_seconds
                if result.wall_seconds > 0
                else 0.0
            ),
            "shard_events": shard_events,
            "imbalance": _shard_imbalance(shard_events),
        })
    # Checkpoint-restore invariance on a campaign-sized city: day 1 of
    # each campaign warm-starts from day 0's *written* checkpoint.
    campaign_city = hex_city(
        "AC3",
        rows=8,
        cols=6,
        offered_load=150.0,
        duration=30.0,
        seed=7,
        hotspots=((2, 2, 3.0),),
    )
    campaign_days = None
    for kind in PLAN_KINDS:
        state_dir = tempfile.mkdtemp(prefix="bench-spatial-ckpt-")
        try:
            reports = run_spatial_campaign(
                campaign_city,
                2,
                days=2,
                state_dir=state_dir,
                processes=False,
                plan_kind=kind,
            )
        finally:
            shutil.rmtree(state_dir, ignore_errors=True)
        days = [
            {
                "day": report.day,
                "p_cb": report.blocking_probability,
                "p_hd": report.dropping_probability,
                "events": report.events,
                "quadruplets": report.quadruplets,
            }
            for report in reports
        ]
        if campaign_days is None:
            campaign_days = days
        elif days != campaign_days:
            raise RuntimeError(
                "warm-started campaign diverged across plan kinds:"
                f" kind={kind!r}"
            )
    return {
        "grid": f"{rows}x{cols}",
        "offered_load": load,
        "duration": duration,
        "cpu_count": cpu_count,
        "hotspots": [list(spot) for spot in hotspots],
        "throughput": throughput,
        "plans": plans,
        "campaign_days": campaign_days,
        "merge_deterministic": True,
        "restore_plan_invariant": True,
    }


def bench_columnar_memory(connections: int = 20_000) -> dict:
    """Bytes per live connection: object pair versus columnar store.

    Measures (via ``tracemalloc``) ``connections`` concurrent
    connections' hot state in the classic representation — a slotted
    :class:`Connection` holding its slotted ``Mobile`` (boxed field
    values included) — against the same state as
    :class:`~repro.simulation.columnar.ConnectionStore` rows.  That
    representation ratio is the headline number: it is what the spatial
    engine checkpoints, migrates, and scans.

    The engine additionally keeps one one-slot handle per *attached*
    connection (inside the owning ``Cell``'s connection map, which the
    object engine pays for too), so the report also records the
    handle-inclusive columnar figure and its ratio — the conservative
    bound on the end-to-end saving.
    """
    import tracemalloc

    from repro.mobility.mobile import Mobile
    from repro.simulation.columnar import ConnectionStore, handle_class

    tracemalloc.start()
    before, _ = tracemalloc.get_traced_memory()
    objects = []
    for index in range(connections):
        mobile = Mobile(
            position_km=0.0, speed_kmh=45.0, direction=index % 6,
            cell_id=index % 100, position_time=0.0,
        )
        objects.append(Connection(
            traffic_class=VOICE,
            start_time=float(index),
            cell_id=index % 100,
            mobile=mobile,
        ))
    after, _ = tracemalloc.get_traced_memory()
    object_bytes = after - before
    del objects
    before, _ = tracemalloc.get_traced_memory()
    store = ConnectionStore(num_cells=100, capacity=connections)
    for index in range(connections):
        row = store.alloc()
        store.columns["entry_time"][row] = float(index)
        store.columns["cell"][row] = index % 100
    after, _ = tracemalloc.get_traced_memory()
    store_bytes = after - before
    handle_type = handle_class(store)
    before, _ = tracemalloc.get_traced_memory()
    handles = [handle_type(row) for row in range(connections)]
    after, _ = tracemalloc.get_traced_memory()
    handle_bytes = after - before
    del handles, store
    tracemalloc.stop()
    object_per = object_bytes / connections
    store_per = store_bytes / connections
    with_handles_per = (store_bytes + handle_bytes) / connections
    return {
        "connections": connections,
        "object_bytes_per_connection": object_per,
        "columnar_bytes_per_connection": store_per,
        "columnar_with_handles_bytes_per_connection": with_handles_per,
        "ratio": object_per / store_per if store_per > 0 else float("inf"),
        "ratio_with_handles": (
            object_per / with_handles_per if with_handles_per > 0
            else float("inf")
        ),
    }


def bench_state_io(smoke: bool) -> dict:
    """Checkpoint write/read throughput against an L=200 warm state.

    Saves a warm simulator's full state a few times (best wall time
    wins, as in ``_measure``) and restores it back; throughput is
    checkpoint bytes over wall seconds.  The read number includes
    rebuilding the simulator from the state — that is what a restart
    actually pays.  Not part of the ``--compare`` regression gate
    (disk speed is machine noise); the section exists so reports show
    how big and how costly durable state is.
    """
    import tempfile

    from repro.state import restore_simulator, save_checkpoint

    config = stationary(
        "AC3",
        offered_load=200.0,
        voice_ratio=0.8,
        high_mobility=True,
        duration=120.0 if smoke else 600.0,
        seed=3,
    )
    sim = CellularSimulator(config)
    sim.run()
    repeats = 2 if smoke else 5
    with tempfile.TemporaryDirectory() as scratch:
        target = Path(scratch) / "ckpt"
        write_seconds = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            save_checkpoint(sim, target)
            write_seconds = min(
                write_seconds, time.perf_counter() - started
            )
        state_bytes = sum(
            entry.stat().st_size
            for entry in target.rglob("*")
            if entry.is_file()
        )
        quadruplets = sum(
            station.estimator.cache.size()
            for station in sim.network.stations
        )
        read_seconds = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            restore_simulator(target, config)
            read_seconds = min(read_seconds, time.perf_counter() - started)
    return {
        "warm_duration": config.duration,
        "offered_load": config.offered_load,
        "state_bytes": state_bytes,
        "quadruplets": quadruplets,
        "connections": len(sim.active_connections),
        "write_seconds": write_seconds,
        "write_mb_per_sec": state_bytes / write_seconds / 1e6,
        "read_seconds": read_seconds,
        "read_mb_per_sec": state_bytes / read_seconds / 1e6,
    }


def bench_sampling_overhead(smoke: bool) -> dict:
    """Streaming-sampler cost: AC3 events/s with sampling on vs off.

    Runs the representative AC3 scenario with and without a 5 s
    time-series cadence — *interleaved* pairs, best-of-N each side, so
    transient machine interference (which dwarfs the sampler's actual
    per-event cost) hits both configurations alike and the two minima
    converge to the same no-interference speed.  Reports the resulting
    throughput ratio as ``overhead_fraction``.  The two runs must
    produce bit-identical ``metrics_key()``s (observation must not
    perturb the simulation); a mismatch fails the benchmark loudly.
    ``--compare`` gates the fraction at 5% regardless of the throughput
    threshold: sampling is supposed to be cheap enough to leave on.
    """
    config = stationary(
        "AC3",
        offered_load=200.0,
        voice_ratio=0.8,
        high_mobility=True,
        duration=200.0 if smoke else 600.0,
        seed=3,
    )
    sampled_config = replace(config, series_interval=5.0)
    repeats = 3 if smoke else 7
    plain = sampled = None
    for _ in range(repeats):
        result = CellularSimulator(config).run()
        if plain is None or result.wall_seconds < plain.wall_seconds:
            plain = result
        result = CellularSimulator(sampled_config).run()
        if sampled is None or result.wall_seconds < sampled.wall_seconds:
            sampled = result
    if sampled.metrics_key() != plain.metrics_key():
        raise RuntimeError(
            "time-series sampling perturbed the simulation: metrics"
            " differ between the sampled and the plain run"
        )

    def rate(result):
        return (
            result.events_processed / result.wall_seconds
            if result.wall_seconds > 0
            else float("inf")
        )

    plain_rate = rate(plain)
    sampled_rate = rate(sampled)
    return {
        "duration": config.duration,
        "series_interval": sampled_config.series_interval,
        "repeats": repeats,
        "samples": len(sampled.timeseries or []),
        "events_per_sec_plain": plain_rate,
        "events_per_sec_sampled": sampled_rate,
        "overhead_fraction": (
            1.0 - sampled_rate / plain_rate if plain_rate > 0 else 0.0
        ),
        "metrics_identical": True,
    }


def _rate(hits: float, misses: float) -> float:
    total = hits + misses
    return hits / total if total else 0.0


def bench_ac3_telemetry(smoke: bool) -> dict:
    """One telemetry-enabled AC3 run: cache/dispatch ratios + snapshot.

    Not a timing benchmark (``compare_reports`` ignores it): it records
    the *efficiency* observables — memo and snapshot hit rates, the
    Eq. 4 kernel dispatch split, the event-pool hit rate — so a report
    shows not just how fast the run was but why.
    """
    config = stationary(
        "AC3",
        offered_load=200.0,
        voice_ratio=0.8,
        high_mobility=True,
        duration=200.0,
        seed=3,
        telemetry=True,
    )
    snapshot = CellularSimulator(config).run().telemetry
    counters = snapshot["counters"]
    return {
        # The Eq. 5 contribution memo was removed (structurally-0% hit
        # rate under the coalesced tick); the field stays as an explicit
        # resolution marker so old reports' ``eq5_memo_hit_rate`` reads
        # as retired rather than silently vanished.
        "eq5_memo": "retired",
        # Fraction of Eq. 4 *rows* (per-connection evaluations) served
        # by the vectorized kernel — the row-weighted version of the
        # batch fraction, and the number the grouped flush moves.
        "eq4_numpy_row_fraction": _rate(
            counters.get('estimation.eq4_rows{kernel="numpy"}', 0),
            counters.get('estimation.eq4_rows{kernel="python"}', 0),
        ),
        # Fraction of tick-flush suppliers evaluated through the
        # cross-cell grouped batch (vs the per-supplier fallback).
        "tick_grouped_fraction": _rate(
            counters.get('cellular.tick_suppliers{path="grouped"}', 0),
            counters.get('cellular.tick_suppliers{path="fallback"}', 0),
        ),
        "eq4_numpy_batch_fraction": _rate(
            counters.get('estimation.eq4_batches{kernel="numpy"}', 0),
            counters.get('estimation.eq4_batches{kernel="python"}', 0),
        ),
        "snapshot_hit_rate": _rate(
            counters.get('estimation.snapshot{outcome="hit"}', 0),
            counters.get('estimation.snapshot{outcome="build"}', 0),
        ),
        "event_pool_hit_rate": _rate(
            counters.get('des.event_pool{outcome="hit"}', 0),
            counters.get('des.event_pool{outcome="miss"}', 0),
        ),
        "snapshot": snapshot,
    }


def bench_serve_latency(smoke: bool) -> dict:
    """The live admission service under the bundled load generator.

    Two variants: ``static`` measures the service layer itself (queue,
    batched engine advance, asyncio plumbing — the ``>= 10k
    decisions/s`` floor is gated on it), and ``ac3`` measures the full
    adaptive scheme, whose per-decision Eq. 5/6 estimator work
    dominates (the micro benches above track that cost in isolation).
    Decision latencies are the service's own measurement: submit wall
    time to batch-resolution wall time.
    """
    import asyncio

    from repro.serve import AdmissionService
    from repro.serve.loadgen import run_load

    variants = {}
    for name, scheme, decisions, concurrency, pipeline in (
        ("static", "static", 4_000 if smoke else 30_000, 32, 64),
        ("ac3", "AC3", 1_000 if smoke else 3_000, 8, 16),
    ):
        config = stationary(
            scheme,
            offered_load=100.0,
            duration=3_600.0,
            seed=3,
            num_cells=19,
        )

        async def drive(config=config, decisions=decisions,
                        concurrency=concurrency, pipeline=pipeline):
            service = AdmissionService(config, series_wall_interval=0.0)
            await service.start()
            report = await run_load(
                service,
                decisions=decisions,
                concurrency=concurrency,
                pipeline=pipeline,
            )
            await service.stop()
            return report

        report = asyncio.run(drive())
        variants[name] = {
            **report.to_json(),
            "scheme": scheme,
            "concurrency": concurrency,
            "pipeline": pipeline,
        }
    return variants


def run_benchmarks(
    smoke: bool = False,
    workers: int | None = None,
    replications: int | None = None,
    ci_level: float = 0.95,
) -> dict:
    duration = float(os.environ.get("REPRO_BENCH_DURATION", "0.5"))
    if smoke:
        duration = min(duration, 0.1)
    report = {
        "date": date.today().isoformat(),
        "smoke": smoke,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "kernel": kernel_name(),
        "micro_seconds_per_bench": duration,
        "micro": {
            "reservation_update_cold": bench_reservation_update(duration),
            "handoff_probability": bench_handoff_probability(duration),
            "handoff_probability_scalar": bench_handoff_probability_scalar(
                duration
            ),
            "event_loop": bench_event_loop(duration),
        },
        "simulation": {"ac3_load200": bench_ac3_run(smoke)},
    }
    # After the single-process timings, so pool forks and the
    # instrumented run cannot perturb them.
    report["simulation"]["ac3_replicated"] = bench_ac3_replicated(
        smoke, workers=workers, replications=replications, ci_level=ci_level
    )
    # The replicated bench leaves its persistent sweep pool warm for
    # the rest of the process.  The spatial benches fork their own
    # shard workers; retire the idle pool first so its processes do
    # not sit on memory (and the run queue) under the timed legs.
    from repro.simulation.runner import _close_shared_pools

    _close_shared_pools()
    report["simulation"]["ac3_spatial"] = bench_ac3_spatial(smoke)
    report["simulation"]["ac3_spatial_balanced"] = bench_ac3_spatial_balanced(
        smoke
    )
    report["memory"] = {"columnar_store": bench_columnar_memory()}
    report["state_io"] = bench_state_io(smoke)
    report["telemetry"] = bench_ac3_telemetry(smoke)
    report["sampling"] = bench_sampling_overhead(smoke)
    report["serve_latency"] = bench_serve_latency(smoke)
    return report


# ----------------------------------------------------------------------
# baseline comparison (the CI regression gate)
# ----------------------------------------------------------------------
def _throughputs(report: dict) -> dict[str, float]:
    """Flatten a report into comparable ``bench -> throughput`` pairs."""
    flat = {
        name: stats["ops_per_sec"]
        for name, stats in report.get("micro", {}).items()
    }
    simulation = report.get("simulation", {}).get("ac3_load200")
    if simulation:
        flat["ac3_load200"] = simulation["events_per_sec"]
    spatial = report.get("simulation", {}).get("ac3_spatial")
    if spatial:
        # Oversubscribed shard counts measure scheduler thrash, not the
        # runner: they are reported but never gated.
        for run in spatial.get("runs", ()):
            if not run.get("oversubscribed"):
                flat[f"ac3_spatial_s{run['shards']}"] = (
                    run["events_per_sec"]
                )
    balanced = report.get("simulation", {}).get("ac3_spatial_balanced")
    if balanced:
        for run in balanced.get("throughput", ()):
            if not run.get("oversubscribed"):
                flat[f"ac3_spatial_balanced_s{run['shards']}"] = (
                    run["events_per_sec"]
                )
    # serve_latency variants are deliberately absent: the static one is
    # gated by the absolute _SERVE_DECISIONS_FLOOR (relative comparison
    # of a smoke-scale CI run against a full-scale baseline is mostly
    # startup amortisation), and the AC3 one is estimator-bound — its
    # per-admission Eq. 5 flush cost is tracked in the report and the
    # --history table, not gated.
    return flat


#: Telemetry fractions (0..1) gated by ``--compare`` alongside the
#: throughputs: a drop of more than the threshold (absolute) means the
#: fast path stopped covering the work it used to cover.
_TRACKED_FRACTIONS = ("eq4_numpy_row_fraction", "tick_grouped_fraction")

#: Hard ceiling on the streaming sampler's throughput cost, gated by
#: ``--compare`` independently of ``--regression-threshold``: sampling
#: is meant to be cheap enough to leave on in production runs.
_SAMPLING_OVERHEAD_LIMIT = 0.05

#: Absolute floor on the live service's static-scheme decision
#: throughput, gated by ``--compare`` on full (non-smoke) runs: the
#: serving layer must sustain at least this many decisions/s.
_SERVE_DECISIONS_FLOOR = 10_000.0


def _fractions(report: dict) -> dict[str, float]:
    telemetry = report.get("telemetry", {})
    return {
        name: telemetry[name]
        for name in _TRACKED_FRACTIONS
        if isinstance(telemetry.get(name), (int, float))
    }


def compare_reports(
    baseline: dict, current: dict, threshold: float
) -> list[str]:
    """Print per-bench deltas; return the benches that regressed.

    A bench regresses when its throughput falls below
    ``baseline * (1 - threshold)``.  Benches present in only one report
    are listed but never counted as regressions (the harness itself
    evolves — e.g. ``handoff_probability`` became batched).  Tracked
    telemetry fractions regress on an *absolute* drop larger than the
    threshold (they are already normalized to [0, 1]).  The streaming
    sampler's ``overhead_fraction`` is gated against the fixed
    :data:`_SAMPLING_OVERHEAD_LIMIT` (no baseline needed: the ceiling
    is absolute).
    """
    base = _throughputs(baseline)
    now = _throughputs(current)
    regressions: list[str] = []
    print(f"{'bench':<28} {'baseline':>14} {'current':>14} {'speedup':>8}")
    for name in sorted(base.keys() | now.keys()):
        if name not in base:
            print(f"{name:<28} {'-':>14} {now[name]:>14,.0f} {'new':>8}")
            continue
        if name not in now:
            print(f"{name:<28} {base[name]:>14,.0f} {'-':>14} {'gone':>8}")
            continue
        speedup = now[name] / base[name] if base[name] > 0 else float("inf")
        flag = ""
        if now[name] < base[name] * (1.0 - threshold):
            regressions.append(name)
            flag = "  ** REGRESSION"
        print(
            f"{name:<28} {base[name]:>14,.0f} {now[name]:>14,.0f}"
            f" {speedup:>7.2f}x{flag}"
        )
    base_fractions = _fractions(baseline)
    now_fractions = _fractions(current)
    for name in sorted(base_fractions.keys() | now_fractions.keys()):
        if name not in base_fractions:
            print(f"{name:<28} {'-':>14} {now_fractions[name]:>13.1%} "
                  f"{'new':>8}")
            continue
        if name not in now_fractions:
            print(f"{name:<28} {base_fractions[name]:>13.1%} {'-':>14} "
                  f"{'gone':>8}")
            continue
        flag = ""
        if now_fractions[name] < base_fractions[name] - threshold:
            regressions.append(name)
            flag = "  ** REGRESSION"
        print(
            f"{name:<28} {base_fractions[name]:>13.1%} "
            f"{now_fractions[name]:>13.1%}{flag}"
        )
    overhead = current.get("sampling", {}).get("overhead_fraction")
    if isinstance(overhead, (int, float)):
        flag = ""
        if overhead > _SAMPLING_OVERHEAD_LIMIT:
            regressions.append("sampling_overhead")
            flag = "  ** REGRESSION"
        print(
            f"{'sampling_overhead':<28} "
            f"{_SAMPLING_OVERHEAD_LIMIT:>12.1%}* {overhead:>13.1%}{flag}"
        )
    serve_rate = (
        current.get("serve_latency", {})
        .get("static", {})
        .get("decisions_per_s")
    )
    if isinstance(serve_rate, (int, float)) and not current.get("smoke"):
        # Absolute floor (smoke runs use tiny decision counts where the
        # fixed start-up cost dominates — baseline-relative gating above
        # still covers them).
        flag = ""
        if serve_rate < _SERVE_DECISIONS_FLOOR:
            regressions.append("serve_decisions_floor")
            flag = "  ** REGRESSION"
        print(
            f"{'serve_decisions_floor':<28} "
            f"{_SERVE_DECISIONS_FLOOR:>13,.0f}* {serve_rate:>14,.0f}{flag}"
        )
    return regressions


# ----------------------------------------------------------------------
# history: trend table over committed reports
# ----------------------------------------------------------------------
def _history_cell(value: float | None, fmt: str = ",.0f") -> str:
    return format(value, fmt) if isinstance(value, (int, float)) else "-"


def _history_row(report: dict) -> dict:
    """Extract the trend-table columns from one report."""
    micro = report.get("micro", {})
    simulation = report.get("simulation", {})
    ac3 = simulation.get("ac3_load200", {})
    spatial_rate = None
    for run in simulation.get("ac3_spatial", {}).get("runs", ()):
        if not run.get("oversubscribed"):
            rate = run.get("events_per_sec")
            if rate is not None and (
                spatial_rate is None or rate > spatial_rate
            ):
                spatial_rate = rate
    balanced_rate = None
    for run in simulation.get("ac3_spatial_balanced", {}).get(
        "throughput", ()
    ):
        if not run.get("oversubscribed"):
            rate = run.get("events_per_sec")
            if rate is not None and (
                balanced_rate is None or rate > balanced_rate
            ):
                balanced_rate = rate
    replicated = simulation.get("ac3_replicated", {})
    serve = report.get("serve_latency", {}).get("static", {})
    return {
        "date": report.get("date", "?"),
        "kernel": report.get("kernel", "?"),
        "smoke": bool(report.get("smoke")),
        "ac3_events_per_sec": ac3.get("events_per_sec"),
        "event_loop": micro.get("event_loop", {}).get("events_per_sec"),
        "eq4_batch": micro.get("handoff_probability", {}).get(
            "ops_per_sec"
        ),
        "spatial_events_per_sec": spatial_rate,
        "balanced_events_per_sec": balanced_rate,
        "replicated_speedup": replicated.get("speedup"),
        "sampling_overhead": report.get("sampling", {}).get(
            "overhead_fraction"
        ),
        "serve_decisions_per_s": serve.get("decisions_per_s"),
        "serve_p99_ms": serve.get("p99_ms"),
    }


def print_history(paths: Sequence[Path], out=print) -> int:
    """Markdown trend table over committed ``BENCH_*.json`` reports.

    One row per report, oldest first (reports sort by their dated file
    names).  Smoke reports are flagged — their numbers use tiny
    measuring windows and a short simulation, so comparing them against
    full runs is meaningless.  Degrades gracefully at the small end: no
    reports at all prints a pointer instead of an empty table (exit 0 —
    a fresh clone is not an error), a single report renders with a note
    that a trend needs at least two.  Returns 2 only when reports were
    found but none could be read.
    """
    paths = sorted(paths)
    if not paths:
        out(
            "no BENCH_<date>.json reports found — run 'repro-bench'"
            " (or scripts/bench.py) to record the first one"
        )
        return 0
    rows = []
    for path in paths:
        try:
            report = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            out(f"WARNING: skipping {path}: {error}")
            continue
        rows.append(_history_row(report))
    if not rows:
        out("no readable benchmark reports")
        return 2
    out(
        "| date | kernel | ac3 ev/s | loop ev/s | eq4 ops/s"
        " | spatial ev/s | balanced ev/s | repl speedup | sampler ovh"
        " | serve dec/s | serve p99 |"
    )
    out("|---|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|")
    for row in rows:
        date_cell = row["date"] + (" (smoke)" if row["smoke"] else "")
        speedup = row["replicated_speedup"]
        overhead = row["sampling_overhead"]
        p99 = row.get("serve_p99_ms")
        out(
            f"| {date_cell} | {row['kernel']}"
            f" | {_history_cell(row['ac3_events_per_sec'])}"
            f" | {_history_cell(row['event_loop'])}"
            f" | {_history_cell(row['eq4_batch'])}"
            f" | {_history_cell(row['spatial_events_per_sec'])}"
            f" | {_history_cell(row.get('balanced_events_per_sec'))}"
            f" | {_history_cell(speedup, '.2f')}"
            f"{'x' if isinstance(speedup, (int, float)) else ''}"
            f" | {_history_cell(overhead, '.1%')}"
            f" | {_history_cell(row.get('serve_decisions_per_s'))}"
            f" | {_history_cell(p99, '.1f')}"
            f"{' ms' if isinstance(p99, (int, float)) else ''} |"
        )
    if len(rows) == 1:
        out("")
        out(
            "only one report — commit more BENCH_<date>.json files"
            " to see a trend"
        )
    return 0


def _print_report(report: dict, output: Path) -> None:
    print(f"kernel: {report['kernel']}")
    for name, stats in report["micro"].items():
        print(f"{name:<28} {stats['mean_us']:>10.3f} us/op "
              f"{stats['ops_per_sec']:>14,.0f} ops/s")
    sim = report["simulation"]["ac3_load200"]
    print(f"{'ac3_load200':<28} {sim['wall_seconds']:>10.2f} s    "
          f"{sim['events_per_sec']:>14,.0f} events/s  "
          f"N_calc={sim['n_calc']:.2f}  msgs={sim['avg_messages']:.2f}")
    replicated = report["simulation"].get("ac3_replicated")
    if replicated:
        rep = replicated["replicated"]
        print(
            f"{'ac3_replicated':<28} {rep['wall_seconds']:>10.2f} s    "
            f"speedup={replicated['speedup']:.2f}x"
            f" (workers={replicated['workers']},"
            f" K={replicated['replications']},"
            f" cpus={replicated['cpu_count']})"
        )
        print(
            f"{'':<28} P_CB={rep['p_cb']:.4f}"
            f"±{rep['p_cb_half_width']:.4f}"
            f"  P_HD={rep['p_hd']:.4f}±{rep['p_hd_half_width']:.4f}"
            f"  within_seq_ci="
            f"{replicated['merged_within_sequential_ci']}"
        )
    spatial = report["simulation"].get("ac3_spatial")
    if spatial:
        for run in spatial["runs"]:
            label = f"ac3_spatial ({spatial['grid']}, s={run['shards']})"
            over = "  [oversubscribed]" if run["oversubscribed"] else ""
            print(
                f"{label:<28} {run['wall_seconds']:>10.2f} s    "
                f"{run['events_per_sec']:>14,.0f} events/s  "
                f"speedup={run['speedup_vs_1']:.2f}x{over}"
            )
    balanced = report["simulation"].get("ac3_spatial_balanced")
    if balanced:
        for run in balanced["throughput"]:
            label = (
                f"ac3_balanced ({balanced['grid']}, s={run['shards']})"
            )
            over = "  [oversubscribed]" if run["oversubscribed"] else ""
            print(
                f"{label:<28} {run['wall_seconds']:>10.2f} s    "
                f"{run['events_per_sec']:>14,.0f} events/s  "
                f"imbalance={run['imbalance']:.3f}{over}"
            )
        for run in balanced["plans"]:
            label = f"ac3_balanced plan={run['plan']}"
            print(
                f"{label:<28} {run['wall_seconds']:>10.2f} s    "
                f"{run['events_per_sec']:>14,.0f} events/s  "
                f"imbalance={run['imbalance']:.3f}"
                f" (s={run['shards']}, hotspots)"
            )
    memory = report.get("memory", {}).get("columnar_store")
    if memory:
        print(
            f"{'columnar_memory':<28} "
            f"object={memory['object_bytes_per_connection']:.0f} B/conn"
            f"  columnar={memory['columnar_bytes_per_connection']:.0f}"
            f" B/conn  ratio={memory['ratio']:.1f}x"
            f" ({memory['ratio_with_handles']:.1f}x with live handles)"
        )
    state_io = report.get("state_io")
    if state_io:
        print(
            f"{'state_io':<28} "
            f"write={state_io['write_mb_per_sec']:.1f} MB/s"
            f" ({state_io['write_seconds'] * 1e3:.1f} ms)"
            f"  read={state_io['read_mb_per_sec']:.1f} MB/s"
            f" ({state_io['read_seconds'] * 1e3:.1f} ms)"
            f"  {state_io['state_bytes'] / 1e6:.2f} MB,"
            f" {state_io['quadruplets']} quads"
        )
    telemetry = report.get("telemetry")
    if telemetry:
        print(
            "telemetry (instrumented run):"
            f" snapshot_hit={telemetry['snapshot_hit_rate']:.1%}"
            f" pool_hit={telemetry['event_pool_hit_rate']:.1%}"
            f" eq4_numpy_rows={telemetry['eq4_numpy_row_fraction']:.1%}"
            f" tick_grouped={telemetry['tick_grouped_fraction']:.1%}"
        )
    sampling = report.get("sampling")
    if sampling:
        print(
            f"{'sampling_overhead':<28} "
            f"plain={sampling['events_per_sec_plain']:,.0f} ev/s"
            f"  sampled={sampling['events_per_sec_sampled']:,.0f} ev/s"
            f"  overhead={sampling['overhead_fraction']:.1%}"
            f" ({sampling['samples']} samples)"
        )
    for name, variant in report.get("serve_latency", {}).items():
        print(
            f"{f'serve_{name}':<28} "
            f"{variant['decisions_per_s']:>14,.0f} decisions/s  "
            f"P50={variant['p50_ms']:.2f} ms  P99={variant['p99_ms']:.2f} ms"
            f"  (c={variant['concurrency']}, pipe={variant['pipeline']})"
        )
    print(f"wrote {output}")


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="short CI run: tiny measuring windows and a short simulation",
    )
    parser.add_argument(
        "--output", type=Path, default=None, metavar="FILE",
        help="report path (default: ./BENCH_<date>.json)",
    )
    parser.add_argument(
        "--kernel", default=None, choices=list(KERNELS),
        help="estimation kernel to benchmark (default: auto-detect)",
    )
    parser.add_argument(
        "--profile", nargs="?", type=int, const=25, default=None,
        metavar="N",
        help="cProfile the benchmark run and print the top N entries"
        " by internal time (default 25)",
    )
    parser.add_argument(
        "--compare", type=Path, default=None, metavar="BASELINE",
        help="print per-bench speedups against a previous report and"
        " exit non-zero on regression; a missing baseline file is"
        " skipped with a warning",
    )
    parser.add_argument(
        "--history", nargs="?", type=Path, const=Path("."), default=None,
        metavar="DIR",
        help="print a markdown trend table over the BENCH_*.json"
        " reports in DIR (default: current directory) and exit,"
        " without running any benchmark",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="process-pool width of the replication benchmark"
        " (default: 8, or 2 with --smoke)",
    )
    parser.add_argument(
        "--replications", type=int, default=None, metavar="K",
        help="shard count of the replication benchmark"
        " (default: 8, or 4 with --smoke)",
    )
    parser.add_argument(
        "--ci-level", type=float, default=0.95, metavar="P",
        help="confidence level of the replication benchmark's intervals"
        " (default 0.95)",
    )
    parser.add_argument(
        "--regression-threshold", type=float, default=0.20,
        metavar="FRACTION",
        help="throughput drop that counts as a regression for --compare"
        " (default 0.20)",
    )
    parser.add_argument(
        "--log-level", default=None, metavar="SPEC",
        help="log level spec, e.g. 'info' or 'info,des=debug'"
        " (also: REPRO_LOG)",
    )
    parser.add_argument(
        "--log-json", action="store_true",
        help="emit logs as JSON lines (also: REPRO_LOG_JSON=1)",
    )
    args = parser.parse_args(argv)
    if args.history is not None:
        return print_history(sorted(args.history.glob("BENCH_*.json")))
    if args.log_level is not None or args.log_json:
        configure_logging(spec=args.log_level, json_lines=args.log_json)
    else:
        ensure_configured()
    if args.kernel is not None:
        set_kernel(args.kernel)
    if args.profile is not None:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        report = run_benchmarks(
            smoke=args.smoke,
            workers=args.workers,
            replications=args.replications,
            ci_level=args.ci_level,
        )
        profiler.disable()
    else:
        report = run_benchmarks(
            smoke=args.smoke,
            workers=args.workers,
            replications=args.replications,
            ci_level=args.ci_level,
        )
    output = args.output
    if output is None:
        output = Path(f"BENCH_{report['date']}.json")
    if output.parent != Path("."):
        output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(report, indent=2) + "\n")
    _print_report(report, output)
    if args.profile is not None:
        print(f"\n== cProfile top {args.profile} (by internal time) ==")
        pstats.Stats(profiler).sort_stats("tottime").print_stats(
            args.profile
        )
    if args.compare is not None:
        if not args.compare.exists():
            # A fresh clone (or a branch predating committed baselines)
            # has nothing to gate against; that is not a CI failure.
            print(
                f"WARNING: baseline {args.compare} not found;"
                " skipping comparison"
            )
            return 0
        baseline = json.loads(args.compare.read_text())
        print(f"\n== comparison vs {args.compare} ==")
        regressions = compare_reports(
            baseline, report, args.regression_threshold
        )
        if regressions:
            print(
                f"FAIL: {len(regressions)} bench(es) regressed more than"
                f" {args.regression_threshold:.0%}: {', '.join(regressions)}"
            )
            return 1
        print("no regressions")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
