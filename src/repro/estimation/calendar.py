"""Day-type pattern sets: weekday vs weekend histories (paper §3.1).

The paper notes that weekend/holiday mobility differs enough from
weekday mobility that *another set of quadruplets will be cached for
these special days*, with the estimation functions for weekends built
over a weekly period ``T_week`` instead of ``T_day``.

:class:`CalendarEstimator` implements exactly that: it owns one
:class:`~repro.estimation.estimator.MobilityEstimator` per *day type*
and routes every recording and query to the estimator of the day type
the timestamp falls in.  Day types are defined by a
:class:`WeekSchedule` (a 7-entry pattern like the classic 5 weekdays +
2 weekend days).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.estimation.cache import DAY_SECONDS, CacheConfig
from repro.estimation.estimator import MobilityEstimator


@dataclass(frozen=True)
class WeekSchedule:
    """Maps day-of-week to a day-type name.

    Attributes
    ----------
    pattern:
        One label per day of the simulated week; day 0 is the day that
        contains t = 0.
    day_seconds:
        Length of a day in simulated seconds (scaled scenarios shrink
        it together with everything else).
    """

    pattern: tuple[str, ...] = (
        "weekday", "weekday", "weekday", "weekday", "weekday",
        "weekend", "weekend",
    )
    day_seconds: float = DAY_SECONDS

    def __post_init__(self) -> None:
        if not self.pattern:
            raise ValueError("the week needs at least one day")
        if self.day_seconds <= 0:
            raise ValueError("day_seconds must be positive")

    @property
    def week_seconds(self) -> float:
        return len(self.pattern) * self.day_seconds

    def day_type(self, time_seconds: float) -> str:
        """Day-type label at an absolute simulated time."""
        day_index = int(time_seconds // self.day_seconds) % len(self.pattern)
        return self.pattern[day_index]

    def occurrences_per_week(self, day_type: str) -> int:
        return sum(1 for label in self.pattern if label == day_type)


@dataclass
class CalendarEstimator:
    """Routes mobility estimation through per-day-type pattern sets.

    Each day type gets its own quadruplet cache whose periodic window
    repeats weekly (``period = T_week``), so Tuesday 9 am is estimated
    from past Tuesdays-at-9-am... approximately: all days sharing a
    type share one estimator, so with the default schedule any weekday
    morning learns from every past weekday morning — which is the
    paper's intent (weekdays look alike; weekends do not).

    The interface mirrors :class:`MobilityEstimator`, so a
    ``CalendarEstimator`` drops into
    :class:`~repro.cellular.network.CellularNetwork` via
    ``estimator_factory``.
    """

    schedule: WeekSchedule = field(default_factory=WeekSchedule)
    interval: float = 3600.0
    max_per_pair: int = 100
    weights: tuple[float, ...] = (1.0, 1.0)

    def __post_init__(self) -> None:
        self._estimators: dict[str, MobilityEstimator] = {}
        for day_type in set(self.schedule.pattern):
            occurrences = self.schedule.occurrences_per_week(day_type)
            # A type occurring daily can keep the daily period; rarer
            # types repeat weekly (the paper's T_week).
            if occurrences == len(self.schedule.pattern):
                period = self.schedule.day_seconds
            else:
                period = self.schedule.week_seconds
            self._estimators[day_type] = MobilityEstimator(
                CacheConfig(
                    interval=self.interval,
                    max_per_pair=self.max_per_pair,
                    weights=self.weights,
                    period=period,
                )
            )

    # ------------------------------------------------------------------
    # MobilityEstimator interface
    # ------------------------------------------------------------------
    def estimator_for(self, now: float) -> MobilityEstimator:
        """The pattern set active at time ``now``."""
        return self._estimators[self.schedule.day_type(now)]

    def record_departure(
        self,
        event_time: float,
        prev: int | None,
        next_cell: int,
        sojourn: float,
    ) -> None:
        self.estimator_for(event_time).record_departure(
            event_time, prev, next_cell, sojourn
        )
        for day_type in self._boundary_neighbors(event_time):
            self._estimators[day_type].record_departure(
                event_time, prev, next_cell, sojourn
            )

    def _boundary_neighbors(self, event_time: float) -> list[str]:
        """Adjacent day types whose query windows can reach ``event_time``.

        A query at (say) Friday 23:55 selects quadruplets in the
        ``T_int`` half-width window around 23:55, which wraps past
        midnight into Saturday — a *different* day type whose estimator
        never saw Friday's entries.  To make such boundary windows see
        both sides, a departure recorded within ``interval`` of a
        type-changing day boundary is mirrored into the neighboring day
        type's estimator as well.  Mirrored entries inflate the
        aggregate ``total_recorded`` (one physical hand-off, two
        recordings); conservation checks must use the router's event
        count, not the cache union.  With ``interval = None`` every
        window is infinite and day types are meant to stay disjoint, so
        nothing is mirrored; likewise when ``interval >= day_seconds``
        (a window wider than a day overlaps *every* boundary — day
        typing itself is the misconfiguration there, not the routing).
        """
        pattern = self.schedule.pattern
        day_seconds = self.schedule.day_seconds
        if self.interval is None or self.interval >= day_seconds:
            return []
        day_index = int(event_time // day_seconds)
        offset = event_time - day_index * day_seconds
        here = pattern[day_index % len(pattern)]
        neighbors = []
        if offset < self.interval:
            before = pattern[(day_index - 1) % len(pattern)]
            if before != here:
                neighbors.append(before)
        if day_seconds - offset <= self.interval:
            after = pattern[(day_index + 1) % len(pattern)]
            if after != here and after not in neighbors:
                neighbors.append(after)
        return neighbors

    def handoff_probability(
        self,
        now: float,
        prev: int | None,
        extant_sojourn: float,
        next_cell: int,
        t_est: float,
    ) -> float:
        return self.estimator_for(now).handoff_probability(
            now, prev, extant_sojourn, next_cell, t_est
        )

    def handoff_probabilities(
        self,
        now: float,
        prev: int | None,
        extant_sojourn: float,
        t_est: float,
    ) -> dict[int, float]:
        return self.estimator_for(now).handoff_probabilities(
            now, prev, extant_sojourn, t_est
        )

    def expected_bandwidth(
        self,
        now: float,
        connections,
        target_cell: int,
        t_est: float,
        groups: dict | None = None,
    ) -> float:
        return self.estimator_for(now).expected_bandwidth(
            now, connections, target_cell, t_est, groups=groups
        )

    def is_stationary(
        self, now: float, prev: int | None, extant_sojourn: float
    ) -> bool:
        return self.estimator_for(now).is_stationary(
            now, prev, extant_sojourn
        )

    def max_sojourn(self, now: float) -> float:
        return self.estimator_for(now).max_sojourn(now)

    def function_for(self, now: float, prev: int | None):
        return self.estimator_for(now).function_for(now, prev)

    @property
    def version(self) -> int:
        """Monotone change counter (sum over the per-day-type estimators).

        Lets the base-station reservation memo treat a calendar
        estimator like a plain one: any new quadruplet, whichever day
        type it lands in, bumps the aggregate.
        """
        return sum(
            estimator.version for estimator in self._estimators.values()
        )

    @property
    def cache(self):
        """Aggregate view used by conservation checks: total recordings."""
        return _AggregateCacheView(self._estimators)


class _AggregateCacheView:
    """Read-only union of the per-day-type caches."""

    def __init__(self, estimators: dict[str, MobilityEstimator]) -> None:
        self._estimators = estimators

    @property
    def total_recorded(self) -> int:
        return sum(
            estimator.cache.total_recorded
            for estimator in self._estimators.values()
        )

    def size(self) -> int:
        return sum(
            estimator.cache.size()
            for estimator in self._estimators.values()
        )
