"""Mobility estimation from aggregate hand-off histories (paper §3).

Public surface:

* :class:`HandoffQuadruplet` — one observed hand-off departure.
* :class:`CacheConfig` / :class:`QuadrupletCache` — periodic-window
  storage with the paper's priority and eviction rules.
* :class:`HandoffEstimationFunction` — queryable ``F_HOE`` snapshot.
* :class:`MobilityEstimator` — Bayes hand-off probabilities (Eq. 4).
* :class:`KnownPathEstimator` — route-guidance variant (§7).
"""

from repro.estimation.calendar import CalendarEstimator, WeekSchedule
from repro.estimation.cache import (
    DAY_SECONDS,
    CacheConfig,
    QuadrupletCache,
    WeightedQuadruplet,
)
from repro.estimation.estimator import KnownPathEstimator, MobilityEstimator
from repro.estimation.function import HandoffEstimationFunction
from repro.estimation.quadruplet import HandoffQuadruplet

__all__ = [
    "DAY_SECONDS",
    "CacheConfig",
    "CalendarEstimator",
    "HandoffEstimationFunction",
    "HandoffQuadruplet",
    "KnownPathEstimator",
    "MobilityEstimator",
    "QuadrupletCache",
    "WeekSchedule",
    "WeightedQuadruplet",
]
