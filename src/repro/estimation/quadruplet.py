"""The hand-off event quadruplet (paper §3.1).

Whenever a mobile departs a cell, that cell's base station caches
``(T_event, prev, next, T_soj)``: departure time, the cell the mobile
came from (``None`` if the connection was born in this cell — the
paper's ``prev = 0``), the cell it entered, and its sojourn time here.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class HandoffQuadruplet:
    """One observed hand-off departure.

    Attributes
    ----------
    event_time:
        ``T_event`` — virtual time (seconds) when the mobile left.
    prev:
        Global id of the previously-resided cell, or ``None`` when the
        connection started in the observing cell.
    next:
        Global id of the cell the mobile moved into.
    sojourn:
        ``T_soj`` — seconds between entering and leaving the observing
        cell.
    """

    event_time: float
    prev: int | None
    next: int
    sojourn: float

    def __post_init__(self) -> None:
        if self.sojourn < 0:
            raise ValueError(f"negative sojourn time {self.sojourn}")
        if self.event_time < 0:
            raise ValueError(f"negative event time {self.event_time}")
