"""The hand-off event quadruplet (paper §3.1).

Whenever a mobile departs a cell, that cell's base station caches
``(T_event, prev, next, T_soj)``: departure time, the cell the mobile
came from (``None`` if the connection was born in this cell — the
paper's ``prev = 0``), the cell it entered, and its sojourn time here.

Quadruplets are created on every hand-off and held by the thousands in
:class:`repro.estimation.cache.QuadrupletCache`, so the class is a
hand-rolled ``__slots__`` value type rather than a dataclass: no
instance ``__dict__``, and construction skips the frozen-dataclass
``object.__setattr__`` detour.
"""

from __future__ import annotations


class HandoffQuadruplet:
    """One observed hand-off departure.

    Attributes
    ----------
    event_time:
        ``T_event`` — virtual time (seconds) when the mobile left.
        Negative for history imported from a prior warm-up run (the
        replication runner rebases that history before the shard's
        t=0, keeping the cache's record-in-time-order invariant).
    prev:
        Global id of the previously-resided cell, or ``None`` when the
        connection started in the observing cell.
    next:
        Global id of the cell the mobile moved into.
    sojourn:
        ``T_soj`` — seconds between entering and leaving the observing
        cell.
    """

    __slots__ = ("event_time", "prev", "next", "sojourn")

    def __init__(
        self,
        event_time: float,
        prev: int | None,
        next: int,
        sojourn: float,
    ) -> None:
        if sojourn < 0:
            raise ValueError(f"negative sojourn time {sojourn}")
        self.event_time = event_time
        self.prev = prev
        self.next = next
        self.sojourn = sojourn

    def _key(self) -> tuple:
        return (self.event_time, self.prev, self.next, self.sojourn)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HandoffQuadruplet):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HandoffQuadruplet(event_time={self.event_time!r},"
            f" prev={self.prev!r}, next={self.next!r},"
            f" sojourn={self.sojourn!r})"
        )
