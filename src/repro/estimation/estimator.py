"""Per-cell mobility estimator: Bayes hand-off probabilities (Eq. 4).

Each base station owns one :class:`MobilityEstimator`.  It records a
quadruplet for every mobile departing the cell, and answers: *with what
probability will an active connection, which entered from cell ``prev``
and has been here for ``T_ext-soj`` seconds, hand off into cell ``next``
within the next ``T_est`` seconds?* — exactly Eq. 4::

                sum of F_HOE mass, T_ext-soj < T_soj <= T_ext-soj + T_est, toward `next`
    p_h = -------------------------------------------------------------------------
                sum of F_HOE mass, T_soj > T_ext-soj, toward every next cell

A zero denominator means no observed mobile from ``prev`` ever stayed
longer than this one has: the mobile is *estimated stationary* and all
hand-off probabilities are zero (paper §4.1).

Function snapshots are cached per ``prev`` and rebuilt lazily when new
quadruplets arrive or (for finite ``T_int``) when the snapshot is older
than ``rebuild_interval`` — a documented approximation of the paper's
continuously sliding periodic windows.  Infinite-interval snapshots are
assembled from the cache's columnar fast path (sorted sojourn columns,
no per-entry wrappers); Eq. 4/5 batches then evaluate over whole
per-``prev`` connection populations in one vectorized pass when the
numpy kernel is active (:mod:`repro._kernel`).
"""

from __future__ import annotations

from typing import Sequence

from repro._kernel import numpy_or_none
from repro.estimation.cache import CacheConfig, QuadrupletCache
from repro.estimation.function import HandoffEstimationFunction
from repro.estimation.quadruplet import HandoffQuadruplet
from repro.obs.telemetry import get_telemetry

#: Group size below which the resumable pure-Python walk beats the
#: vectorized kernel (ndarray call overhead dominates tiny batches;
#: measured crossover is ~32 rows on CPython 3.11 + numpy 2.x).  Both
#: paths compute bit-identical contributions, so mixing them per group
#: never changes metrics.
_VECTOR_MIN_ROWS = 32


class MobilityEstimator:
    """History-based mobility estimation for one cell.

    Parameters
    ----------
    config:
        Quadruplet-cache tunables (``T_int``, ``N_quad``, weights, period).
    rebuild_interval:
        For finite ``T_int``, maximum snapshot age (seconds) before the
        active set is recomputed even without new observations.
    """

    def __init__(
        self,
        config: CacheConfig | None = None,
        rebuild_interval: float = 60.0,
    ) -> None:
        self.cache = QuadrupletCache(config)
        self.rebuild_interval = float(rebuild_interval)
        self._snapshots: dict[
            int | None, tuple[float, HandoffEstimationFunction]
        ] = {}
        self._dirty: set[int | None] = set()
        #: Monotone counter bumped on every new observation.  Consumers
        #: (the base-station reservation cache) treat any change as
        #: "every F_HOE snapshot may differ" and recompute.
        self.version = 0
        # Observability counters (plain ints, harvested at end of run).
        #: Snapshot cache: reuses vs (re)builds vs dirty invalidations.
        self.snapshot_hits = 0
        self.snapshot_builds = 0
        self.snapshot_invalidations = 0
        #: Eq. 4/5 batch dispatch split: vectorized numpy passes vs
        #: pure-python bisect walks, in batches and total rows.
        self.eq4_vector_batches = 0
        self.eq4_scalar_batches = 0
        self.eq4_vector_rows = 0
        self.eq4_scalar_rows = 0
        #: Batch-size distribution, observed into the active telemetry
        #: registry (a shared no-op when telemetry is disabled).
        self._batch_rows_histogram = get_telemetry().histogram(
            "estimation.eq4_batch_rows"
        )

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_departure(
        self,
        event_time: float,
        prev: int | None,
        next_cell: int,
        sojourn: float,
    ) -> None:
        """Cache the quadruplet of a mobile that just left the cell."""
        self.cache.record(
            HandoffQuadruplet(event_time, prev, next_cell, sojourn)
        )
        if prev not in self._dirty and prev in self._snapshots:
            self.snapshot_invalidations += 1
        self._dirty.add(prev)
        self.version += 1

    def preload(self, pairs) -> None:
        """Warm-start from exported history columns (bulk, pre-run).

        ``pairs`` maps ``(prev, next)`` to parallel ``(times, sojourns)``
        sequences, as produced by
        :meth:`repro.estimation.cache.QuadrupletCache.export_columns`.
        Equivalent to replaying :meth:`record_departure` per entry, but
        loads whole columns at once; snapshots are dropped and the
        version bumped so every consumer rebuilds from the new history.
        """
        self.cache.preload(pairs)
        self._snapshots.clear()
        self._dirty.clear()
        self.version += 1

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def function_for(
        self, now: float, prev: int | None
    ) -> HandoffEstimationFunction:
        """The F_HOE snapshot for ``prev`` at time ``now`` (lazily built)."""
        cached = self._snapshots.get(prev)
        if cached is not None and prev not in self._dirty:
            built_at, snapshot = cached
            if (
                self.cache.config.interval is None
                or now - built_at < self.rebuild_interval
            ):
                self.snapshot_hits += 1
                return snapshot
        columns = self.cache.active_columns(now, prev)
        if columns is not None:
            snapshot = HandoffEstimationFunction.from_columns(columns)
        else:
            snapshot = HandoffEstimationFunction(self.cache.active(now, prev))
        self._snapshots[prev] = (now, snapshot)
        self._dirty.discard(prev)
        self.snapshot_builds += 1
        return snapshot

    def _count_dispatch(self, vectorized: bool, rows: int) -> None:
        """Record one Eq. 4/5 batch dispatch (kernel choice + size)."""
        if vectorized:
            self.eq4_vector_batches += 1
            self.eq4_vector_rows += rows
        else:
            self.eq4_scalar_batches += 1
            self.eq4_scalar_rows += rows
        self._batch_rows_histogram.observe(rows)

    # ------------------------------------------------------------------
    # Eq. 4 and derived queries
    # ------------------------------------------------------------------
    def handoff_probability(
        self,
        now: float,
        prev: int | None,
        extant_sojourn: float,
        next_cell: int,
        t_est: float,
    ) -> float:
        """``p_h(connection -> next_cell)`` within ``t_est`` seconds."""
        if t_est <= 0:
            return 0.0
        snapshot = self.function_for(now, prev)
        denominator = snapshot.total_mass_above(extant_sojourn)
        if denominator <= 0.0:
            return 0.0  # estimated stationary
        numerator = snapshot.mass_between(
            next_cell, extant_sojourn, extant_sojourn + t_est
        )
        probability = numerator / denominator
        # Guard against floating point drift; Eq. 4 is a probability.
        return min(max(probability, 0.0), 1.0)

    def handoff_probability_batch(
        self,
        now: float,
        prev: int | None,
        extant_sojourns: Sequence[float],
        next_cell: int,
        t_est: float,
    ) -> list[float]:
        """Eq. 4 over a whole batch of extant sojourn times.

        One snapshot fetch, then a single vectorized ``searchsorted``
        + prefix-sum pass under the numpy kernel (per-query binary
        searches otherwise).  Each element equals the corresponding
        :meth:`handoff_probability` call exactly.
        """
        snapshot = self.function_for(now, prev)
        queries = list(extant_sojourns)
        self._count_dispatch(numpy_or_none() is not None, len(queries))
        return snapshot.batch_probabilities(next_cell, queries, t_est)

    def handoff_probabilities(
        self,
        now: float,
        prev: int | None,
        extant_sojourn: float,
        t_est: float,
    ) -> dict[int, float]:
        """``p_h`` toward every observed next cell (single denominator)."""
        snapshot = self.function_for(now, prev)
        denominator = snapshot.total_mass_above(extant_sojourn)
        if denominator <= 0.0 or t_est <= 0:
            return {}
        result: dict[int, float] = {}
        for next_cell in snapshot.next_cells():
            numerator = snapshot.mass_between(
                next_cell, extant_sojourn, extant_sojourn + t_est
            )
            if numerator > 0.0:
                result[next_cell] = min(numerator / denominator, 1.0)
        return result

    def expected_bandwidth(
        self,
        now: float,
        connections,
        target_cell: int,
        t_est: float,
        groups: dict | None = None,
    ) -> float:
        """Eq. 5 in batch: expected hand-off bandwidth toward a cell.

        Equivalent to summing ``bandwidth * handoff_probability(...)``
        over ``connections`` but fetches each ``prev`` snapshot once —
        this is the hot path of the reservation protocol.

        ``groups`` is an optional pre-bucketed columnar view of
        ``connections`` (``prev -> ReservationGroup`` with parallel
        key/entry-time/basis arrays sorted by entry time, as maintained
        incrementally by :class:`repro.cellular.cell.Cell`).  When
        given, each snapshot is queried over the whole group at once:
        one vectorized ``searchsorted`` pass under the numpy kernel, a
        resumable sorted binary-search walk otherwise.  Contributions
        are still summed in ``connections`` iteration order, so the
        result is bit-identical to the ungrouped path.
        """
        if t_est <= 0:
            return 0.0
        if groups is None:
            total = 0.0
            snapshots: dict[int | None, HandoffEstimationFunction] = {}
            for connection in connections:
                prev = connection.prev_cell
                snapshot = snapshots.get(prev)
                if snapshot is None:
                    snapshot = self.function_for(now, prev)
                    snapshots[prev] = snapshot
                extant = now - connection.cell_entry_time
                denominator = snapshot.total_mass_above(extant)
                if denominator <= 0.0:
                    continue  # estimated stationary
                numerator = snapshot.mass_between(
                    target_cell, extant, extant + t_est
                )
                if numerator > 0.0:
                    # Adaptive-QoS connections reserve their minimum rate
                    # (paper §1); rigid ones expose it as the full rate.
                    basis = getattr(
                        connection, "reservation_basis", connection.bandwidth
                    )
                    total += basis * min(numerator / denominator, 1.0)
            return total
        if not groups:
            return 0.0
        np = numpy_or_none()
        contributions: dict[int, float] = {}
        for prev, group in groups.items():
            snapshot = self.function_for(now, prev)
            if snapshot.is_empty:
                continue
            keys = group.keys
            if np is not None and len(keys) >= _VECTOR_MIN_ROWS:
                self._count_dispatch(True, len(keys))
                entries, bases = group.arrays(np)
                snapshot.batch_contributions_arrays(
                    np,
                    target_cell,
                    keys,
                    now - entries,
                    bases,
                    t_est,
                    contributions,
                )
            else:
                # Entry times ascend, so walking them in reverse yields
                # the non-decreasing extant sojourns the resumable
                # binary searches need — no per-call sort.
                self._count_dispatch(False, len(keys))
                entries = group.entries
                bases = group.bases
                rows = (
                    (keys[index], now - entries[index], bases[index])
                    for index in range(len(keys) - 1, -1, -1)
                )
                contributions.update(
                    snapshot.batch_contributions(target_cell, rows, t_est)
                )
        if not contributions:
            return 0.0
        total = 0.0
        for connection in connections:
            value = contributions.get(connection.connection_id)
            if value is not None:
                total += value
        return total

    def expected_bandwidth_multi(
        self,
        now: float,
        connections,
        requests: Sequence[tuple[int, float]],
        groups: dict | None = None,
    ) -> list[float]:
        """Eq. 5 toward several ``(target_cell, t_est)`` requests at once.

        The coalesced reservation tick asks one supplying station for
        contributions toward every dirty neighbour in a single call.
        With ``groups``, each ``prev`` snapshot is fetched once and the
        Eq. 4 denominator gather is shared across all requests
        (:meth:`HandoffEstimationFunction.batch_contributions_multi_arrays`),
        so the vectorized kernel sees one batch of ``rows x targets``
        instead of ``targets`` separate batches.  Element ``i`` equals
        ``expected_bandwidth(now, connections, *requests[i], groups)``
        bit for bit.
        """
        if not requests:
            return []
        connections = list(connections)
        if groups is None or not groups:
            return [
                self.expected_bandwidth(
                    now, connections, target_cell, t_est, groups=groups
                )
                for target_cell, t_est in requests
            ]
        np = numpy_or_none()
        per_request: list[dict[int, float]] = [{} for _ in requests]
        for prev, group in groups.items():
            snapshot = self.function_for(now, prev)
            if snapshot.is_empty:
                continue
            keys = group.keys
            if np is not None and len(keys) >= _VECTOR_MIN_ROWS:
                # One logical dispatch covering every request — this is
                # the batch-size win the coalesced tick exists for.
                self._count_dispatch(True, len(keys) * len(requests))
                entries, bases = group.arrays(np)
                snapshot.batch_contributions_multi_arrays(
                    np,
                    requests,
                    keys,
                    now - entries,
                    bases,
                    per_request,
                )
            else:
                self._count_dispatch(False, len(keys) * len(requests))
                entries = group.entries
                bases = group.bases
                for (target_cell, t_est), out in zip(
                    requests, per_request
                ):
                    if t_est <= 0:
                        continue
                    rows = (
                        (keys[index], now - entries[index], bases[index])
                        for index in range(len(keys) - 1, -1, -1)
                    )
                    out.update(
                        snapshot.batch_contributions(
                            target_cell, rows, t_est
                        )
                    )
        totals: list[float] = []
        for (_target_cell, t_est), contributions in zip(
            requests, per_request
        ):
            if t_est <= 0 or not contributions:
                totals.append(0.0)
                continue
            total = 0.0
            for connection in connections:
                value = contributions.get(connection.connection_id)
                if value is not None:
                    total += value
            totals.append(total)
        return totals

    def grouped_flush_parts(
        self,
        np,
        now: float,
        requests: Sequence[tuple[int, float]],
        plan,
        batch,
    ):
        """Register this station's Eq. 5 work into a cross-cell flush.

        ``plan`` is the supplier's cached flush plan
        (:meth:`repro.cellular.base_station.BaseStation.grouped_flush_plan`):
        concatenated entry-time/basis columns, one slice per ``prev``
        block, and the row permutation that restores connection
        iteration order.  ``batch`` is the tick-wide
        :class:`repro._kernel.FlushBatch`; this method only runs the
        per-block binary searches and registers the parts — the single
        flush-level arithmetic pass happens in ``batch.resolve()``.

        Returns one :class:`repro._kernel.FlushSegment` (or ``None``
        for ``t_est <= 0``) per request; each segment's ``total`` is
        bit-identical to the matching :meth:`expected_bandwidth_multi`
        element.  Returns ``None`` when any needed snapshot is not
        unit-weight (finite ``T_int`` / non-unit day weights) — the
        caller then falls back to the per-supplier path.
        """
        entries_cat, bases_cat, blocks, perm, n_rows = plan
        function_for = self.function_for
        snapshots = []
        for prev, _start, _end in blocks:
            snapshot = function_for(now, prev)
            if not snapshot.is_empty and not snapshot.is_unit_weight:
                return None
            snapshots.append(snapshot)
        extants = now - entries_cat
        new_segment = batch.new_segment
        segments = [
            new_segment(n_rows, perm) if t_est > 0 else None
            for _target_cell, t_est in requests
        ]
        n_requests = len(requests)
        highs: list = [None] * n_requests
        count_dispatch = self._count_dispatch
        union_indices = batch.union_indices
        add_part = batch.add_part
        for snapshot, (prev, start, end) in zip(snapshots, blocks):
            if snapshot.is_empty:
                continue
            # The whole block evaluates in the flush-level vectorized
            # pass regardless of its own size — that is the point of
            # gathering rows across suppliers.
            count_dispatch(True, (end - start) * n_requests)
            block_extants = extants[start:end]
            union_sojourns = None
            idx_u = None
            for index, (target_cell, t_est) in enumerate(requests):
                segment = segments[index]
                if segment is None:
                    continue
                target_sojourns = snapshot.target_sojourn_array(
                    np, target_cell
                )
                if target_sojourns is None:
                    continue
                if union_sojourns is None:
                    union_sojourns = snapshot.union_sojourn_array(np)
                    idx_u = union_indices(union_sojourns, block_extants)
                high = highs[index]
                if high is None:
                    high = highs[index] = extants + t_est
                add_part(
                    segment,
                    start,
                    idx_u,
                    len(union_sojourns),
                    target_sojourns,
                    block_extants,
                    high[start:end],
                    bases_cat[start:end],
                )
        return segments

    def is_stationary(
        self, now: float, prev: int | None, extant_sojourn: float
    ) -> bool:
        """True when no observed sojourn (for ``prev``) exceeds this one."""
        snapshot = self.function_for(now, prev)
        return snapshot.total_mass_above(extant_sojourn) <= 0.0

    def max_sojourn(self, now: float) -> float:
        """Largest active sojourn over all ``prev`` (bounds ``T_est``).

        Runs on every hand-off arrival (via ``neighborhood_max_sojourn``),
        so it must not rebuild snapshots.  Infinite-interval caches
        answer from their incrementally sorted union columns in
        O(number of pairs); only the windowed configuration still walks
        the per-``prev`` snapshots.
        """
        fast = self.cache.max_active_sojourn()
        if fast is not None:
            return fast
        maximum = 0.0
        for prev in self.cache.prev_keys():
            maximum = max(maximum, self.function_for(now, prev).max_sojourn())
        return maximum


class KnownPathEstimator(MobilityEstimator):
    """Estimator for mobiles whose route is known (paper §7 extension).

    With ITS/GPS route guidance the *next cell* is known a priori; the
    history is then used only to estimate the sojourn time.  The hand-off
    probability mass therefore concentrates on the known next cell and
    uses the sojourn distribution marginalised over all historical next
    cells.

    Parameters
    ----------
    config:
        Cache tunables, as for :class:`MobilityEstimator`.
    route_oracle:
        Optional callable mapping a connection to its known next cell
        (``None`` when the route is unknown — the estimator then falls
        back to the history-only Eq. 4).  With it set, the batch Eq. 5
        path (:meth:`expected_bandwidth`) becomes route-aware, which is
        how the simulator uses this class.
    """

    def __init__(
        self,
        config: CacheConfig | None = None,
        rebuild_interval: float = 60.0,
        route_oracle=None,
    ) -> None:
        super().__init__(config, rebuild_interval)
        self.route_oracle = route_oracle

    def expected_bandwidth(
        self,
        now: float,
        connections,
        target_cell: int,
        t_est: float,
        groups: dict | None = None,
    ) -> float:
        """Eq. 5 with routes: mass concentrates on each known next cell.

        The route oracle is consulted per connection, so the grouped
        fast path does not apply here; ``groups`` is accepted (and
        ignored) for interface compatibility with the base class.
        """
        if self.route_oracle is None:
            return super().expected_bandwidth(
                now, connections, target_cell, t_est, groups=groups
            )
        if t_est <= 0:
            return 0.0
        total = 0.0
        for connection in connections:
            known_next = self.route_oracle(connection)
            if known_next is None:
                # Unknown route: history-only estimate for this one.
                extant = now - connection.cell_entry_time
                probability = self.handoff_probability(
                    now, connection.prev_cell, extant, target_cell, t_est
                )
            elif known_next != target_cell:
                continue
            else:
                extant = now - connection.cell_entry_time
                snapshot = self.function_for(now, connection.prev_cell)
                denominator = snapshot.total_mass_above(extant)
                if denominator <= 0.0:
                    continue
                numerator = snapshot.total_mass_between(
                    extant, extant + t_est
                )
                probability = min(numerator / denominator, 1.0)
            if probability > 0.0:
                basis = getattr(
                    connection, "reservation_basis", connection.bandwidth
                )
                total += basis * probability
        return total

    def expected_bandwidth_multi(
        self,
        now: float,
        connections,
        requests: Sequence[tuple[int, float]],
        groups: dict | None = None,
    ) -> list[float]:
        """Route-aware Eq. 5 per request (the oracle is per connection,
        so the shared-denominator fast path does not apply here)."""
        if self.route_oracle is None:
            return super().expected_bandwidth_multi(
                now, connections, requests, groups=groups
            )
        connections = list(connections)
        return [
            self.expected_bandwidth(now, connections, target_cell, t_est)
            for target_cell, t_est in requests
        ]

    def grouped_flush_parts(
        self,
        np,
        now: float,
        requests: Sequence[tuple[int, float]],
        plan,
        batch,
    ):
        """Route-aware Eq. 5 consults the oracle per connection, so the
        cross-cell flush does not apply; ``None`` sends the caller to
        :meth:`expected_bandwidth_multi` (which routes correctly)."""
        if self.route_oracle is not None:
            return None
        return super().grouped_flush_parts(np, now, requests, plan, batch)

    def handoff_probability_known_next(
        self,
        now: float,
        prev: int | None,
        extant_sojourn: float,
        known_next: int,
        t_est: float,
        actual_next: int,
    ) -> float:
        """``p_h`` toward ``actual_next`` given the route says ``known_next``."""
        if actual_next != known_next or t_est <= 0:
            return 0.0
        snapshot = self.function_for(now, prev)
        denominator = snapshot.total_mass_above(extant_sojourn)
        if denominator <= 0.0:
            return 0.0
        numerator = snapshot.total_mass_between(
            extant_sojourn, extant_sojourn + t_est
        )
        return min(max(numerator / denominator, 0.0), 1.0)
