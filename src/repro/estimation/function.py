"""The hand-off estimation function ``F_HOE`` (paper §3.1, Figures 4–5).

A :class:`HandoffEstimationFunction` is an immutable snapshot, for one
``prev`` cell, of the weighted quadruplets active at a build instant.
It answers the mass queries needed by Bayes' rule (Eq. 4) in
``O(log N_quad)`` per query using sorted sojourn arrays with prefix
weight sums.

The storage is *columnar*: one sorted sojourn array plus one prefix
weight-sum array per next cell (and one pair for the union over next
cells, which makes the Eq. 4 denominator a single binary search).
Snapshots are built either from the legacy ``WeightedQuadruplet``
listing or, far cheaper, straight from the cache's incrementally
sorted columns (:meth:`from_columns`).  Batch queries — *many* extant
sojourns against one snapshot — run through ``numpy.searchsorted``
over those arrays when the numpy kernel is active
(:mod:`repro._kernel`) and through resumable ``bisect`` walks
otherwise; both produce bit-identical masses to the scalar queries.
"""

from __future__ import annotations

from bisect import bisect_right
from itertools import accumulate, repeat
from typing import Mapping, Sequence

from repro._kernel import numpy_or_none
from repro.estimation.cache import ColumnarActive, WeightedQuadruplet


class _Mass:
    """Sorted sojourn times and cumulative weights for one next cell."""

    __slots__ = ("sojourns", "cumulative", "unit", "_ndarrays")

    def __init__(
        self,
        sojourns: list[float],
        cumulative: list[float],
        unit: bool = False,
    ) -> None:
        self.sojourns = sojourns
        self.cumulative = cumulative
        #: True when every entry weighs exactly 1.0: the cumulative
        #: weights are then the exact integers 1.0, 2.0, …, so Eq. 4
        #: masses equal binary-search *counts* and the grouped flush
        #: kernel can skip the prefix-sum gathers bit-identically.
        #: (Only :meth:`from_column` can assert this — accumulating a
        #: repeated non-unit weight is not exact in float.)
        self.unit = unit
        #: Lazily built ``(sojourns, zero-prefixed cumulative)`` numpy
        #: pair, cached per snapshot for the batch kernels.
        self._ndarrays = None

    @classmethod
    def from_weighted(
        cls, weighted: Sequence[WeightedQuadruplet]
    ) -> "_Mass":
        ordered = sorted(
            (item.quadruplet.sojourn, item.weight) for item in weighted
        )
        return cls(
            [sojourn for sojourn, _weight in ordered],
            list(accumulate(weight for _sojourn, weight in ordered)),
        )

    @classmethod
    def from_column(
        cls, sorted_sojourns: Sequence[float], uniform_weight: float
    ) -> "_Mass":
        """Build from an already-sorted column of equal-weight entries.

        The cumulative array is produced by the same left-to-right
        running addition as :meth:`from_weighted`, so masses are
        bit-identical to the legacy path for any ``w_0``.
        """
        sojourns = list(sorted_sojourns)
        return cls(
            sojourns,
            list(accumulate(repeat(uniform_weight, len(sojourns)))),
            unit=uniform_weight == 1.0,
        )

    @property
    def total(self) -> float:
        return self.cumulative[-1] if self.cumulative else 0.0

    def mass_at_most(self, sojourn: float) -> float:
        """Total weight of entries with ``T_soj <= sojourn``."""
        index = bisect_right(self.sojourns, sojourn)
        return self.cumulative[index - 1] if index else 0.0

    def mass_above(self, sojourn: float) -> float:
        """Total weight of entries with ``T_soj > sojourn``."""
        return self.total - self.mass_at_most(sojourn)

    def mass_between(self, low: float, high: float) -> float:
        """Total weight of entries with ``low < T_soj <= high``."""
        if high <= low:
            return 0.0
        return self.mass_at_most(high) - self.mass_at_most(low)

    def count_above(self, sojourn: float) -> int:
        """Number of entries (unweighted) with ``T_soj > sojourn``."""
        return len(self.sojourns) - bisect_right(self.sojourns, sojourn)

    def max_sojourn(self) -> float:
        return self.sojourns[-1] if self.sojourns else 0.0

    def arrays(self, np):
        """``(sojourns, cum0)`` ndarrays; ``cum0[i]`` = mass of the
        first ``i`` entries (zero-prefixed so gather needs no branch)."""
        cached = self._ndarrays
        if cached is None:
            sojourns = np.asarray(self.sojourns, dtype=np.float64)
            cum0 = np.empty(len(self.cumulative) + 1, dtype=np.float64)
            cum0[0] = 0.0
            cum0[1:] = self.cumulative
            cached = self._ndarrays = (sojourns, cum0)
        return cached


class HandoffEstimationFunction:
    """``F_HOE(t0, prev, ., .)`` for a fixed ``prev`` at a fixed instant.

    Parameters
    ----------
    weighted_by_next:
        Mapping ``next cell id -> active weighted quadruplets``, as
        produced by :meth:`repro.estimation.cache.QuadrupletCache.active`.
        Snapshots over the cache's columnar fast path are built with
        :meth:`from_columns` instead.
    """

    __slots__ = ("_per_next", "_union")

    def __init__(
        self,
        weighted_by_next: Mapping[int, Sequence[WeightedQuadruplet]],
    ) -> None:
        self._per_next = {
            next_cell: _Mass.from_weighted(items)
            for next_cell, items in weighted_by_next.items()
            if items
        }
        # Union over all next cells: makes the Eq. 4 denominator a
        # single binary search instead of a sum over neighbours.
        all_items = [
            item for items in weighted_by_next.values() for item in items
        ]
        self._union = _Mass.from_weighted(all_items)

    @classmethod
    def from_columns(cls, columns: ColumnarActive) -> "HandoffEstimationFunction":
        """Build straight from the cache's sorted columns (no sorting).

        ``columns`` ownership transfers to the snapshot — the cache
        hands over fresh copies, so live stores may keep evolving.
        """
        function = cls.__new__(cls)
        weight = columns.uniform_weight
        function._per_next = {
            next_cell: _Mass.from_column(sojourns, weight)
            for next_cell, sojourns in columns.per_next.items()
            if sojourns
        }
        function._union = _Mass.from_column(columns.union, weight)
        return function

    # ------------------------------------------------------------------
    # mass queries (building blocks of Eq. 4)
    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        return not self._per_next

    def next_cells(self) -> tuple[int, ...]:
        """Next cells with any observed mass."""
        return tuple(self._per_next)

    def mass_between(self, next_cell: int, low: float, high: float) -> float:
        """Numerator mass: weight of ``low < T_soj <= high`` toward a cell."""
        per_next = self._per_next.get(next_cell)
        return per_next.mass_between(low, high) if per_next else 0.0

    def mass_above(self, next_cell: int, sojourn: float) -> float:
        """Weight of ``T_soj > sojourn`` toward one next cell."""
        per_next = self._per_next.get(next_cell)
        return per_next.mass_above(sojourn) if per_next else 0.0

    def total_mass_above(self, sojourn: float) -> float:
        """Denominator mass of Eq. 4: all next cells, ``T_soj > sojourn``."""
        return self._union.mass_above(sojourn)

    def total_mass_between(self, low: float, high: float) -> float:
        """All next cells, ``low < T_soj <= high`` (known-path variant)."""
        return self._union.mass_between(low, high)

    def max_sojourn(self) -> float:
        """Largest sojourn time with non-zero mass (0 when empty)."""
        return self._union.max_sojourn()

    def sample_count_above(self, sojourn: float) -> int:
        """Unweighted number of active quadruplets beyond ``sojourn``."""
        return self._union.count_above(sojourn)

    @property
    def is_unit_weight(self) -> bool:
        """Whether every quadruplet weighs exactly 1.0 (the stationary
        ``T_int = inf`` default), making Eq. 4 masses pure counts."""
        return self._union.unit

    def union_sojourn_array(self, np):
        """The union's sorted sojourn ndarray (Eq. 4 denominator column)."""
        return self._union.arrays(np)[0]

    def target_sojourn_array(self, np, target_cell: int):
        """One next cell's sorted sojourn ndarray, or ``None`` when that
        cell has no observed mass."""
        per_next = self._per_next.get(target_cell)
        return None if per_next is None else per_next.arrays(np)[0]

    # ------------------------------------------------------------------
    # batch kernels (many extant sojourns against one snapshot)
    # ------------------------------------------------------------------
    def batch_probabilities(
        self,
        next_cell: int,
        extant_sojourns: Sequence[float],
        t_est: float,
    ) -> list[float]:
        """Eq. 4 for a whole batch of extant sojourn times at once.

        Returns one ``p_h(-> next_cell)`` per query, in order; zeros
        for estimated-stationary queries.  The numpy kernel evaluates
        the batch with three ``searchsorted`` gathers; the python
        kernel falls back to per-query binary searches.  Either way
        each probability equals the scalar Eq. 4 arithmetic exactly.
        """
        if t_est <= 0 or not extant_sojourns:
            return [0.0] * len(extant_sojourns)
        per_next = self._per_next.get(next_cell)
        if per_next is None:
            return [0.0] * len(extant_sojourns)
        np = numpy_or_none()
        if np is not None:
            union_s, union_c0 = self._union.arrays(np)
            target_s, target_c0 = per_next.arrays(np)
            extants = np.asarray(extant_sojourns, dtype=np.float64)
            denominator = self._union.total - union_c0[
                np.searchsorted(union_s, extants, side="right")
            ]
            low = target_c0[np.searchsorted(target_s, extants, side="right")]
            high = target_c0[
                np.searchsorted(target_s, extants + t_est, side="right")
            ]
            numerator = high - low
            valid = denominator > 0.0
            out = np.zeros(len(extants), dtype=np.float64)
            ratio = numerator[valid] / denominator[valid]
            np.clip(ratio, 0.0, 1.0, out=ratio)
            out[valid] = ratio
            return out.tolist()
        union = self._union
        result = []
        for extant in extant_sojourns:
            denominator = union.mass_above(extant)
            if denominator <= 0.0:
                result.append(0.0)
                continue
            numerator = per_next.mass_between(extant, extant + t_est)
            probability = numerator / denominator
            result.append(min(max(probability, 0.0), 1.0))
        return result

    def batch_contributions(
        self,
        target_cell: int,
        rows: Sequence[tuple[int, float, float]],
        t_est: float,
    ) -> dict[int, float]:
        """Eq. 5 contributions for many connections sharing one ``prev``.

        ``rows`` is ``(key, extant_sojourn, basis)`` tuples sorted by
        *non-decreasing* extant sojourn; the result maps ``key`` to
        ``basis * p_h`` for every row with a positive contribution.
        Because the query sojourns are sorted, every binary search
        resumes from the previous hit instead of restarting, and the
        walk stops at the first estimated-stationary row (the Eq. 4
        denominator is non-increasing in the extant sojourn).  Each
        contribution is computed with exactly the per-connection
        arithmetic of Eq. 4, so results are bit-identical to querying
        one connection at a time.
        """
        per_next = self._per_next.get(target_cell)
        if per_next is None or t_est <= 0:
            return {}
        union_sojourns = self._union.sojourns
        union_cumulative = self._union.cumulative
        total = self._union.total
        target_sojourns = per_next.sojourns
        target_cumulative = per_next.cumulative
        contributions: dict[int, float] = {}
        union_lo = 0
        low_lo = 0
        high_lo = 0
        for key, extant, basis in rows:
            union_lo = bisect_right(union_sojourns, extant, union_lo)
            below = union_cumulative[union_lo - 1] if union_lo else 0.0
            denominator = total - below
            if denominator <= 0.0:
                break  # estimated stationary — and so is every later row
            low_lo = bisect_right(target_sojourns, extant, low_lo)
            low_mass = target_cumulative[low_lo - 1] if low_lo else 0.0
            high_lo = bisect_right(target_sojourns, extant + t_est, high_lo)
            high_mass = target_cumulative[high_lo - 1] if high_lo else 0.0
            numerator = high_mass - low_mass
            if numerator > 0.0:
                contributions[key] = basis * min(
                    numerator / denominator, 1.0
                )
        return contributions

    def batch_contributions_arrays(
        self,
        np,
        target_cell: int,
        keys: Sequence[int],
        extants,
        bases,
        t_est: float,
        out: dict[int, float],
    ) -> None:
        """Numpy-kernel Eq. 5: vectorized ``basis * p_h`` per connection.

        ``extants`` and ``bases`` are parallel float arrays; positive
        contributions are written into ``out`` keyed by ``keys``.  The
        per-row arithmetic mirrors :meth:`batch_contributions` op for
        op (gather, subtract, divide, ``min``), so the contributions
        are bit-identical to the scalar walk.
        """
        per_next = self._per_next.get(target_cell)
        if per_next is None or t_est <= 0:
            return
        union_s, union_c0 = self._union.arrays(np)
        target_s, target_c0 = per_next.arrays(np)
        denominator = self._union.total - union_c0[
            np.searchsorted(union_s, extants, side="right")
        ]
        low = target_c0[np.searchsorted(target_s, extants, side="right")]
        high = target_c0[
            np.searchsorted(target_s, extants + t_est, side="right")
        ]
        numerator = high - low
        valid = (denominator > 0.0) & (numerator > 0.0)
        if not valid.any():
            return
        ratio = numerator[valid] / denominator[valid]
        np.minimum(ratio, 1.0, out=ratio)
        contributions = bases[valid] * ratio
        for key, value in zip(
            (keys[index] for index in np.flatnonzero(valid)),
            contributions.tolist(),
        ):
            out[key] = value

    def batch_contributions_multi_arrays(
        self,
        np,
        requests: Sequence[tuple[int, float]],
        keys: Sequence[int],
        extants,
        bases,
        outs: Sequence[dict[int, float]],
    ) -> None:
        """Numpy-kernel Eq. 5 toward *several* targets in one pass.

        ``requests`` is ``(target_cell, t_est)`` pairs; ``outs`` the
        parallel per-request output dicts.  The Eq. 4 denominator
        depends only on the extant sojourns, so the coalesced
        reservation tick computes its ``searchsorted`` gather once here
        and shares it across every requested target, instead of
        re-gathering per target as :meth:`batch_contributions_arrays`
        does.  Per-request arithmetic is that method's op for op
        (gather, subtract, divide, ``min``), so each contribution stays
        bit-identical to the per-target path.
        """
        union_s, union_c0 = self._union.arrays(np)
        denominator = self._union.total - union_c0[
            np.searchsorted(union_s, extants, side="right")
        ]
        den_positive = denominator > 0.0
        if not den_positive.any():
            return
        for (target_cell, t_est), out in zip(requests, outs):
            per_next = self._per_next.get(target_cell)
            if per_next is None or t_est <= 0:
                continue
            target_s, target_c0 = per_next.arrays(np)
            low = target_c0[
                np.searchsorted(target_s, extants, side="right")
            ]
            high = target_c0[
                np.searchsorted(target_s, extants + t_est, side="right")
            ]
            numerator = high - low
            valid = den_positive & (numerator > 0.0)
            if not valid.any():
                continue
            ratio = numerator[valid] / denominator[valid]
            np.minimum(ratio, 1.0, out=ratio)
            contributions = bases[valid] * ratio
            for key, value in zip(
                (keys[index] for index in np.flatnonzero(valid)),
                contributions.tolist(),
            ):
                out[key] = value

    def footprint(self) -> dict[int, list[tuple[float, float]]]:
        """``next -> [(sojourn, cumulative weight), ...]`` (Figure 4 aid)."""
        return {
            next_cell: list(zip(mass.sojourns, mass.cumulative))
            for next_cell, mass in self._per_next.items()
        }
