"""The hand-off estimation function ``F_HOE`` (paper §3.1, Figures 4–5).

A :class:`HandoffEstimationFunction` is an immutable snapshot, for one
``prev`` cell, of the weighted quadruplets active at a build instant.
It answers the mass queries needed by Bayes' rule (Eq. 4) in
``O(log N_quad)`` per query using sorted sojourn arrays with prefix
weight sums.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Mapping, Sequence

from repro.estimation.cache import WeightedQuadruplet


class _NextCellMass:
    """Sorted sojourn times and cumulative weights for one next cell."""

    __slots__ = ("sojourns", "cumulative")

    def __init__(self, weighted: Sequence[WeightedQuadruplet]) -> None:
        ordered = sorted(
            (item.quadruplet.sojourn, item.weight) for item in weighted
        )
        self.sojourns = [sojourn for sojourn, _weight in ordered]
        self.cumulative: list[float] = []
        running = 0.0
        for _sojourn, weight in ordered:
            running += weight
            self.cumulative.append(running)

    @property
    def total(self) -> float:
        return self.cumulative[-1] if self.cumulative else 0.0

    def mass_at_most(self, sojourn: float) -> float:
        """Total weight of entries with ``T_soj <= sojourn``."""
        index = bisect_right(self.sojourns, sojourn)
        return self.cumulative[index - 1] if index else 0.0

    def mass_above(self, sojourn: float) -> float:
        """Total weight of entries with ``T_soj > sojourn``."""
        return self.total - self.mass_at_most(sojourn)

    def mass_between(self, low: float, high: float) -> float:
        """Total weight of entries with ``low < T_soj <= high``."""
        if high <= low:
            return 0.0
        return self.mass_at_most(high) - self.mass_at_most(low)

    def count_above(self, sojourn: float) -> int:
        """Number of entries (unweighted) with ``T_soj > sojourn``."""
        return len(self.sojourns) - bisect_right(self.sojourns, sojourn)

    def max_sojourn(self) -> float:
        return self.sojourns[-1] if self.sojourns else 0.0


class HandoffEstimationFunction:
    """``F_HOE(t0, prev, ., .)`` for a fixed ``prev`` at a fixed instant.

    Parameters
    ----------
    weighted_by_next:
        Mapping ``next cell id -> active weighted quadruplets``, as
        produced by :meth:`repro.estimation.cache.QuadrupletCache.active`.
    """

    def __init__(
        self,
        weighted_by_next: Mapping[int, Sequence[WeightedQuadruplet]],
    ) -> None:
        self._per_next = {
            next_cell: _NextCellMass(items)
            for next_cell, items in weighted_by_next.items()
            if items
        }
        # Union over all next cells: makes the Eq. 4 denominator a
        # single binary search instead of a sum over neighbours.
        all_items = [
            item for items in weighted_by_next.values() for item in items
        ]
        self._union = _NextCellMass(all_items)

    # ------------------------------------------------------------------
    # mass queries (building blocks of Eq. 4)
    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        return not self._per_next

    def next_cells(self) -> tuple[int, ...]:
        """Next cells with any observed mass."""
        return tuple(self._per_next)

    def mass_between(self, next_cell: int, low: float, high: float) -> float:
        """Numerator mass: weight of ``low < T_soj <= high`` toward a cell."""
        per_next = self._per_next.get(next_cell)
        return per_next.mass_between(low, high) if per_next else 0.0

    def mass_above(self, next_cell: int, sojourn: float) -> float:
        """Weight of ``T_soj > sojourn`` toward one next cell."""
        per_next = self._per_next.get(next_cell)
        return per_next.mass_above(sojourn) if per_next else 0.0

    def total_mass_above(self, sojourn: float) -> float:
        """Denominator mass of Eq. 4: all next cells, ``T_soj > sojourn``."""
        return self._union.mass_above(sojourn)

    def total_mass_between(self, low: float, high: float) -> float:
        """All next cells, ``low < T_soj <= high`` (known-path variant)."""
        return self._union.mass_between(low, high)

    def max_sojourn(self) -> float:
        """Largest sojourn time with non-zero mass (0 when empty)."""
        return self._union.max_sojourn()

    def sample_count_above(self, sojourn: float) -> int:
        """Unweighted number of active quadruplets beyond ``sojourn``."""
        return self._union.count_above(sojourn)

    def batch_contributions(
        self,
        target_cell: int,
        rows: Sequence[tuple[int, float, float]],
        t_est: float,
    ) -> dict[int, float]:
        """Eq. 5 contributions for many connections sharing one ``prev``.

        ``rows`` is ``(key, extant_sojourn, basis)`` tuples sorted by
        *non-decreasing* extant sojourn; the result maps ``key`` to
        ``basis * p_h`` for every row with a positive contribution.
        Because the query sojourns are sorted, every binary search
        resumes from the previous hit instead of restarting, and the
        walk stops at the first estimated-stationary row (the Eq. 4
        denominator is non-increasing in the extant sojourn).  Each
        contribution is computed with exactly the per-connection
        arithmetic of Eq. 4, so results are bit-identical to querying
        one connection at a time.
        """
        per_next = self._per_next.get(target_cell)
        if per_next is None or t_est <= 0:
            return {}
        union_sojourns = self._union.sojourns
        union_cumulative = self._union.cumulative
        total = self._union.total
        target_sojourns = per_next.sojourns
        target_cumulative = per_next.cumulative
        contributions: dict[int, float] = {}
        union_lo = 0
        low_lo = 0
        high_lo = 0
        for key, extant, basis in rows:
            union_lo = bisect_right(union_sojourns, extant, union_lo)
            below = union_cumulative[union_lo - 1] if union_lo else 0.0
            denominator = total - below
            if denominator <= 0.0:
                break  # estimated stationary — and so is every later row
            low_lo = bisect_right(target_sojourns, extant, low_lo)
            low_mass = target_cumulative[low_lo - 1] if low_lo else 0.0
            high_lo = bisect_right(target_sojourns, extant + t_est, high_lo)
            high_mass = target_cumulative[high_lo - 1] if high_lo else 0.0
            numerator = high_mass - low_mass
            if numerator > 0.0:
                contributions[key] = basis * min(
                    numerator / denominator, 1.0
                )
        return contributions

    def footprint(self) -> dict[int, list[tuple[float, float]]]:
        """``next -> [(sojourn, cumulative weight), ...]`` (Figure 4 aid)."""
        return {
            next_cell: list(zip(mass.sojourns, mass.cumulative))
            for next_cell, mass in self._per_next.items()
        }
