"""The hand-off estimation function ``F_HOE`` (paper §3.1, Figures 4–5).

A :class:`HandoffEstimationFunction` is an immutable snapshot, for one
``prev`` cell, of the weighted quadruplets active at a build instant.
It answers the mass queries needed by Bayes' rule (Eq. 4) in
``O(log N_quad)`` per query using sorted sojourn arrays with prefix
weight sums.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Mapping, Sequence

from repro.estimation.cache import WeightedQuadruplet


class _NextCellMass:
    """Sorted sojourn times and cumulative weights for one next cell."""

    __slots__ = ("sojourns", "cumulative")

    def __init__(self, weighted: Sequence[WeightedQuadruplet]) -> None:
        ordered = sorted(
            (item.quadruplet.sojourn, item.weight) for item in weighted
        )
        self.sojourns = [sojourn for sojourn, _weight in ordered]
        self.cumulative: list[float] = []
        running = 0.0
        for _sojourn, weight in ordered:
            running += weight
            self.cumulative.append(running)

    @property
    def total(self) -> float:
        return self.cumulative[-1] if self.cumulative else 0.0

    def mass_at_most(self, sojourn: float) -> float:
        """Total weight of entries with ``T_soj <= sojourn``."""
        index = bisect_right(self.sojourns, sojourn)
        return self.cumulative[index - 1] if index else 0.0

    def mass_above(self, sojourn: float) -> float:
        """Total weight of entries with ``T_soj > sojourn``."""
        return self.total - self.mass_at_most(sojourn)

    def mass_between(self, low: float, high: float) -> float:
        """Total weight of entries with ``low < T_soj <= high``."""
        if high <= low:
            return 0.0
        return self.mass_at_most(high) - self.mass_at_most(low)

    def count_above(self, sojourn: float) -> int:
        """Number of entries (unweighted) with ``T_soj > sojourn``."""
        return len(self.sojourns) - bisect_right(self.sojourns, sojourn)

    def max_sojourn(self) -> float:
        return self.sojourns[-1] if self.sojourns else 0.0


class HandoffEstimationFunction:
    """``F_HOE(t0, prev, ., .)`` for a fixed ``prev`` at a fixed instant.

    Parameters
    ----------
    weighted_by_next:
        Mapping ``next cell id -> active weighted quadruplets``, as
        produced by :meth:`repro.estimation.cache.QuadrupletCache.active`.
    """

    def __init__(
        self,
        weighted_by_next: Mapping[int, Sequence[WeightedQuadruplet]],
    ) -> None:
        self._per_next = {
            next_cell: _NextCellMass(items)
            for next_cell, items in weighted_by_next.items()
            if items
        }
        # Union over all next cells: makes the Eq. 4 denominator a
        # single binary search instead of a sum over neighbours.
        all_items = [
            item for items in weighted_by_next.values() for item in items
        ]
        self._union = _NextCellMass(all_items)

    # ------------------------------------------------------------------
    # mass queries (building blocks of Eq. 4)
    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        return not self._per_next

    def next_cells(self) -> tuple[int, ...]:
        """Next cells with any observed mass."""
        return tuple(self._per_next)

    def mass_between(self, next_cell: int, low: float, high: float) -> float:
        """Numerator mass: weight of ``low < T_soj <= high`` toward a cell."""
        per_next = self._per_next.get(next_cell)
        return per_next.mass_between(low, high) if per_next else 0.0

    def mass_above(self, next_cell: int, sojourn: float) -> float:
        """Weight of ``T_soj > sojourn`` toward one next cell."""
        per_next = self._per_next.get(next_cell)
        return per_next.mass_above(sojourn) if per_next else 0.0

    def total_mass_above(self, sojourn: float) -> float:
        """Denominator mass of Eq. 4: all next cells, ``T_soj > sojourn``."""
        return self._union.mass_above(sojourn)

    def total_mass_between(self, low: float, high: float) -> float:
        """All next cells, ``low < T_soj <= high`` (known-path variant)."""
        return self._union.mass_between(low, high)

    def max_sojourn(self) -> float:
        """Largest sojourn time with non-zero mass (0 when empty)."""
        return self._union.max_sojourn()

    def sample_count_above(self, sojourn: float) -> int:
        """Unweighted number of active quadruplets beyond ``sojourn``."""
        return self._union.count_above(sojourn)

    def footprint(self) -> dict[int, list[tuple[float, float]]]:
        """``next -> [(sojourn, cumulative weight), ...]`` (Figure 4 aid)."""
        return {
            next_cell: list(zip(mass.sojourns, mass.cumulative))
            for next_cell, mass in self._per_next.items()
        }
