"""Quadruplet cache with periodic day-windows and the priority rule.

The cache stores :class:`HandoffQuadruplet` observations per
``(prev, next)`` pair and answers: *which quadruplets, with which
weights, participate in the hand-off estimation function at time t0?*
(paper Eqs. 2–3 and Figure 3).

A quadruplet observed at ``T_event`` participates if, for some integer
``n >= 0``::

    t0 - T_int - n * T_day  <=  T_event  <  t0 + T_int - n * T_day

and gets weight ``w_n`` (non-increasing, zero beyond ``N_win-days``).
At most ``N_quad`` quadruplets per ``(prev, next)`` pair are used; ties
are broken by the paper's priority rule — smaller ``n`` first, then
smaller recency-adjusted distance ``|T_event + n*T_day - t0|``.

``T_int = None`` models the paper's stationary runs (``T_int = inf``):
every cached quadruplet is in-window with weight ``w_0`` and the
``N_quad`` most recent per pair are used.

Selection is *incremental*: entries are kept time-ordered in an
offset-compacted array with a mirrored event-time array, so each
rebuild finds every periodic window with two binary searches instead of
scanning (and sorting) the whole pair store, and only computes recency
distances when a window actually overflows ``N_quad``.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left
from dataclasses import dataclass, field
from itertools import islice
from typing import Iterator

from repro.estimation.quadruplet import HandoffQuadruplet

#: Seconds in a day (``T_day`` in the paper).
DAY_SECONDS = 86_400.0

#: Dead-prefix length beyond which a pair store is compacted.
_COMPACT_THRESHOLD = 512


@dataclass
class CacheConfig:
    """Tunables of the quadruplet cache (paper §3.1 design parameters)."""

    #: Estimation interval ``T_int`` (seconds); ``None`` = infinite.
    interval: float | None = None
    #: ``N_quad`` — max quadruplets per ``(prev, next)`` used by F_HOE.
    max_per_pair: int = 100
    #: Day-age weights ``w_0, w_1, ...``; entries beyond the list are 0.
    #: Must be non-increasing with ``w_0 = 1`` dominance (Eq. 3 requires
    #: ``1 >= w_n >= w_{n+1} >= 0``).
    weights: tuple[float, ...] = (1.0, 1.0)
    #: Cycle length (``T_day`` by default; use 7 days for weekend sets).
    period: float = DAY_SECONDS

    def __post_init__(self) -> None:
        if self.interval is not None and self.interval <= 0:
            raise ValueError("interval must be positive or None")
        if self.max_per_pair < 1:
            raise ValueError("max_per_pair must be >= 1")
        if not self.weights or self.weights[0] > 1.0:
            raise ValueError("weights must start at w_0 <= 1")
        if self.weights[-1] < 0.0:
            raise ValueError("weights cannot be negative")
        for earlier, later in zip(self.weights, self.weights[1:]):
            if later > earlier:
                raise ValueError("weights must be non-increasing")
        if self.period <= 0:
            raise ValueError("period must be positive")

    @property
    def window_days(self) -> int:
        """``N_win-days``: number of past periods still contributing."""
        return len(self.weights) - 1


@dataclass(frozen=True, slots=True)
class WeightedQuadruplet:
    """A cache hit: the quadruplet plus its day-age weight ``w_n``."""

    quadruplet: HandoffQuadruplet
    weight: float


@dataclass
class _PairStore:
    """Per-(prev, next) storage; newest entries at the right end.

    Live entries are ``quads[start:]``; eviction advances ``start`` and
    the dead prefix is deleted once it grows past a threshold (amortised
    O(1) per eviction).  ``times`` mirrors ``quads`` with the event
    times so selection windows are located by binary search with O(1)
    random access — a deque would make every ``bisect`` probe O(n).
    """

    quads: list[HandoffQuadruplet] = field(default_factory=list)
    times: list[float] = field(default_factory=list)
    start: int = 0

    def __len__(self) -> int:
        return len(self.quads) - self.start

    def append(self, quadruplet: HandoffQuadruplet) -> None:
        self.quads.append(quadruplet)
        self.times.append(quadruplet.event_time)

    def newest_time(self) -> float:
        return self.times[-1]

    def drop_left(self, count: int) -> None:
        """Evict the ``count`` oldest live entries."""
        self.start += count
        if (
            self.start > _COMPACT_THRESHOLD
            and self.start * 2 >= len(self.quads)
        ):
            del self.quads[: self.start]
            del self.times[: self.start]
            self.start = 0


class QuadrupletCache:
    """Stores hand-off quadruplets for one cell and selects the active set."""

    def __init__(self, config: CacheConfig | None = None) -> None:
        self.config = config or CacheConfig()
        self._pairs: dict[tuple[int | None, int], _PairStore] = {}
        self._prev_keys: set[int | None] = set()
        self.total_recorded = 0

    # ------------------------------------------------------------------
    # recording / eviction
    # ------------------------------------------------------------------
    def record(self, quadruplet: HandoffQuadruplet) -> None:
        """Cache a new observation (must arrive in time order per pair)."""
        key = (quadruplet.prev, quadruplet.next)
        store = self._pairs.get(key)
        if store is None:
            store = _PairStore()
            self._pairs[key] = store
            self._prev_keys.add(quadruplet.prev)
        if len(store) and quadruplet.event_time < store.newest_time():
            raise ValueError("quadruplets must be recorded in time order")
        store.append(quadruplet)
        self.total_recorded += 1
        self._evict(store, quadruplet.event_time)

    def _evict(self, store: _PairStore, now: float) -> None:
        """Drop entries that can never participate again (paper §3.1).

        A quadruplet older than ``N_win-days * period + T_int`` is
        out-of-date for every future estimation instant.  With an
        infinite interval only the ``N_quad`` most recent entries can
        ever be selected, so older ones are dropped too.
        """
        config = self.config
        if config.interval is None:
            excess = len(store) - config.max_per_pair
            if excess > 0:
                store.drop_left(excess)
            return
        horizon = config.window_days * config.period + config.interval
        # Entries are time-ordered: the out-of-date prefix ends at the
        # first event time still within the horizon.
        keep_from = bisect_left(
            store.times, now - horizon, store.start, len(store.times)
        )
        if keep_from > store.start:
            store.drop_left(keep_from - store.start)
        # Memory bound: one full window of N_quad per contributing day.
        limit = config.max_per_pair * (config.window_days + 1)
        excess = len(store) - limit
        if excess > 0:
            store.drop_left(excess)

    # ------------------------------------------------------------------
    # selection (Eqs. 2-3 + priority rule)
    # ------------------------------------------------------------------
    def active(
        self, now: float, prev: int | None
    ) -> dict[int, list[WeightedQuadruplet]]:
        """Active weighted quadruplets at time ``now`` for one ``prev``.

        Returns a mapping ``next -> [WeightedQuadruplet, ...]``.
        """
        result: dict[int, list[WeightedQuadruplet]] = {}
        for (stored_prev, next_cell), store in self._pairs.items():
            if stored_prev != prev:
                continue
            selected = self._select_pair(store, now)
            if selected:
                result[next_cell] = selected
        return result

    def pairs(self) -> Iterator[tuple[int | None, int]]:
        """Iterate over all ``(prev, next)`` pairs with any cached entries."""
        return iter(self._pairs)

    def prev_keys(self) -> set[int | None]:
        """Every ``prev`` that ever contributed a quadruplet.

        Maintained incrementally so hot callers (``max_sojourn`` on each
        hand-off arrival) need not rebuild the set from :meth:`pairs`.
        The returned set is live — treat it as read-only.
        """
        return self._prev_keys

    def size(self) -> int:
        """Total quadruplets currently cached (all pairs)."""
        return sum(len(store) for store in self._pairs.values())

    def _select_pair(
        self, store: _PairStore, now: float
    ) -> list[WeightedQuadruplet]:
        config = self.config
        quads = store.quads
        end = len(quads)
        if end == store.start:
            return []
        if config.interval is None:
            weight = config.weights[0]
            begin = max(store.start, end - config.max_per_pair)
            return [
                WeightedQuadruplet(quad, weight)
                for quad in islice(quads, begin, end)
            ]
        return self._select_pair_windowed(store, now)

    def _select_pair_windowed(
        self, store: _PairStore, now: float
    ) -> list[WeightedQuadruplet]:
        """Finite ``T_int``: pick per periodic window via binary search.

        Equivalent to scoring every entry with the priority rule and
        sorting by ``(n, distance)``, but each window ``n`` is located
        with two bisects and recency distances are only computed when a
        window overflows the remaining ``N_quad`` budget.
        """
        config = self.config
        interval = config.interval
        assert interval is not None
        times = store.times
        quads = store.quads
        start, end = store.start, len(quads)
        # Consecutive windows can overlap (entries then belong to the
        # *smallest* n — Eq. 2); only track claims when geometry allows it.
        overlapping = 2.0 * interval > config.period
        claimed: set[int] = set()
        budget = config.max_per_pair
        selected: list[WeightedQuadruplet] = []
        for day_age, weight in enumerate(config.weights):
            if budget <= 0:
                break
            if weight <= 0.0:
                continue
            center = now - day_age * config.period
            lo = bisect_left(times, center - interval, start, end)
            hi = bisect_left(times, center + interval, lo, end)
            if lo == hi:
                continue
            if overlapping and claimed:
                indices = [i for i in range(lo, hi) if i not in claimed]
            else:
                indices = range(lo, hi)
            if len(indices) <= budget:
                chosen = indices
            else:
                # Window overflow: the paper's priority rule keeps the
                # entries closest to the (periodically shifted) instant.
                chosen = heapq.nsmallest(
                    budget,
                    indices,
                    key=lambda i: (abs(times[i] - center), i),
                )
            for index in chosen:
                selected.append(WeightedQuadruplet(quads[index], weight))
            if overlapping:
                claimed.update(chosen)
            budget -= len(chosen)
        return selected
