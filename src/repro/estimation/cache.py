"""Quadruplet cache with periodic day-windows and the priority rule.

The cache stores :class:`HandoffQuadruplet` observations per
``(prev, next)`` pair and answers: *which quadruplets, with which
weights, participate in the hand-off estimation function at time t0?*
(paper Eqs. 2–3 and Figure 3).

A quadruplet observed at ``T_event`` participates if, for some integer
``n >= 0``::

    t0 - T_int - n * T_day  <=  T_event  <  t0 + T_int - n * T_day

and gets weight ``w_n`` (non-increasing, zero beyond ``N_win-days``).
At most ``N_quad`` quadruplets per ``(prev, next)`` pair are used; ties
are broken by the paper's priority rule — smaller ``n`` first, then
smaller recency-adjusted distance ``|T_event + n*T_day - t0|``.

``T_int = None`` models the paper's stationary runs (``T_int = inf``):
every cached quadruplet is in-window with weight ``w_0`` and the
``N_quad`` most recent per pair are used.

Selection is *incremental*: entries are kept time-ordered in an
offset-compacted array with a mirrored event-time array, so each
rebuild finds every periodic window with two binary searches instead of
scanning (and sorting) the whole pair store, and only computes recency
distances when a window actually overflows ``N_quad``.

**Columnar fast path (infinite interval).**  With ``T_int = None`` the
live store of a pair *is* its active set, so the cache additionally
maintains, per pair and per ``prev`` (the Eq. 4 denominator union), a
sojourn-sorted column of the live sojourn times.  F_HOE snapshots are
then built by copying those columns (no comparison sort, no per-entry
wrapper objects) — see :meth:`QuadrupletCache.active_columns` — and the
largest active sojourn is the last element of a column
(:meth:`QuadrupletCache.max_active_sojourn`).
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, insort
from dataclasses import dataclass, field
from itertools import islice
from typing import Iterator, Sequence

from repro.estimation.quadruplet import HandoffQuadruplet

#: Seconds in a day (``T_day`` in the paper).
DAY_SECONDS = 86_400.0

#: Dead-prefix length beyond which a pair store is compacted.
_COMPACT_THRESHOLD = 512


@dataclass
class CacheConfig:
    """Tunables of the quadruplet cache (paper §3.1 design parameters)."""

    #: Estimation interval ``T_int`` (seconds); ``None`` = infinite.
    interval: float | None = None
    #: ``N_quad`` — max quadruplets per ``(prev, next)`` used by F_HOE.
    max_per_pair: int = 100
    #: Day-age weights ``w_0, w_1, ...``; entries beyond the list are 0.
    #: Must be non-increasing with ``w_0 = 1`` dominance (Eq. 3 requires
    #: ``1 >= w_n >= w_{n+1} >= 0``).
    weights: tuple[float, ...] = (1.0, 1.0)
    #: Cycle length (``T_day`` by default; use 7 days for weekend sets).
    period: float = DAY_SECONDS

    def __post_init__(self) -> None:
        if self.interval is not None and self.interval <= 0:
            raise ValueError("interval must be positive or None")
        if self.max_per_pair < 1:
            raise ValueError("max_per_pair must be >= 1")
        if not self.weights or self.weights[0] > 1.0:
            raise ValueError("weights must start at w_0 <= 1")
        if self.weights[-1] < 0.0:
            raise ValueError("weights cannot be negative")
        for earlier, later in zip(self.weights, self.weights[1:]):
            if later > earlier:
                raise ValueError("weights must be non-increasing")
        if self.period <= 0:
            raise ValueError("period must be positive")

    @property
    def window_days(self) -> int:
        """``N_win-days``: number of past periods still contributing."""
        return len(self.weights) - 1


class WeightedQuadruplet:
    """A cache hit: the quadruplet plus its day-age weight ``w_n``.

    Created in bulk on every (fallback-path) F_HOE rebuild, so this is
    a bare ``__slots__`` pair rather than a dataclass.
    """

    __slots__ = ("quadruplet", "weight")

    def __init__(self, quadruplet: HandoffQuadruplet, weight: float) -> None:
        self.quadruplet = quadruplet
        self.weight = weight

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WeightedQuadruplet):
            return NotImplemented
        return (
            self.quadruplet == other.quadruplet
            and self.weight == other.weight
        )

    def __hash__(self) -> int:
        return hash((self.quadruplet, self.weight))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WeightedQuadruplet({self.quadruplet!r}, {self.weight!r})"


class ColumnarActive:
    """The active set of one ``prev`` as sojourn-sorted columns.

    ``per_next`` maps each next cell to a *sorted* sequence of active
    sojourn times; ``union`` is the sorted concatenation over all next
    cells (the Eq. 4 denominator support); every entry carries the same
    ``uniform_weight`` (infinite-interval selection assigns ``w_0`` to
    everything).  The sequences are snapshots owned by the caller.
    """

    __slots__ = ("per_next", "union", "uniform_weight")

    def __init__(
        self,
        per_next: dict[int, Sequence[float]],
        union: Sequence[float],
        uniform_weight: float,
    ) -> None:
        self.per_next = per_next
        self.union = union
        self.uniform_weight = uniform_weight


@dataclass(slots=True)
class _PairStore:
    """Per-(prev, next) storage; newest entries at the right end.

    Live entries are ``quads[start:]``; eviction advances ``start`` and
    the dead prefix is deleted once it grows past a threshold (amortised
    O(1) per eviction).  ``times`` mirrors ``quads`` with the event
    times so selection windows are located by binary search with O(1)
    random access — a deque would make every ``bisect`` probe O(n).

    ``sorted_sojourns`` is the columnar mirror maintained for infinite
    intervals only: the live sojourn times in ascending order, kept
    consistent by ``insort`` on record and ``bisect`` removal on evict.
    """

    quads: list[HandoffQuadruplet] = field(default_factory=list)
    times: list[float] = field(default_factory=list)
    start: int = 0
    sorted_sojourns: list[float] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.quads) - self.start

    def append(self, quadruplet: HandoffQuadruplet) -> None:
        self.quads.append(quadruplet)
        self.times.append(quadruplet.event_time)

    def newest_time(self) -> float:
        return self.times[-1]

    def drop_left(self, count: int) -> None:
        """Evict the ``count`` oldest live entries."""
        self.start += count
        if (
            self.start > _COMPACT_THRESHOLD
            and self.start * 2 >= len(self.quads)
        ):
            del self.quads[: self.start]
            del self.times[: self.start]
            self.start = 0


class QuadrupletCache:
    """Stores hand-off quadruplets for one cell and selects the active set."""

    def __init__(self, config: CacheConfig | None = None) -> None:
        self.config = config or CacheConfig()
        self._pairs: dict[tuple[int | None, int], _PairStore] = {}
        self._prev_keys: set[int | None] = set()
        #: ``prev -> sorted union of live sojourn times`` (infinite
        #: interval only): the Eq. 4 denominator column, maintained
        #: incrementally alongside the per-pair columns.
        self._union_sojourns: dict[int | None, list[float]] = {}
        self.total_recorded = 0

    # ------------------------------------------------------------------
    # recording / eviction
    # ------------------------------------------------------------------
    def record(self, quadruplet: HandoffQuadruplet) -> None:
        """Cache a new observation (must arrive in time order per pair)."""
        key = (quadruplet.prev, quadruplet.next)
        store = self._pairs.get(key)
        if store is None:
            store = _PairStore()
            self._pairs[key] = store
            self._prev_keys.add(quadruplet.prev)
        if len(store) and quadruplet.event_time < store.newest_time():
            raise ValueError("quadruplets must be recorded in time order")
        store.append(quadruplet)
        self.total_recorded += 1
        if self.config.interval is None:
            insort(store.sorted_sojourns, quadruplet.sojourn)
            union = self._union_sojourns.get(quadruplet.prev)
            if union is None:
                union = self._union_sojourns[quadruplet.prev] = []
            insort(union, quadruplet.sojourn)
            excess = len(store) - self.config.max_per_pair
            if excess > 0:
                self._drop_oldest_columnar(store, quadruplet.prev, excess)
        else:
            self._evict_windowed(store, quadruplet.event_time)

    def _drop_oldest_columnar(
        self, store: _PairStore, prev: int | None, count: int
    ) -> None:
        """Infinite interval: evict beyond ``N_quad``, keeping columns."""
        union = self._union_sojourns[prev]
        sorted_sojourns = store.sorted_sojourns
        for quad in store.quads[store.start : store.start + count]:
            sojourn = quad.sojourn
            del sorted_sojourns[bisect_left(sorted_sojourns, sojourn)]
            del union[bisect_left(union, sojourn)]
        store.drop_left(count)

    def export_columns(
        self, origin: float = 0.0
    ) -> dict[tuple[int | None, int], tuple[list[float], list[float]]]:
        """Live per-pair history as plain picklable record-order columns.

        Returns ``{(prev, next): (times, sojourns)}`` with event times
        shifted by ``-origin``.  A consumer that replays this history
        before its own clock starts (replication shards warm-started
        from a parent run) passes the export's end time as ``origin``,
        so the shifted times are all ``<= 0`` and the cache's
        record-in-time-order invariant holds for every later
        :meth:`record` at ``t >= 0``.
        """
        exported: dict[
            tuple[int | None, int], tuple[list[float], list[float]]
        ] = {}
        for key, store in self._pairs.items():
            quads = store.quads[store.start:]
            if not quads:
                continue
            exported[key] = (
                [quad.event_time - origin for quad in quads],
                [quad.sojourn for quad in quads],
            )
        return exported

    def preload(self, pairs) -> None:
        """Bulk-load exported history columns into an empty cache.

        ``pairs`` maps ``(prev, next)`` to parallel ``(times, sojourns)``
        sequences in record order (see :meth:`export_columns`).
        Equivalent to recording each quadruplet in turn, but builds the
        sorted columns with one sort per column instead of per-entry
        ``insort``.  Only valid before any :meth:`record`.
        """
        if self._pairs:
            raise ValueError("preload requires an empty cache")
        infinite = self.config.interval is None
        for (prev, next_cell), (times, sojourns) in pairs.items():
            if infinite and len(times) > self.config.max_per_pair:
                # Respect N_quad even if the exporter was configured
                # looser; newest entries win, as record() would keep.
                times = times[-self.config.max_per_pair:]
                sojourns = sojourns[-self.config.max_per_pair:]
            store = _PairStore()
            store.quads = [
                HandoffQuadruplet(time, prev, next_cell, sojourn)
                for time, sojourn in zip(times, sojourns)
            ]
            store.times = list(times)
            if infinite:
                store.sorted_sojourns = sorted(sojourns)
                union = self._union_sojourns.get(prev)
                if union is None:
                    union = self._union_sojourns[prev] = []
                union.extend(sojourns)
            self._pairs[(prev, next_cell)] = store
            self._prev_keys.add(prev)
            self.total_recorded += len(store.quads)
        for union in self._union_sojourns.values():
            union.sort()

    def _evict_windowed(self, store: _PairStore, now: float) -> None:
        """Drop entries that can never participate again (paper §3.1).

        A quadruplet older than ``N_win-days * period + T_int`` is
        out-of-date for every future estimation instant.
        """
        config = self.config
        horizon = config.window_days * config.period + config.interval
        # Entries are time-ordered: the out-of-date prefix ends at the
        # first event time still within the horizon.
        keep_from = bisect_left(
            store.times, now - horizon, store.start, len(store.times)
        )
        if keep_from > store.start:
            store.drop_left(keep_from - store.start)
        # Memory bound: one full window of N_quad per contributing day.
        limit = config.max_per_pair * (config.window_days + 1)
        excess = len(store) - limit
        if excess > 0:
            store.drop_left(excess)

    # ------------------------------------------------------------------
    # selection (Eqs. 2-3 + priority rule)
    # ------------------------------------------------------------------
    def active(
        self, now: float, prev: int | None
    ) -> dict[int, list[WeightedQuadruplet]]:
        """Active weighted quadruplets at time ``now`` for one ``prev``.

        Returns a mapping ``next -> [WeightedQuadruplet, ...]``.
        """
        result: dict[int, list[WeightedQuadruplet]] = {}
        for (stored_prev, next_cell), store in self._pairs.items():
            if stored_prev != prev:
                continue
            selected = self._select_pair(store, now)
            if selected:
                result[next_cell] = selected
        return result

    def active_columns(
        self, now: float, prev: int | None
    ) -> ColumnarActive | None:
        """Columnar active set for one ``prev``, or ``None``.

        Only the infinite-interval configuration has an incrementally
        maintained columnar form (the live store *is* the active set);
        finite ``T_int`` callers must fall back to :meth:`active`.  The
        returned columns are copies — snapshots stay immutable while
        the live store keeps evolving.
        """
        if self.config.interval is not None:
            return None
        per_next: dict[int, Sequence[float]] = {}
        for (stored_prev, next_cell), store in self._pairs.items():
            if stored_prev != prev or not len(store):
                continue
            per_next[next_cell] = store.sorted_sojourns[:]
        union = self._union_sojourns.get(prev)
        return ColumnarActive(
            per_next,
            union[:] if union else [],
            self.config.weights[0],
        )

    def max_active_sojourn(self) -> float | None:
        """Largest active sojourn over all ``prev``; ``None`` if unknown.

        O(number of pairs) for infinite intervals (last element of each
        union column).  Finite ``T_int`` selection is window-dependent,
        so the caller must derive the maximum from snapshots instead —
        signalled by ``None``.
        """
        if self.config.interval is not None:
            return None
        maximum = 0.0
        for union in self._union_sojourns.values():
            if union and union[-1] > maximum:
                maximum = union[-1]
        return maximum

    def pairs(self) -> Iterator[tuple[int | None, int]]:
        """Iterate over all ``(prev, next)`` pairs with any cached entries."""
        return iter(self._pairs)

    def prev_keys(self) -> set[int | None]:
        """Every ``prev`` that ever contributed a quadruplet.

        Maintained incrementally so hot callers (``max_sojourn`` on each
        hand-off arrival) need not rebuild the set from :meth:`pairs`.
        The returned set is live — treat it as read-only.
        """
        return self._prev_keys

    def size(self) -> int:
        """Total quadruplets currently cached (all pairs)."""
        return sum(len(store) for store in self._pairs.values())

    def _select_pair(
        self, store: _PairStore, now: float
    ) -> list[WeightedQuadruplet]:
        config = self.config
        quads = store.quads
        end = len(quads)
        if end == store.start:
            return []
        if config.interval is None:
            weight = config.weights[0]
            begin = max(store.start, end - config.max_per_pair)
            return [
                WeightedQuadruplet(quad, weight)
                for quad in islice(quads, begin, end)
            ]
        return self._select_pair_windowed(store, now)

    def _select_pair_windowed(
        self, store: _PairStore, now: float
    ) -> list[WeightedQuadruplet]:
        """Finite ``T_int``: pick per periodic window via binary search.

        Equivalent to scoring every entry with the priority rule and
        sorting by ``(n, distance)``, but each window ``n`` is located
        with two bisects and recency distances are only computed when a
        window overflows the remaining ``N_quad`` budget.
        """
        config = self.config
        interval = config.interval
        assert interval is not None
        times = store.times
        quads = store.quads
        start, end = store.start, len(quads)
        # Consecutive windows can overlap (entries then belong to the
        # *smallest* n — Eq. 2); only track claims when geometry allows it.
        overlapping = 2.0 * interval > config.period
        claimed: set[int] = set()
        budget = config.max_per_pair
        selected: list[WeightedQuadruplet] = []
        for day_age, weight in enumerate(config.weights):
            if budget <= 0:
                break
            if weight <= 0.0:
                continue
            center = now - day_age * config.period
            lo = bisect_left(times, center - interval, start, end)
            hi = bisect_left(times, center + interval, lo, end)
            if lo == hi:
                continue
            if overlapping and claimed:
                indices = [i for i in range(lo, hi) if i not in claimed]
            else:
                indices = range(lo, hi)
            if len(indices) <= budget:
                chosen = indices
            else:
                # Window overflow: the paper's priority rule keeps the
                # entries closest to the (periodically shifted) instant.
                chosen = heapq.nsmallest(
                    budget,
                    indices,
                    key=lambda i: (abs(times[i] - center), i),
                )
            for index in chosen:
                selected.append(WeightedQuadruplet(quads[index], weight))
            if overlapping:
                claimed.update(chosen)
            budget -= len(chosen)
        return selected
