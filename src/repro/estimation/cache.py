"""Quadruplet cache with periodic day-windows and the priority rule.

The cache stores :class:`HandoffQuadruplet` observations per
``(prev, next)`` pair and answers: *which quadruplets, with which
weights, participate in the hand-off estimation function at time t0?*
(paper Eqs. 2–3 and Figure 3).

A quadruplet observed at ``T_event`` participates if, for some integer
``n >= 0``::

    t0 - T_int - n * T_day  <=  T_event  <  t0 + T_int - n * T_day

and gets weight ``w_n`` (non-increasing, zero beyond ``N_win-days``).
At most ``N_quad`` quadruplets per ``(prev, next)`` pair are used; ties
are broken by the paper's priority rule — smaller ``n`` first, then
smaller recency-adjusted distance ``|T_event + n*T_day - t0|``.

``T_int = None`` models the paper's stationary runs (``T_int = inf``):
every cached quadruplet is in-window with weight ``w_0`` and the
``N_quad`` most recent per pair are used.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Iterable

from repro.estimation.quadruplet import HandoffQuadruplet

#: Seconds in a day (``T_day`` in the paper).
DAY_SECONDS = 86_400.0


@dataclass
class CacheConfig:
    """Tunables of the quadruplet cache (paper §3.1 design parameters)."""

    #: Estimation interval ``T_int`` (seconds); ``None`` = infinite.
    interval: float | None = None
    #: ``N_quad`` — max quadruplets per ``(prev, next)`` used by F_HOE.
    max_per_pair: int = 100
    #: Day-age weights ``w_0, w_1, ...``; entries beyond the list are 0.
    #: Must be non-increasing with ``w_0 = 1`` dominance (Eq. 3 requires
    #: ``1 >= w_n >= w_{n+1}``).
    weights: tuple[float, ...] = (1.0, 1.0)
    #: Cycle length (``T_day`` by default; use 7 days for weekend sets).
    period: float = DAY_SECONDS

    def __post_init__(self) -> None:
        if self.interval is not None and self.interval <= 0:
            raise ValueError("interval must be positive or None")
        if self.max_per_pair < 1:
            raise ValueError("max_per_pair must be >= 1")
        if not self.weights or self.weights[0] > 1.0:
            raise ValueError("weights must start at w_0 <= 1")
        for earlier, later in zip(self.weights, self.weights[1:]):
            if later > earlier:
                raise ValueError("weights must be non-increasing")
        if self.period <= 0:
            raise ValueError("period must be positive")

    @property
    def window_days(self) -> int:
        """``N_win-days``: number of past periods still contributing."""
        return len(self.weights) - 1


@dataclass(frozen=True, slots=True)
class WeightedQuadruplet:
    """A cache hit: the quadruplet plus its day-age weight ``w_n``."""

    quadruplet: HandoffQuadruplet
    weight: float


@dataclass
class _PairStore:
    """Per-(prev, next) storage; newest entries at the right end."""

    entries: Deque[HandoffQuadruplet] = field(default_factory=deque)


class QuadrupletCache:
    """Stores hand-off quadruplets for one cell and selects the active set."""

    def __init__(self, config: CacheConfig | None = None) -> None:
        self.config = config or CacheConfig()
        self._pairs: dict[tuple[int | None, int], _PairStore] = {}
        self.total_recorded = 0

    # ------------------------------------------------------------------
    # recording / eviction
    # ------------------------------------------------------------------
    def record(self, quadruplet: HandoffQuadruplet) -> None:
        """Cache a new observation (must arrive in time order per pair)."""
        key = (quadruplet.prev, quadruplet.next)
        store = self._pairs.get(key)
        if store is None:
            store = _PairStore()
            self._pairs[key] = store
        if store.entries and quadruplet.event_time < store.entries[-1].event_time:
            raise ValueError("quadruplets must be recorded in time order")
        store.entries.append(quadruplet)
        self.total_recorded += 1
        self._evict(store, quadruplet.event_time)

    def _evict(self, store: _PairStore, now: float) -> None:
        """Drop entries that can never participate again (paper §3.1).

        A quadruplet older than ``N_win-days * period + T_int`` is
        out-of-date for every future estimation instant.  With an
        infinite interval only the ``N_quad`` most recent entries can
        ever be selected, so older ones are dropped too.
        """
        config = self.config
        if config.interval is None:
            while len(store.entries) > config.max_per_pair:
                store.entries.popleft()
            return
        horizon = config.window_days * config.period + config.interval
        while store.entries and now - store.entries[0].event_time > horizon:
            store.entries.popleft()
        # Memory bound: one full window of N_quad per contributing day.
        limit = config.max_per_pair * (config.window_days + 1)
        while len(store.entries) > limit:
            store.entries.popleft()

    # ------------------------------------------------------------------
    # selection (Eqs. 2-3 + priority rule)
    # ------------------------------------------------------------------
    def active(
        self, now: float, prev: int | None
    ) -> dict[int, list[WeightedQuadruplet]]:
        """Active weighted quadruplets at time ``now`` for one ``prev``.

        Returns a mapping ``next -> [WeightedQuadruplet, ...]``.
        """
        result: dict[int, list[WeightedQuadruplet]] = {}
        for (stored_prev, next_cell), store in self._pairs.items():
            if stored_prev != prev:
                continue
            selected = self._select_pair(store.entries, now)
            if selected:
                result[next_cell] = selected
        return result

    def pairs(self) -> Iterable[tuple[int | None, int]]:
        """All ``(prev, next)`` pairs with any cached entries."""
        return list(self._pairs)

    def size(self) -> int:
        """Total quadruplets currently cached (all pairs)."""
        return sum(len(store.entries) for store in self._pairs.values())

    def _select_pair(
        self, entries: Deque[HandoffQuadruplet], now: float
    ) -> list[WeightedQuadruplet]:
        config = self.config
        if config.interval is None:
            newest = list(entries)[-config.max_per_pair:]
            weight = config.weights[0]
            return [WeightedQuadruplet(quad, weight) for quad in newest]

        candidates: list[tuple[int, float, HandoffQuadruplet]] = []
        for quad in entries:
            day_age = self._day_index(quad.event_time, now)
            if day_age is None:
                continue
            weight = config.weights[day_age]
            if weight <= 0:
                continue
            distance = abs(quad.event_time + day_age * config.period - now)
            candidates.append((day_age, distance, quad))
        # Paper priority rule: smaller n first, then smaller distance.
        candidates.sort(key=lambda item: (item[0], item[1]))
        selected = candidates[: config.max_per_pair]
        return [
            WeightedQuadruplet(quad, config.weights[day_age])
            for day_age, _distance, quad in selected
        ]

    def _day_index(self, event_time: float, now: float) -> int | None:
        """Smallest ``n`` whose periodic window contains ``event_time``.

        ``None`` when the quadruplet is in no window (Eq. 2 fails for
        all ``n`` within ``N_win-days``).
        """
        config = self.config
        interval = config.interval
        assert interval is not None
        for day_age in range(config.window_days + 1):
            shifted = event_time + day_age * config.period
            if now - interval <= shifted < now + interval:
                return day_age
        return None
