"""Statistics helpers for simulation studies.

Single runs of a stochastic simulator give point estimates; a credible
comparison needs replications and interval estimates.  This module
provides Wilson score intervals for the two QoS probabilities (they are
binomial proportions) and a replication runner that sweeps seeds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, Sequence

from repro.simulation.config import SimulationConfig
from repro.simulation.metrics import SimulationResult
from repro.simulation.simulator import CellularSimulator

#: z for a 95% two-sided normal interval.
Z_95 = 1.959963984540054


@dataclass(frozen=True, slots=True)
class ProportionEstimate:
    """A binomial proportion with a Wilson score confidence interval."""

    successes: int
    trials: int
    point: float
    low: float
    high: float

    def __str__(self) -> str:
        return f"{self.point:.4f} [{self.low:.4f}, {self.high:.4f}]"


def wilson_interval(
    successes: int, trials: int, z: float = Z_95
) -> ProportionEstimate:
    """Wilson score interval — well-behaved at small counts and p ~ 0.

    Exactly what P_HD estimation needs: drops are rare events, so the
    naive normal interval would collapse to [p, p] or go negative.
    """
    if trials < 0 or successes < 0 or successes > trials:
        raise ValueError(f"invalid counts {successes}/{trials}")
    if trials == 0:
        return ProportionEstimate(0, 0, 0.0, 0.0, 1.0)
    p = successes / trials
    denominator = 1.0 + z * z / trials
    center = (p + z * z / (2 * trials)) / denominator
    margin = (
        z
        * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
        / denominator
    )
    low = max(center - margin, 0.0)
    high = min(center + margin, 1.0)
    # Exact bounds at the extremes (kill floating-point residue).
    if successes == 0:
        low = 0.0
    if successes == trials:
        high = 1.0
    return ProportionEstimate(successes, trials, p, low, high)


def blocking_estimate(result: SimulationResult) -> ProportionEstimate:
    """P_CB of a run with its Wilson 95% interval."""
    requests = sum(cell.new_requests for cell in result.cells)
    blocked = sum(cell.blocked for cell in result.cells)
    return wilson_interval(blocked, requests)


def dropping_estimate(result: SimulationResult) -> ProportionEstimate:
    """P_HD of a run with its Wilson 95% interval."""
    attempts = sum(cell.handoff_attempts for cell in result.cells)
    drops = sum(cell.handoff_drops for cell in result.cells)
    return wilson_interval(drops, attempts)


@dataclass
class ReplicationSummary:
    """Pooled statistics over independent same-config replications."""

    results: list[SimulationResult]
    blocking: ProportionEstimate
    dropping: ProportionEstimate

    @property
    def replications(self) -> int:
        return len(self.results)

    def mean_of(self, metric: Callable[[SimulationResult], float]) -> float:
        if not self.results:
            return 0.0
        return sum(metric(result) for result in self.results) / len(
            self.results
        )


def replicate(
    config: SimulationConfig,
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
) -> ReplicationSummary:
    """Run the same scenario under several seeds and pool the counts.

    Pooling (rather than averaging per-run probabilities) weights every
    hand-off equally, which is the right estimator for rare drops.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    results = [
        CellularSimulator(replace(config, seed=seed)).run() for seed in seeds
    ]
    requests = sum(
        cell.new_requests for result in results for cell in result.cells
    )
    blocked = sum(
        cell.blocked for result in results for cell in result.cells
    )
    attempts = sum(
        cell.handoff_attempts for result in results for cell in result.cells
    )
    drops = sum(
        cell.handoff_drops for result in results for cell in result.cells
    )
    return ReplicationSummary(
        results=results,
        blocking=wilson_interval(blocked, requests),
        dropping=wilson_interval(drops, attempts),
    )
