"""Statistics helpers for simulation studies.

Single runs of a stochastic simulator give point estimates; a credible
comparison needs replications and interval estimates.  This module
provides Wilson score intervals for the two QoS probabilities (they are
binomial proportions), batch-means confidence intervals (the interval
estimator behind the sharded replication runner and the sequential
baseline it is compared against), and a replication runner that sweeps
seeds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from statistics import NormalDist
from typing import Callable, Sequence

from repro.simulation.config import SimulationConfig
from repro.simulation.metrics import SimulationResult
from repro.simulation.simulator import CellularSimulator

#: z for a 95% two-sided normal interval.
Z_95 = 1.959963984540054


@dataclass(frozen=True, slots=True)
class ProportionEstimate:
    """A binomial proportion with a Wilson score confidence interval."""

    successes: int
    trials: int
    point: float
    low: float
    high: float

    def __str__(self) -> str:
        return f"{self.point:.4f} [{self.low:.4f}, {self.high:.4f}]"


def wilson_interval(
    successes: int, trials: int, z: float = Z_95
) -> ProportionEstimate:
    """Wilson score interval — well-behaved at small counts and p ~ 0.

    Exactly what P_HD estimation needs: drops are rare events, so the
    naive normal interval would collapse to [p, p] or go negative.
    """
    if trials < 0 or successes < 0 or successes > trials:
        raise ValueError(f"invalid counts {successes}/{trials}")
    if trials == 0:
        return ProportionEstimate(0, 0, 0.0, 0.0, 1.0)
    p = successes / trials
    denominator = 1.0 + z * z / trials
    center = (p + z * z / (2 * trials)) / denominator
    margin = (
        z
        * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
        / denominator
    )
    low = max(center - margin, 0.0)
    high = min(center + margin, 1.0)
    # Exact bounds at the extremes (kill floating-point residue).
    if successes == 0:
        low = 0.0
    if successes == trials:
        high = 1.0
    return ProportionEstimate(successes, trials, p, low, high)


def blocking_estimate(result: SimulationResult) -> ProportionEstimate:
    """P_CB of a run with its Wilson 95% interval."""
    requests = sum(cell.new_requests for cell in result.cells)
    blocked = sum(cell.blocked for cell in result.cells)
    return wilson_interval(blocked, requests)


def dropping_estimate(result: SimulationResult) -> ProportionEstimate:
    """P_HD of a run with its Wilson 95% interval."""
    attempts = sum(cell.handoff_attempts for cell in result.cells)
    drops = sum(cell.handoff_drops for cell in result.cells)
    return wilson_interval(drops, attempts)


def t_quantile(level: float, dof: int) -> float:
    """Two-sided Student-t critical value ``t_{(1+level)/2, dof}``.

    Exact closed forms at 1 and 2 degrees of freedom, then a
    Cornish–Fisher expansion around the normal quantile — accurate to
    ~0.1% for ``dof >= 3``, which is far below the Monte-Carlo noise of
    any batch-means interval.  Keeps the repository scipy-free.
    """
    if not 0.0 < level < 1.0:
        raise ValueError(f"confidence level must be in (0, 1), got {level}")
    if dof < 1:
        raise ValueError(f"degrees of freedom must be >= 1, got {dof}")
    if dof == 1:
        # Student-t with 1 dof is the Cauchy distribution.
        return math.tan(math.pi * level / 2.0)
    if dof == 2:
        p = level  # = 2 * upper_p - 1 for the two-sided quantile
        return p * math.sqrt(2.0 / (1.0 - p * p))
    z = NormalDist().inv_cdf(0.5 + level / 2.0)
    z2 = z * z
    g1 = z * (z2 + 1.0) / 4.0
    g2 = z * (5.0 * z2 * z2 + 16.0 * z2 + 3.0) / 96.0
    g3 = z * (3.0 * z2**3 + 19.0 * z2 * z2 + 17.0 * z2 - 15.0) / 384.0
    g4 = z * (
        79.0 * z2**4
        + 776.0 * z2**3
        + 1482.0 * z2 * z2
        - 1920.0 * z2
        - 945.0
    ) / 92160.0
    n = float(dof)
    return z + g1 / n + g2 / n**2 + g3 / n**3 + g4 / n**4


@dataclass(frozen=True, slots=True)
class BatchMeansEstimate:
    """A mean with a Student-t confidence interval over batch means."""

    mean: float
    half_width: float
    low: float
    high: float
    batches: int
    level: float

    def covers(self, value: float) -> bool:
        """Whether ``value`` falls inside the interval."""
        return self.low <= value <= self.high

    def __str__(self) -> str:
        return (
            f"{self.mean:.4f} ± {self.half_width:.4f}"
            f" ({self.level:.0%}, n={self.batches})"
        )


def batch_means(
    values: Sequence[float], level: float = 0.95
) -> BatchMeansEstimate:
    """Batch-means confidence interval over (approximately) i.i.d. means.

    Each value is one batch mean — a replication's post-warm-up
    proportion, or one time batch of a long run.  A single batch yields
    an infinite interval (no variance information), which is the honest
    answer rather than an error: callers can still read the point mean.
    """
    values = [float(value) for value in values]
    count = len(values)
    if count == 0:
        raise ValueError("need at least one batch")
    mean = sum(values) / count
    if count == 1:
        return BatchMeansEstimate(
            mean, math.inf, -math.inf, math.inf, 1, level
        )
    variance = sum((value - mean) ** 2 for value in values) / (count - 1)
    half = t_quantile(level, count - 1) * math.sqrt(variance / count)
    return BatchMeansEstimate(mean, half, mean - half, mean + half, count, level)


def batch_means_from_hourly(
    result: SimulationResult, level: float = 0.95, skip_buckets: int = 0
) -> tuple[BatchMeansEstimate, BatchMeansEstimate]:
    """Batch-means CIs for ``(P_CB, P_HD)`` from a run's hourly buckets.

    Reuses the Figure-14b hourly aggregation as time batches: run the
    scenario with ``hourly_stats=True`` and ``day_seconds`` chosen so
    one "hour" (``day_seconds / 24``) is the desired batch width, then
    drop the leading ``skip_buckets`` warm-up batches.  This is how a
    *sequential* long run gets an interval estimate comparable to the
    sharded replication runner's.
    """
    buckets = result.hourly[skip_buckets:]
    if not buckets:
        raise ValueError(
            "no hourly buckets to batch over; run with hourly_stats=True"
        )
    blocking = batch_means(
        [bucket.blocking_probability for bucket in buckets], level
    )
    dropping = batch_means(
        [bucket.dropping_probability for bucket in buckets], level
    )
    return blocking, dropping


@dataclass
class ReplicationSummary:
    """Pooled statistics over independent same-config replications."""

    results: list[SimulationResult]
    blocking: ProportionEstimate
    dropping: ProportionEstimate

    @property
    def replications(self) -> int:
        return len(self.results)

    def mean_of(self, metric: Callable[[SimulationResult], float]) -> float:
        if not self.results:
            return 0.0
        return sum(metric(result) for result in self.results) / len(
            self.results
        )


def replicate(
    config: SimulationConfig,
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
) -> ReplicationSummary:
    """Run the same scenario under several seeds and pool the counts.

    Pooling (rather than averaging per-run probabilities) weights every
    hand-off equally, which is the right estimator for rare drops.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    results = [
        CellularSimulator(replace(config, seed=seed)).run() for seed in seeds
    ]
    requests = sum(
        cell.new_requests for result in results for cell in result.cells
    )
    blocked = sum(
        cell.blocked for result in results for cell in result.cells
    )
    attempts = sum(
        cell.handoff_attempts for result in results for cell in result.cells
    )
    drops = sum(
        cell.handoff_drops for result in results for cell in result.cells
    )
    return ReplicationSummary(
        results=results,
        blocking=wilson_interval(blocked, requests),
        dropping=wilson_interval(drops, attempts),
    )
