"""Analytic guard-channel model (Hong & Rappaport 1986).

The paper's static baseline *is* the classic prioritized guard-channel
scheme: of ``C`` channels, new calls may only occupy ``C - G`` while
hand-offs may use all ``C``.  With Poisson new-call arrivals (rate
``lambda_n``), Poisson hand-off arrivals (``lambda_h``) and exponential
channel holding times (rate ``mu``), the channel occupancy is a
birth–death chain whose stationary distribution has a closed form:

* for ``k <= C - G``: ``p_k = p_0 * a^k / k!`` with
  ``a = (lambda_n + lambda_h) / mu``;
* for ``k > C - G``:  the birth rate drops to ``lambda_h``.

``P_CB = sum_{k >= C-G} p_k`` and ``P_HD = p_C``.

This module solves that chain and estimates the hand-off arrival rate
implied by the paper's road model, giving an independent cross-check of
the simulator (see ``tests/analysis/test_guard_channel.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class GuardChannelResult:
    """Stationary probabilities of the guard-channel birth-death chain."""

    blocking_probability: float
    dropping_probability: float
    occupancy: tuple[float, ...]

    @property
    def mean_channels_busy(self) -> float:
        return sum(
            k * probability for k, probability in enumerate(self.occupancy)
        )


def solve_guard_channel(
    capacity: int,
    guard: int,
    new_call_rate: float,
    handoff_rate: float,
    mean_holding_time: float,
) -> GuardChannelResult:
    """Solve the prioritized guard-channel chain in closed form.

    Parameters
    ----------
    capacity:
        Total channels ``C`` (integer BUs; voice-only traffic).
    guard:
        Guard channels ``G`` reserved for hand-offs.
    new_call_rate:
        ``lambda_n`` — new call attempts per second in the cell.
    handoff_rate:
        ``lambda_h`` — hand-off arrivals per second into the cell.
    mean_holding_time:
        ``1 / mu`` — mean *channel* holding time in seconds (the call
        finishes or hands off away, whichever first).
    """
    if capacity < 1 or not 0 <= guard <= capacity:
        raise ValueError(f"invalid capacity/guard {capacity}/{guard}")
    if min(new_call_rate, handoff_rate) < 0 or mean_holding_time <= 0:
        raise ValueError("rates must be non-negative, holding time positive")
    mu = 1.0 / mean_holding_time
    threshold = capacity - guard
    # Unnormalised log-weights to stay stable for large C.
    log_weights = [0.0]
    for k in range(1, capacity + 1):
        birth = (
            new_call_rate + handoff_rate if k - 1 < threshold
            else handoff_rate
        )
        if birth <= 0.0:
            # Chain cannot reach state k (nor any above it).
            log_weights.append(-math.inf)
            continue
        log_weights.append(
            log_weights[-1] + math.log(birth) - math.log(k * mu)
        )
    peak = max(log_weights)
    weights = [
        math.exp(value - peak) if value > -math.inf else 0.0
        for value in log_weights
    ]
    total = sum(weights)
    occupancy = tuple(weight / total for weight in weights)
    blocking = sum(occupancy[threshold:])
    dropping = occupancy[capacity]
    return GuardChannelResult(blocking, dropping, occupancy)


@dataclass(frozen=True, slots=True)
class RoadModelRates:
    """Arrival/holding rates implied by the paper's road model (voice)."""

    new_call_rate: float
    handoff_rate: float
    mean_channel_holding: float


def road_model_rates(
    offered_load: float,
    mean_speed_kmh: float,
    cell_diameter_km: float = 1.0,
    mean_lifetime: float = 120.0,
    iterations: int = 50,
) -> RoadModelRates:
    """Estimate the guard-channel inputs for the paper's voice highway.

    A mobile's residual time in a cell is roughly
    ``cell_diameter / speed`` once in motion (uniform entry positions at
    call setup make the *first* sojourn half that on average; the
    fixed-point below uses the through-traffic value, which dominates).

    The hand-off arrival rate must be found as a fixed point: carried
    calls generate hand-offs, which are themselves carried calls.  We
    iterate ``lambda_h = (carried new + carried hand-offs) * P(move on)``
    ignoring blocking (an upper bound appropriate at moderate loads).
    """
    if iterations < 1:
        raise ValueError("need at least one iteration")
    new_call_rate = offered_load / mean_lifetime  # E[b]=1 BU (voice)
    crossing_time = cell_diameter_km / (mean_speed_kmh / 3600.0)
    # Channel holding: min(lifetime, residence). Both ~exponential-ish;
    # approximate with rates adding.
    holding = 1.0 / (1.0 / mean_lifetime + 1.0 / crossing_time)
    # P(hand-off before completion) for a carried call.
    move_on = (1.0 / crossing_time) / (
        1.0 / crossing_time + 1.0 / mean_lifetime
    )
    handoff_rate = 0.0
    for _ in range(iterations):
        handoff_rate = (new_call_rate + handoff_rate) * move_on
    return RoadModelRates(new_call_rate, handoff_rate, holding)


def analytic_static_baseline(
    offered_load: float,
    guard: int = 10,
    capacity: int = 100,
    mean_speed_kmh: float = 100.0,
    cell_diameter_km: float = 1.0,
    mean_lifetime: float = 120.0,
    iterations: int = 200,
) -> GuardChannelResult:
    """End-to-end analytic P_CB / P_HD for the paper's static scheme.

    Solves the *coupled* fixed point: the hand-off arrival rate depends
    on how many calls are actually carried, which depends on the chain's
    blocking/dropping, which depends on the hand-off rate.  We iterate

        lambda_h <- (lambda_n (1 - P_CB) + lambda_h (1 - P_HD)) * P(move on)

    against the closed-form chain until convergence (damped).

    Only valid for voice-only traffic (``R_vo = 1``) where the BU chain
    is a true birth–death process.
    """
    new_call_rate = offered_load / mean_lifetime
    crossing_time = cell_diameter_km / (mean_speed_kmh / 3600.0)
    holding = 1.0 / (1.0 / mean_lifetime + 1.0 / crossing_time)
    move_on = (1.0 / crossing_time) / (
        1.0 / crossing_time + 1.0 / mean_lifetime
    )
    handoff_rate = new_call_rate * move_on
    result = solve_guard_channel(
        capacity, guard, new_call_rate, handoff_rate, holding
    )
    for _ in range(iterations):
        carried = (
            new_call_rate * (1.0 - result.blocking_probability)
            + handoff_rate * (1.0 - result.dropping_probability)
        )
        updated = carried * move_on
        # Damping keeps the iteration stable near saturation.
        handoff_rate = 0.5 * handoff_rate + 0.5 * updated
        result = solve_guard_channel(
            capacity, guard, new_call_rate, handoff_rate, holding
        )
    return result
