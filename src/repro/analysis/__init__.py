"""Analysis utilities: intervals, replications, analytic models."""

from repro.analysis.guard_channel import (
    GuardChannelResult,
    analytic_static_baseline,
    road_model_rates,
    solve_guard_channel,
)
from repro.analysis.stats import (
    ProportionEstimate,
    ReplicationSummary,
    blocking_estimate,
    dropping_estimate,
    replicate,
    wilson_interval,
)

__all__ = [
    "GuardChannelResult",
    "ProportionEstimate",
    "ReplicationSummary",
    "blocking_estimate",
    "analytic_static_baseline",
    "dropping_estimate",
    "replicate",
    "road_model_rates",
    "solve_guard_channel",
    "wilson_interval",
]
