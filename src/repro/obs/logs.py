"""Structured logging for simulation runs.

Every ``repro`` subsystem logs through the stdlib under the ``repro.*``
namespace (``repro.kernel`` already did; ``repro.engine``,
``repro.window``, ``repro.progress``, ``repro.trace`` join it here).
This module adds:

* a **JSONL formatter** — one JSON object per line with timestamp,
  level, logger, message, the current ``run_id``, and any structured
  ``extra=`` fields the call site attached;
* **per-subsystem levels** — a level spec like
  ``"info,des=debug,repro.estimation=warning"`` sets the root
  ``repro`` level and per-logger overrides (bare names are shorthand
  for ``repro.<name>``);
* **environment plumbing** — ``REPRO_LOG`` holds a level spec and
  ``REPRO_LOG_JSON=1`` switches to JSONL, so library users get
  structured logs without touching the CLI (the simulator calls
  :func:`ensure_configured` once per construction).

The CLI flags ``--log-level`` / ``--log-json`` and ``repro-bench``'s
equivalents route through :func:`configure_logging`.
"""

from __future__ import annotations

import json
import logging
import os
import sys
import time
from typing import Mapping, TextIO

__all__ = [
    "JsonLineFormatter",
    "configure_logging",
    "current_run_id",
    "ensure_configured",
    "get_logger",
    "parse_level_spec",
    "set_run_id",
]

#: LogRecord attributes that are plumbing, not user-attached structure.
_RECORD_FIELDS = frozenset(
    logging.LogRecord(
        "", logging.INFO, "", 0, "", (), None
    ).__dict__
) | {"message", "asctime", "taskName"}

_current_run_id = ""
_handler: logging.Handler | None = None
_configured = False


def set_run_id(run_id: str) -> None:
    """Set the run id stamped onto subsequent log lines (per process)."""
    global _current_run_id
    _current_run_id = run_id


def current_run_id() -> str:
    return _current_run_id


def get_logger(subsystem: str) -> logging.Logger:
    """The logger of one subsystem (``repro.<subsystem>``)."""
    if subsystem.startswith("repro"):
        return logging.getLogger(subsystem)
    return logging.getLogger(f"repro.{subsystem}")


class JsonLineFormatter(logging.Formatter):
    """One JSON object per record; ``extra=`` fields pass through."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, object] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        if _current_run_id:
            payload["run_id"] = _current_run_id
        for key, value in record.__dict__.items():
            if key not in _RECORD_FIELDS and not key.startswith("_"):
                payload[key] = value
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str)


class _HumanFormatter(logging.Formatter):
    """Compact human format; structured extras rendered as k=v pairs."""

    def format(self, record: logging.LogRecord) -> str:
        stamp = time.strftime("%H:%M:%S", time.localtime(record.created))
        extras = " ".join(
            f"{key}={value}"
            for key, value in record.__dict__.items()
            if key not in _RECORD_FIELDS and not key.startswith("_")
        )
        line = (
            f"{stamp} {record.levelname.lower():<7} {record.name}"
            f" {record.getMessage()}"
        )
        if extras:
            line = f"{line} [{extras}]"
        if record.exc_info:
            line = f"{line}\n{self.formatException(record.exc_info)}"
        return line


def parse_level_spec(
    spec: str,
) -> tuple[int, dict[str, int]]:
    """Parse ``"info,des=debug,..."`` into a root level plus overrides.

    The first bare entry (no ``=``) is the root ``repro`` level;
    ``name=level`` entries override individual subsystem loggers.
    Unknown level names raise ``ValueError``.
    """
    root = logging.INFO
    overrides: dict[str, int] = {}
    for piece in spec.split(","):
        piece = piece.strip()
        if not piece:
            continue
        if "=" in piece:
            name, _, level_name = piece.partition("=")
            name = name.strip()
            if not name.startswith("repro"):
                name = f"repro.{name}"
            overrides[name] = _level(level_name.strip())
        else:
            root = _level(piece)
    return root, overrides


def _level(name: str) -> int:
    resolved = logging.getLevelName(name.upper())
    if not isinstance(resolved, int):
        raise ValueError(f"unknown log level {name!r}")
    return resolved


def configure_logging(
    spec: str | None = None,
    json_lines: bool | None = None,
    stream: TextIO | None = None,
    subsystem_levels: Mapping[str, int] | None = None,
) -> None:
    """(Re)configure the ``repro`` logging tree.

    Parameters
    ----------
    spec:
        Level spec (see :func:`parse_level_spec`); ``None`` falls back
        to ``REPRO_LOG`` and then to ``"info"``.
    json_lines:
        Emit JSONL instead of the human format; ``None`` falls back to
        ``REPRO_LOG_JSON``.
    stream:
        Destination (default ``sys.stderr``).
    subsystem_levels:
        Extra per-logger overrides, merged over the spec's.

    Idempotent: re-running replaces the handler installed by the
    previous call instead of stacking another one.
    """
    global _handler, _configured
    if spec is None:
        spec = os.environ.get("REPRO_LOG") or "info"
    if json_lines is None:
        json_lines = os.environ.get(
            "REPRO_LOG_JSON", ""
        ).strip().lower() in ("1", "true", "on", "yes")
    root_level, overrides = parse_level_spec(spec)
    if subsystem_levels:
        overrides.update(subsystem_levels)
    root = logging.getLogger("repro")
    if _handler is not None:
        root.removeHandler(_handler)
    _handler = logging.StreamHandler(stream or sys.stderr)
    _handler.setFormatter(
        JsonLineFormatter() if json_lines else _HumanFormatter()
    )
    root.addHandler(_handler)
    root.setLevel(root_level)
    root.propagate = False
    for name, level in overrides.items():
        logging.getLogger(name).setLevel(level)
    _configured = True


def ensure_configured() -> None:
    """Configure once from the environment, if the env asks for logs.

    Called by the simulator at construction: library users who set
    ``REPRO_LOG``/``REPRO_LOG_JSON`` get output without any CLI; users
    who set neither keep the stdlib default (silence below WARNING).
    """
    if _configured:
        return
    if os.environ.get("REPRO_LOG") or os.environ.get("REPRO_LOG_JSON"):
        configure_logging()
