"""Export telemetry snapshots: Prometheus text format and JSON.

:func:`to_prometheus` renders a :meth:`Telemetry.snapshot` dict in the
Prometheus text exposition format (version 0.0.4), so a run's counters
can be scraped, diffed, or pushed to a gateway.  :func:`parse_prometheus`
reads that text back into ``series -> value`` pairs — used by the
round-trip tests and the CI telemetry smoke stage, and handy for
asserting on exported runs without a Prometheus server.

Series naming: dots in instrument names become underscores and
everything gets a ``repro_`` prefix (``des.events_fired`` exports as
``repro_des_events_fired``).  Histograms render the cumulative
``_bucket{le=...}`` form plus ``_sum`` and ``_count``; section timers
render ``_seconds_total`` and ``_calls_total`` counters.
"""

from __future__ import annotations

import json
import re
from typing import Mapping

__all__ = [
    "parse_prometheus",
    "snapshot_to_json",
    "to_prometheus",
]

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_:]")
_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?\s+(?P<value>\S+)$"
)


def _metric_name(key: str, prefix: str) -> tuple[str, str]:
    """Split a snapshot series key into (exported name, label block)."""
    brace = key.find("{")
    if brace < 0:
        name, labels = key, ""
    else:
        name, labels = key[:brace], key[brace:]
    return prefix + _NAME_SANITIZER.sub("_", name), labels


def _merge_labels(labels: str, extra: str) -> str:
    """Append one ``k="v"`` pair to a (possibly empty) label block."""
    if not labels:
        return "{" + extra + "}"
    return labels[:-1] + "," + extra + "}"


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def to_prometheus(snapshot: Mapping, prefix: str = "repro_") -> str:
    """Render a telemetry snapshot as Prometheus exposition text."""
    lines: list[str] = []
    run_id = snapshot.get("run_id")
    if run_id:
        lines.append(f"# repro telemetry snapshot, run_id={run_id}")
    for key, value in snapshot.get("counters", {}).items():
        name, labels = _metric_name(key, prefix)
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name}{labels} {_format_value(value)}")
    for key, value in snapshot.get("gauges", {}).items():
        name, labels = _metric_name(key, prefix)
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name}{labels} {_format_value(value)}")
    for key, data in snapshot.get("histograms", {}).items():
        name, labels = _metric_name(key, prefix)
        lines.append(f"# TYPE {name} histogram")
        cumulative = 0
        for edge, count in zip(data["buckets"], data["counts"]):
            cumulative += count
            edge_labels = _merge_labels(labels, f'le="{_format_value(edge)}"')
            lines.append(f"{name}_bucket{edge_labels} {cumulative}")
        cumulative += data["counts"][len(data["buckets"])]
        inf_labels = _merge_labels(labels, 'le="+Inf"')
        lines.append(f"{name}_bucket{inf_labels} {cumulative}")
        lines.append(f"{name}_sum{labels} {_format_value(data['sum'])}")
        lines.append(f"{name}_count{labels} {data['count']}")
    for key, data in snapshot.get("timers", {}).items():
        name, labels = _metric_name(key, prefix)
        lines.append(f"# TYPE {name}_seconds_total counter")
        lines.append(
            f"{name}_seconds_total{labels} {_format_value(data['seconds'])}"
        )
        lines.append(f"# TYPE {name}_calls_total counter")
        lines.append(f"{name}_calls_total{labels} {data['count']}")
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> dict[str, float]:
    """Parse exposition text back into ``name{labels} -> value`` pairs.

    Label blocks are kept verbatim (Prometheus emits them sorted, and
    :func:`to_prometheus` sorts too, so round-trips compare directly).
    ``+Inf``/``NaN`` values parse to their float equivalents.
    """
    series: dict[str, float] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _LINE.match(line)
        if match is None:
            raise ValueError(f"unparseable exposition line: {raw!r}")
        key = match.group("name") + (match.group("labels") or "")
        series[key] = float(match.group("value"))
    return series


def snapshot_to_json(snapshot: Mapping, indent: int = 2) -> str:
    """The JSON form of a snapshot (stable key order for diffs)."""
    return json.dumps(snapshot, indent=indent, sort_keys=True) + "\n"
