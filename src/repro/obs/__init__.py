"""Run-wide observability: telemetry, logging, progress, streaming.

* :mod:`repro.obs.telemetry` — counters/gauges/histograms/timers in a
  per-run registry, with a no-op twin selected when telemetry is off.
* :mod:`repro.obs.logs` — JSONL structured logging with per-subsystem
  levels and ``REPRO_LOG``/``REPRO_LOG_JSON`` plumbing.
* :mod:`repro.obs.progress` — heartbeat progress lines driven by the
  DES engine, safe under process-pool sweeps.
* :mod:`repro.obs.export` — Prometheus text exposition and JSON forms
  of a snapshot, plus a parser for round-trips and CI assertions.
* :mod:`repro.obs.timeseries` — in-run time-series sampling driven by
  the engine's observer hook, ring-buffered and optionally streamed to
  an append-only JSONL file as the run executes.
* :mod:`repro.obs.trace` — wall-clock span recording (epoch barriers,
  flush ticks, checkpoint publishes) as Perfetto-loadable Chrome
  trace-event JSON.
* :mod:`repro.obs.dash` — a stdlib ANSI terminal dashboard tailing a
  live series stream (``repro dash``).

None of it perturbs the simulation: instruments only count, samplers
and spans only read state and the wall clock, heartbeats piggyback on
events the run was firing anyway, and ``metrics_key()`` equality
between observed and unobserved runs is enforced by tests.
"""

from repro.obs.dash import DashState, render, run_dash
from repro.obs.export import parse_prometheus, snapshot_to_json, to_prometheus
from repro.obs.logs import (
    configure_logging,
    ensure_configured,
    get_logger,
    set_run_id,
)
from repro.obs.progress import ProgressReporter
from repro.obs.telemetry import (
    Counter,
    Gauge,
    Histogram,
    NullTelemetry,
    SectionTimer,
    Telemetry,
    begin_run,
    get_telemetry,
    merge_snapshots,
    new_run_id,
    set_telemetry_enabled,
    telemetry_enabled,
)
from repro.obs.timeseries import (
    TimeSeriesSampler,
    iter_series,
    merge_series,
    read_series,
    series_summary,
    write_series,
)
from repro.obs.trace import (
    NullTraceCollector,
    TraceCollector,
    begin_trace,
    get_tracer,
    merge_traces,
    set_tracing_enabled,
    span_names,
    tracing_enabled,
    write_trace,
)

__all__ = [
    "Counter",
    "DashState",
    "Gauge",
    "Histogram",
    "NullTelemetry",
    "NullTraceCollector",
    "ProgressReporter",
    "SectionTimer",
    "Telemetry",
    "TimeSeriesSampler",
    "TraceCollector",
    "begin_run",
    "begin_trace",
    "configure_logging",
    "ensure_configured",
    "get_logger",
    "get_telemetry",
    "get_tracer",
    "iter_series",
    "merge_series",
    "merge_snapshots",
    "merge_traces",
    "new_run_id",
    "parse_prometheus",
    "read_series",
    "render",
    "run_dash",
    "series_summary",
    "set_run_id",
    "set_telemetry_enabled",
    "set_tracing_enabled",
    "snapshot_to_json",
    "span_names",
    "telemetry_enabled",
    "to_prometheus",
    "tracing_enabled",
    "write_series",
    "write_trace",
]
