"""Run-wide observability: telemetry, structured logging, progress.

* :mod:`repro.obs.telemetry` — counters/gauges/histograms/timers in a
  per-run registry, with a no-op twin selected when telemetry is off.
* :mod:`repro.obs.logs` — JSONL structured logging with per-subsystem
  levels and ``REPRO_LOG``/``REPRO_LOG_JSON`` plumbing.
* :mod:`repro.obs.progress` — heartbeat progress lines driven by the
  DES engine, safe under process-pool sweeps.
* :mod:`repro.obs.export` — Prometheus text exposition and JSON forms
  of a snapshot, plus a parser for round-trips and CI assertions.

None of it perturbs the simulation: instruments only count, heartbeats
piggyback on events the run was firing anyway, and ``metrics_key()``
equality between telemetry-on and -off runs is enforced by tests.
"""

from repro.obs.export import parse_prometheus, snapshot_to_json, to_prometheus
from repro.obs.logs import (
    configure_logging,
    ensure_configured,
    get_logger,
    set_run_id,
)
from repro.obs.progress import ProgressReporter
from repro.obs.telemetry import (
    Counter,
    Gauge,
    Histogram,
    NullTelemetry,
    SectionTimer,
    Telemetry,
    begin_run,
    get_telemetry,
    merge_snapshots,
    new_run_id,
    set_telemetry_enabled,
    telemetry_enabled,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "NullTelemetry",
    "ProgressReporter",
    "SectionTimer",
    "Telemetry",
    "begin_run",
    "configure_logging",
    "ensure_configured",
    "get_logger",
    "get_telemetry",
    "merge_snapshots",
    "new_run_id",
    "parse_prometheus",
    "set_run_id",
    "set_telemetry_enabled",
    "snapshot_to_json",
    "telemetry_enabled",
    "to_prometheus",
]
