"""``repro dash`` — a stdlib ANSI terminal dashboard for live runs.

Tails the append-only JSONL time-series stream a running simulation
writes (``repro run --series-out live.jsonl ...``, including multi-shard
spatial runs where every shard process appends its own tagged rows) and
redraws a compact per-shard table a few times a second:

* virtual time and fraction of the horizon per shard,
* instantaneous events/s (with a sparkline of the recent rate),
* heap depth and cancellation count,
* running P_CB / P_HD and bandwidth utilization,
* barrier-wait fraction and event-count imbalance (this shard over the
  mean of all shard lanes) for spatial shards.

Everything is pure stdlib: ANSI cursor-home + clear-to-end redraws, no
curses.  ``render`` is a pure function of the accumulated rows so the
tests exercise the exact strings the terminal shows; ``run_dash`` owns
the tail-follow loop.  Reading from a pipe (``-``) renders on every
batch of rows instead of polling.
"""

from __future__ import annotations

import sys
import time
from collections import deque
from pathlib import Path
from typing import Mapping, Sequence, TextIO

from repro.obs.timeseries import iter_series

__all__ = ["DashState", "render", "run_dash"]

_SPARK_CHARS = "▁▂▃▄▅▆▇█"
_SPARK_WIDTH = 16
_CLEAR = "\x1b[H\x1b[J"


def _sparkline(values: Sequence[float], width: int = _SPARK_WIDTH) -> str:
    values = list(values)[-width:]
    if not values:
        return ""
    top = max(values)
    if top <= 0:
        return _SPARK_CHARS[0] * len(values)
    scale = len(_SPARK_CHARS) - 1
    return "".join(
        _SPARK_CHARS[min(scale, int(value / top * scale))] for value in values
    )


def _fmt_rate(rate: float) -> str:
    if rate >= 1_000_000:
        return f"{rate / 1_000_000:.1f}M"
    if rate >= 1_000:
        return f"{rate / 1_000:.1f}k"
    return f"{rate:.0f}"


def _lane(row: Mapping) -> str:
    shard = row.get("shard")
    if shard is not None:
        return f"s{shard}"
    return str(row.get("label") or row.get("run_id") or "run")


class DashState:
    """Accumulated view of a stream: latest row + rate history per lane."""

    def __init__(self, history: int = _SPARK_WIDTH) -> None:
        self.latest: dict[str, dict] = {}
        self.rates: dict[str, deque] = {}
        self.rows_seen = 0
        self._history = history

    def feed(self, rows: Sequence[Mapping]) -> None:
        for row in rows:
            lane = _lane(row)
            self.latest[lane] = dict(row)
            self.rates.setdefault(lane, deque(maxlen=self._history)).append(
                float(row.get("events_per_s") or 0.0)
            )
            self.rows_seen += 1


def render(state: DashState, width: int = 100) -> str:
    """Render the dashboard frame for the current state (pure)."""
    header = (
        f"{'lane':<8} {'t':>9} {'events':>12} {'ev/s':>8} "
        f"{'heap':>8} {'P_CB':>7} {'P_HD':>7} {'util':>6} "
        f"{'barrier':>8} {'imbal':>6}  rate"
    )
    lines = [header, "-" * min(width, len(header) + _SPARK_WIDTH)]
    total_events = 0
    total_rate = 0.0
    # Per-shard imbalance: this shard's event count over the mean of
    # all shard lanes (1.00 = perfectly balanced plan).  Non-shard
    # lanes (plain runs, replication workers) show no value.
    shard_events = [
        int(row.get("events") or 0)
        for row in state.latest.values()
        if row.get("shard") is not None
    ]
    shard_mean = (
        sum(shard_events) / len(shard_events) if len(shard_events) > 1
        else 0.0
    )
    for lane in sorted(state.latest):
        row = state.latest[lane]
        rate = float(row.get("events_per_s") or 0.0)
        events = int(row.get("events") or 0)
        total_events += events
        total_rate += rate
        barrier = row.get("barrier_wait_frac")
        p_cb = row.get("p_cb")
        p_hd = row.get("p_hd")
        util = row.get("util")
        imbalance = (
            events / shard_mean
            if shard_mean > 0 and row.get("shard") is not None
            else None
        )
        shown = lane if len(lane) <= 8 else lane[:7] + "…"
        lines.append(
            f"{shown:<8} {row.get('t', 0.0):>9.1f} {events:>12,} "
            f"{_fmt_rate(rate):>8} {int(row.get('heap') or 0):>8,} "
            f"{'-' if p_cb is None else format(p_cb, '.4f'):>7} "
            f"{'-' if p_hd is None else format(p_hd, '.4f'):>7} "
            f"{'-' if util is None else format(util, '.0%'):>6} "
            f"{'-' if barrier is None else format(barrier, '.0%'):>8} "
            f"{'-' if imbalance is None else format(imbalance, '.2f'):>6}  "
            f"{_sparkline(state.rates.get(lane, ()))}"
        )
    lines.append("-" * min(width, len(header) + _SPARK_WIDTH))
    lines.append(
        f"{len(state.latest)} lane(s), {state.rows_seen} samples,"
        f" {total_events:,} events, {_fmt_rate(total_rate)} ev/s aggregate"
    )
    return "\n".join(lines)


def run_dash(
    path: str,
    *,
    refresh: float = 1.0,
    follow: bool = True,
    timeout: float | None = None,
    out: TextIO | None = None,
    clear: bool | None = None,
) -> int:
    """Tail a JSONL time-series stream and redraw the dashboard.

    ``path`` may be ``-`` for stdin (pipe mode: render per batch), a
    ``ws://host:port`` URL (subscribe to a live ``repro serve``
    endpoint and render its streamed rows), or a JSONL file to tail.
    ``follow=False`` renders the current file contents once and exits
    (the ``--once`` flag).  ``timeout`` bounds the follow loop in wall
    seconds (tests and unattended use); ``None`` runs until EOF-on-pipe
    or KeyboardInterrupt.  Returns a process exit code.
    """
    out = out if out is not None else sys.stdout
    if clear is None:
        clear = follow and out.isatty()
    state = DashState()

    def emit() -> None:
        frame = render(state)
        if clear:
            out.write(_CLEAR + frame + "\n")
        else:
            out.write(frame + "\n")
        out.flush()

    if path.startswith("ws://"):
        return _run_ws_dash(
            path, state, emit, refresh=refresh, timeout=timeout
        )

    if path == "-":
        batch: list[dict] = []
        for row in iter_series(sys.stdin):
            batch.append(row)
            if len(batch) >= 8:
                state.feed(batch)
                batch.clear()
                emit()
        if batch:
            state.feed(batch)
        emit()
        return 0

    target = Path(path)
    started = time.monotonic()
    position = 0
    while True:
        if target.exists():
            with target.open("r", encoding="utf-8") as handle:
                handle.seek(position)
                fresh = list(iter_series(handle))
                position = handle.tell()
            if fresh:
                state.feed(fresh)
        if not follow:
            if not target.exists():
                print(f"error: no such stream: {path}", file=sys.stderr)
                return 2
            emit()
            return 0
        emit()
        if timeout is not None and time.monotonic() - started >= timeout:
            return 0
        try:
            time.sleep(refresh)
        except KeyboardInterrupt:  # pragma: no cover - interactive exit
            return 0


def _run_ws_dash(url, state, emit, *, refresh, timeout) -> int:
    """Dashboard over a live ``repro serve`` WebSocket stream.

    Subscribes and feeds every streamed series row (frames without an
    ``op`` key — op-carrying frames are protocol replies) into the
    same render loop the file tail uses.  The socket read timeout
    doubles as the redraw cadence when the stream is quiet.
    """
    import json

    from repro.serve.ws import SyncWsClient

    try:
        client = SyncWsClient(url, timeout=max(refresh, 0.05))
    except (OSError, ConnectionError, ValueError) as error:
        print(f"error: cannot subscribe to {url}: {error}", file=sys.stderr)
        return 2
    client.send_json({"op": "subscribe"})
    started = time.monotonic()
    try:
        while True:
            try:
                text = client.recv_text()
            except TimeoutError:
                text = ""
            except ConnectionError:
                emit()
                return 0
            if text is None:  # server closed the stream
                emit()
                return 0
            if text:
                try:
                    row = json.loads(text)
                except ValueError:
                    row = None
                if isinstance(row, dict) and "op" not in row:
                    state.feed([row])
            emit()
            if timeout is not None and time.monotonic() - started >= timeout:
                return 0
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        return 0
    finally:
        client.close()
