"""In-run time-series sampling: the run's trajectory, not just its end.

The telemetry registry (:mod:`repro.obs.telemetry`) harvests one
snapshot at the end of a run.  A :class:`TimeSeriesSampler` adds the
*time dimension*: driven by the DES engine's observer hook (a plain
callback fired every few hundred events — it never schedules anything,
so sampling cannot perturb the run), it periodically records

* engine progress — virtual time, fired events, instantaneous events/s
  (delta rate over the sampling window), heap depth, cancellations;
* running scheme outcomes — P_CB / P_HD over the post-warm-up counters
  so far, and network bandwidth utilization;
* deltas of every live telemetry counter plus current gauge values and
  histogram-count deltas, when a registry is attached;
* free-form per-sample labels (spatial shards tag ``epoch`` and their
  barrier-wait fraction).

Samples land in a bounded ring buffer (oldest evicted first) and —
optionally — stream to an append-only JSONL file as they are taken, so
``repro dash`` can tail a run that is still in flight.  Per-shard and
per-replication series ride home on the result objects and are folded
by :func:`merge_series` into one deterministic ordering (sorted by
``(t, shard, wall)``), the same way telemetry snapshots merge.

Cadence is dual: ``interval`` is *virtual* seconds between samples
(deterministic spacing along the simulated timeline), ``wall_interval``
is *wall* seconds (steady feed for a live dashboard even when virtual
time crawls).  Either or both may be active; a sample taken for one
cadence resets both.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from time import perf_counter
from typing import Iterable, Mapping, Sequence, TextIO

__all__ = [
    "TimeSeriesSampler",
    "iter_series",
    "merge_series",
    "read_series",
    "series_summary",
    "write_series",
]

_INF = float("inf")

#: Default ring-buffer depth (per sampler).
DEFAULT_MAX_SAMPLES = 4096


class TimeSeriesSampler:
    """Periodic sampler of one engine's run, ring-buffered + streamed.

    Parameters
    ----------
    engine:
        The DES engine being observed (read-only: ``now``,
        ``events_processed``, ``queue_len``, ``events_cancelled``).
    metrics:
        Optional :class:`repro.simulation.metrics.MetricsCollector`;
        when present each sample carries running ``p_cb``/``p_hd``.
    stations:
        Optional station list (or owned subset); with ``capacity`` set,
        each sample carries bandwidth ``util`` over those cells.
    capacity:
        Per-cell capacity in BUs for the utilization read.
    interval:
        Virtual seconds between samples (0 disables this cadence).
    wall_interval:
        Wall seconds between samples (0 disables this cadence).
    max_samples:
        Ring-buffer depth; older samples are evicted (the JSONL stream,
        when configured, keeps everything).
    stream:
        Append-only JSONL destination — a path or an open text handle.
        Rows are written (and flushed) as samples are taken, so a
        concurrent reader sees the run live.
    shard_id:
        Spatial shard index stamped into every row (``None`` for
        unsharded runs).
    run_id / label:
        Provenance stamped into every row when non-empty.
    telemetry:
        Optional :class:`repro.obs.telemetry.Telemetry` registry; when
        enabled, each sample carries counter/histogram-count deltas and
        current gauge values for every live instrument.
    """

    def __init__(
        self,
        engine,
        *,
        metrics=None,
        stations: Sequence | None = None,
        capacity: float = 0.0,
        interval: float = 0.0,
        wall_interval: float = 0.0,
        max_samples: int = DEFAULT_MAX_SAMPLES,
        stream: str | Path | TextIO | None = None,
        shard_id: int | None = None,
        run_id: str = "",
        label: str = "",
        telemetry=None,
    ) -> None:
        if interval < 0 or wall_interval < 0:
            raise ValueError("sampling intervals cannot be negative")
        if interval == 0 and wall_interval == 0:
            raise ValueError(
                "need at least one cadence: interval (virtual seconds)"
                " or wall_interval (wall seconds)"
            )
        if max_samples < 1:
            raise ValueError("max_samples must be >= 1")
        self.engine = engine
        self.metrics = metrics
        self.stations = list(stations) if stations is not None else None
        self.capacity = float(capacity)
        self.interval = float(interval)
        self.wall_interval = float(wall_interval)
        self.shard_id = shard_id
        self.run_id = run_id
        self.label = label
        self.telemetry = (
            telemetry if telemetry is not None and telemetry.enabled else None
        )
        self.total_samples = 0
        self._samples: deque[dict] = deque(maxlen=max_samples)
        self._started = perf_counter()
        self._last_wall = self._started
        self._last_events = engine.events_processed
        self._next_t = self.interval if self.interval > 0 else _INF
        self._next_wall = (
            self._started + self.wall_interval
            if self.wall_interval > 0
            else _INF
        )
        self._last_counters: dict[str, float] = {}
        self._last_hist_counts: dict[str, int] = {}
        self._owns_stream = False
        self._stream: TextIO | None = None
        if stream is not None:
            if hasattr(stream, "write"):
                self._stream = stream  # type: ignore[assignment]
            else:
                path = Path(stream)
                path.parent.mkdir(parents=True, exist_ok=True)
                self._stream = path.open("a", encoding="utf-8")
                self._owns_stream = True

    # -- engine observer hook ------------------------------------------
    def maybe_sample(self) -> None:
        """Observer hook: sample if either cadence came due.

        Pure observation — reads the engine, never schedules on it.
        The virtual-cadence check is one float compare, so the hook is
        ~free between samples.
        """
        now = self.engine.now
        if now >= self._next_t:
            self._take(now, perf_counter())
            return
        if self._next_wall is not _INF and perf_counter() >= self._next_wall:
            self._take(now, perf_counter())

    def due(self, now: float | None = None) -> bool:
        """Whether either cadence has come due (reads only, no sample).

        Spatial shards use this to gate their epoch-boundary samples on
        the configured cadence instead of flooding one row per epoch.
        """
        if now is None:
            now = self.engine.now
        if now >= self._next_t:
            return True
        return self._next_wall is not _INF and perf_counter() >= self._next_wall

    def sample(self, **extra) -> dict:
        """Take one sample unconditionally, with free-form extra labels.

        Spatial shards call this at epoch boundaries with ``epoch`` and
        ``barrier_wait_frac`` labels; :meth:`final` uses it for the
        end-of-run row.
        """
        return self._take(self.engine.now, perf_counter(), extra)

    def final(self) -> None:
        """Take the closing sample and release the stream (if owned)."""
        self._take(self.engine.now, perf_counter(), {"final": True})
        self.close()

    def close(self) -> None:
        if self._stream is not None and self._owns_stream:
            self._stream.close()
        self._stream = None

    # -- internals -----------------------------------------------------
    def _take(self, now: float, wall: float, extra: Mapping | None = None):
        engine = self.engine
        events = engine.events_processed
        window = wall - self._last_wall
        rate = (events - self._last_events) / window if window > 0 else 0.0
        row: dict = {
            "t": round(now, 6),
            "wall": round(wall - self._started, 6),
            "shard": self.shard_id,
            "events": events,
            "events_per_s": round(rate, 1),
            "heap": engine.queue_len,
            "cancelled": engine.events_cancelled,
        }
        if self.run_id:
            row["run_id"] = self.run_id
        if self.label:
            row["label"] = self.label
        metrics = self.metrics
        if metrics is not None:
            requests = blocked = attempts = drops = 0
            for cell in metrics.cells:
                requests += cell.new_requests
                blocked += cell.blocked
                attempts += cell.handoff_attempts
                drops += cell.handoff_drops
            row["p_cb"] = round(blocked / requests, 6) if requests else 0.0
            row["p_hd"] = round(drops / attempts, 6) if attempts else 0.0
        stations = self.stations
        if stations and self.capacity > 0:
            used = 0.0
            for station in stations:
                used += station.cell.used_bandwidth
            row["util"] = round(used / (len(stations) * self.capacity), 6)
        telemetry = self.telemetry
        if telemetry is not None:
            self._fold_registry(row, telemetry)
        if extra:
            row.update(extra)
        # Advance both cadences past *now* so a burst of observer calls
        # at one timestamp yields one sample, not a pile.
        if self.interval > 0:
            next_t = self._next_t
            if next_t is _INF or next_t <= now:
                next_t = now + self.interval
            self._next_t = next_t
        if self.wall_interval > 0:
            self._next_wall = wall + self.wall_interval
        self._last_wall = wall
        self._last_events = events
        self.total_samples += 1
        self._samples.append(row)
        stream = self._stream
        if stream is not None:
            stream.write(json.dumps(row, sort_keys=True) + "\n")
            stream.flush()
        return row

    def _fold_registry(self, row: dict, telemetry) -> None:
        """Delta live counters/histograms and read gauges into ``row``."""
        counters: dict[str, float] = {}
        last = self._last_counters
        for key, counter in telemetry._counters.items():
            value = counter.value
            delta = value - last.get(key, 0.0)
            last[key] = value
            if delta:
                counters[key] = delta
        if counters:
            row["counters"] = counters
        gauges = {
            key: gauge.value for key, gauge in telemetry._gauges.items()
        }
        if gauges:
            row["gauges"] = gauges
        hist_counts: dict[str, int] = {}
        last_hist = self._last_hist_counts
        for key, histogram in telemetry._histograms.items():
            count = histogram.count
            delta = count - last_hist.get(key, 0)
            last_hist[key] = count
            if delta:
                hist_counts[key] = delta
        if hist_counts:
            row["hist_counts"] = hist_counts

    # -- export --------------------------------------------------------
    @property
    def dropped(self) -> int:
        """Samples evicted from the ring buffer (stream kept them)."""
        return self.total_samples - len(self._samples)

    def series(self) -> list[dict]:
        """The retained samples, oldest first (plain JSON-able rows)."""
        return list(self._samples)


# ----------------------------------------------------------------------
# series plumbing: merge / files / summaries
# ----------------------------------------------------------------------
def _sort_key(row: Mapping) -> tuple:
    shard = row.get("shard")
    return (
        row.get("t", 0.0),
        -1 if shard is None else shard,
        row.get("wall", 0.0),
        row.get("label", ""),
    )


def merge_series(
    series: Iterable[Sequence[Mapping] | None],
) -> list[dict] | None:
    """Merge per-shard/per-replication series into one sorted stream.

    ``None``/empty contributions are skipped; returns ``None`` when
    nothing contributed.  Rows sort by ``(t, shard, wall, label)`` —
    deterministic for fixed inputs regardless of which worker finished
    first, mirroring :func:`repro.obs.telemetry.merge_snapshots`.
    """
    merged: list[dict] = []
    contributed = False
    for rows in series:
        if not rows:
            continue
        contributed = True
        merged.extend(dict(row) for row in rows)
    if not contributed:
        return None
    merged.sort(key=_sort_key)
    return merged


def write_series(path: str | Path, rows: Iterable[Mapping]) -> Path:
    """Write rows as a JSONL time-series file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for row in rows:
            handle.write(json.dumps(row, sort_keys=True) + "\n")
    return path


def iter_series(handle: TextIO) -> Iterable[dict]:
    """Parse JSONL rows from an open handle, skipping torn lines.

    A live stream's last line may be mid-write (shards append
    concurrently); malformed lines are dropped rather than fatal, so a
    tailing dashboard never dies on a partial row.
    """
    for line in handle:
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(row, dict):
            yield row


def read_series(path: str | Path) -> list[dict]:
    """Read a JSONL time-series file (tolerant of torn last lines)."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return list(iter_series(handle))


def series_summary(rows: Sequence[Mapping] | None) -> dict | None:
    """Condense a series for `repro state inspect`-style reports."""
    if not rows:
        return None
    shards = sorted(
        {row.get("shard") for row in rows if row.get("shard") is not None}
    )
    times = [row["t"] for row in rows if "t" in row]
    rates = [
        row["events_per_s"] for row in rows if row.get("events_per_s")
    ]
    last = max(rows, key=_sort_key)
    return {
        "samples": len(rows),
        "shards": shards,
        "t_first": min(times) if times else 0.0,
        "t_last": max(times) if times else 0.0,
        "peak_events_per_s": max(rates) if rates else 0.0,
        "last_p_cb": last.get("p_cb"),
        "last_p_hd": last.get("p_hd"),
        "last_util": last.get("util"),
    }
