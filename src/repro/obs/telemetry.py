"""Run-wide telemetry: counters, gauges, histograms and section timers.

A :class:`Telemetry` registry holds the run-time observables of one
simulation run — how many events the DES engine fired, how often the
Eq. 5 memo hit, which estimation kernel each Eq. 4 batch dispatched to,
when the ``T_est`` controller stepped.  Everything is designed around
two constraints:

* **Observation must not perturb the simulation.**  Instruments only
  *count*; nothing reads the clock of, or schedules events on, the
  engine.  ``metrics_key()`` equality between telemetry-on and
  telemetry-off runs of the same scenario is enforced by tests.
* **Telemetry-off must cost ~nothing.**  The module-level singleton
  (guarded the same way :mod:`repro._kernel` guards kernel selection)
  hands out shared no-op instruments when disabled, so instrumented
  code paths pay one attribute access and an empty method call at most
  — and the hottest paths (the engine's event loop, the estimator's
  dispatch counters) use plain integer attributes that are harvested
  into the registry once, at the end of the run.

Selection order for the enabled/disabled default:

1. an explicit :func:`set_telemetry_enabled` call
   (``SimulationConfig.telemetry`` and the ``--telemetry`` CLI flag
   take this route per run);
2. the ``REPRO_TELEMETRY`` environment variable (``1``/``true``/``on``
   enables);
3. disabled.

Snapshots (:meth:`Telemetry.snapshot`) are plain JSON-able dicts; they
ride on :class:`repro.simulation.metrics.SimulationResult` across
process boundaries, and :func:`merge_snapshots` folds the per-worker
registries of a ``run_sweep(workers=N)`` back into one view.
"""

from __future__ import annotations

import os
import uuid
from bisect import bisect_left
from time import perf_counter
from typing import Iterable, Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "NullTelemetry",
    "SectionTimer",
    "Telemetry",
    "begin_run",
    "get_telemetry",
    "merge_snapshots",
    "new_run_id",
    "set_telemetry_enabled",
    "telemetry_enabled",
]

#: Default histogram bucket upper bounds (powers of two — sized for
#: batch-row and queue-length style distributions).
DEFAULT_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0)


def new_run_id() -> str:
    """A short, unique identifier for one simulation run."""
    return uuid.uuid4().hex[:12]


def _key(name: str, labels: Mapping[str, str]) -> str:
    """Canonical series key: ``name`` or ``name{k="v",...}`` (sorted)."""
    if not labels:
        return name
    rendered = ",".join(
        f'{key}="{labels[key]}"' for key in sorted(labels)
    )
    return f"{name}{{{rendered}}}"


# ----------------------------------------------------------------------
# live instruments
# ----------------------------------------------------------------------
class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (heap size, final ``T_est``, ...)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram (Prometheus ``le`` semantics).

    ``edges`` are inclusive upper bounds; observations above the last
    edge land in the implicit ``+Inf`` overflow bucket.  ``counts`` has
    ``len(edges) + 1`` entries, non-cumulative (the exporter renders the
    cumulative Prometheus form).
    """

    __slots__ = ("edges", "counts", "sum", "count")

    def __init__(self, edges: Sequence[float] = DEFAULT_BUCKETS) -> None:
        if not edges:
            raise ValueError("histogram needs at least one bucket edge")
        ordered = tuple(float(edge) for edge in edges)
        if list(ordered) != sorted(set(ordered)):
            raise ValueError("bucket edges must be strictly increasing")
        self.edges = ordered
        self.counts = [0] * (len(ordered) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.edges, value)] += 1
        self.sum += value
        self.count += 1


class SectionTimer:
    """Accumulated wall time of a named code section.

    Usable as a context manager; never touches virtual time, so timing
    a section cannot perturb the simulation.
    """

    __slots__ = ("seconds", "count", "_started")

    def __init__(self) -> None:
        self.seconds = 0.0
        self.count = 0
        self._started = 0.0

    def __enter__(self) -> "SectionTimer":
        self._started = perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.seconds += perf_counter() - self._started
        self.count += 1


# ----------------------------------------------------------------------
# no-op instruments (telemetry disabled)
# ----------------------------------------------------------------------
class _NullCounter:
    __slots__ = ()
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    value = 0.0

    def set(self, value: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    edges: tuple[float, ...] = ()
    sum = 0.0
    count = 0

    def observe(self, value: float) -> None:
        pass


class _NullTimer:
    __slots__ = ()
    seconds = 0.0
    count = 0

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()
_NULL_TIMER = _NullTimer()


# ----------------------------------------------------------------------
# registries
# ----------------------------------------------------------------------
class Telemetry:
    """The live registry of one run's instruments."""

    enabled = True

    def __init__(self, run_id: str | None = None) -> None:
        self.run_id = run_id or new_run_id()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._timers: dict[str, SectionTimer] = {}

    # -- instrument accessors (get-or-create, stable handles) ----------
    def counter(self, name: str, **labels: str) -> Counter:
        key = _key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = _key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> Histogram:
        key = _key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(buckets)
        return instrument

    def timer(self, name: str, **labels: str) -> SectionTimer:
        key = _key(name, labels)
        instrument = self._timers.get(key)
        if instrument is None:
            instrument = self._timers[key] = SectionTimer()
        return instrument

    # -- export --------------------------------------------------------
    def snapshot(self) -> dict:
        """The registry as plain JSON-able data (picklable, mergeable)."""
        return {
            "run_id": self.run_id,
            "counters": {
                key: counter.value
                for key, counter in sorted(self._counters.items())
            },
            "gauges": {
                key: gauge.value
                for key, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                key: {
                    "buckets": list(histogram.edges),
                    "counts": list(histogram.counts),
                    "sum": histogram.sum,
                    "count": histogram.count,
                }
                for key, histogram in sorted(self._histograms.items())
            },
            "timers": {
                key: {"seconds": timer.seconds, "count": timer.count}
                for key, timer in sorted(self._timers.items())
            },
        }

    def merge_snapshot(self, snapshot: Mapping) -> None:
        """Fold a snapshot (e.g. from a sweep worker) into this registry.

        Counters, histograms and timers add; gauges keep the maximum
        over the *contributed* values (heap sizes and final ``T_est``
        values are peak-style reads, for which a sum across workers
        would be meaningless).  The first contribution to a gauge seeds
        it outright — comparing against a freshly created gauge's 0.0
        default would silently drop all-negative series.
        """
        for key, value in snapshot.get("counters", {}).items():
            name, labels = _split_key(key)
            self.counter(name, **labels).inc(value)
        for key, value in snapshot.get("gauges", {}).items():
            name, labels = _split_key(key)
            seen = key in self._gauges
            gauge = self.gauge(name, **labels)
            if not seen or value > gauge.value:
                gauge.set(value)
        for key, data in snapshot.get("histograms", {}).items():
            name, labels = _split_key(key)
            histogram = self.histogram(
                name, buckets=data["buckets"], **labels
            )
            if list(histogram.edges) != list(data["buckets"]):
                raise ValueError(
                    f"histogram {key!r}: bucket edges differ across"
                    " snapshots"
                )
            counts = data["counts"]
            if len(counts) != len(histogram.counts):
                raise ValueError(
                    f"histogram {key!r}: bucket count differs across"
                    " snapshots"
                )
            for index, count in enumerate(counts):
                histogram.counts[index] += count
            histogram.sum += data["sum"]
            histogram.count += data["count"]
        for key, data in snapshot.get("timers", {}).items():
            name, labels = _split_key(key)
            timer = self.timer(name, **labels)
            timer.seconds += data["seconds"]
            timer.count += data["count"]


class NullTelemetry:
    """Disabled registry: every accessor returns a shared no-op."""

    enabled = False
    run_id = ""

    def counter(self, name: str, **labels: str) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str, **labels: str) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def timer(self, name: str, **labels: str) -> _NullTimer:
        return _NULL_TIMER

    def snapshot(self) -> None:
        return None

    def merge_snapshot(self, snapshot: Mapping) -> None:
        pass


_NULL_TELEMETRY = NullTelemetry()


def _split_key(key: str) -> tuple[str, dict[str, str]]:
    """Invert :func:`_key`: series key back to ``(name, labels)``."""
    brace = key.find("{")
    if brace < 0:
        return key, {}
    name = key[:brace]
    labels: dict[str, str] = {}
    for piece in key[brace + 1 : -1].split(","):
        if not piece:
            continue
        label, _, value = piece.partition("=")
        labels[label] = value.strip('"')
    return name, labels


def merge_snapshots(snapshots: Iterable[Mapping | None]) -> dict | None:
    """Merge per-run snapshots (sweep workers) into one combined dict.

    ``None`` entries (telemetry-off runs) are skipped; returns ``None``
    when nothing contributed.  The merged ``run_id`` concatenates the
    contributors' ids so the provenance stays visible.
    """
    merged: Telemetry | None = None
    run_ids: list[str] = []
    for snapshot in snapshots:
        if not snapshot:
            continue
        if merged is None:
            merged = Telemetry(run_id="")
        merged.merge_snapshot(snapshot)
        run_id = snapshot.get("run_id")
        if run_id:
            run_ids.append(run_id)
    if merged is None:
        return None
    merged.run_id = "+".join(run_ids)
    return merged.snapshot()


# ----------------------------------------------------------------------
# module-level selection (mirrors repro._kernel)
# ----------------------------------------------------------------------
_enabled: bool | None = None
_active: Telemetry | NullTelemetry | None = None


def telemetry_enabled() -> bool:
    """The default enabled/disabled state, resolving lazily from the env."""
    global _enabled
    if _enabled is None:
        _enabled = os.environ.get("REPRO_TELEMETRY", "").strip().lower() in (
            "1",
            "true",
            "on",
            "yes",
        )
    return _enabled


def set_telemetry_enabled(flag: bool) -> None:
    """Override the default for subsequent :func:`begin_run` calls."""
    global _enabled
    _enabled = bool(flag)


def begin_run(
    run_id: str | None = None, enabled: bool | None = None
) -> Telemetry | NullTelemetry:
    """Install (and return) a fresh registry for one simulation run.

    ``enabled=None`` falls back to the module default (explicit call or
    ``REPRO_TELEMETRY``).  The returned registry is also what
    :func:`get_telemetry` hands out until the next ``begin_run`` — so a
    simulator activates its registry *before* constructing the
    subsystems that grab instrument handles.
    """
    global _active
    if enabled is None:
        enabled = telemetry_enabled()
    _active = Telemetry(run_id) if enabled else _NULL_TELEMETRY
    return _active


def get_telemetry() -> Telemetry | NullTelemetry:
    """The active registry (a shared no-op when telemetry is disabled)."""
    global _active
    if _active is None:
        _active = (
            Telemetry() if telemetry_enabled() else _NULL_TELEMETRY
        )
    return _active
