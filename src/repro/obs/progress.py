"""Heartbeat progress reporting for long simulation runs.

A :class:`ProgressReporter` is driven by the DES engine's heartbeat
hook (:meth:`repro.des.engine.Engine.run` calls it every few thousand
fired events) and emits a line at most every ``interval`` wall seconds:
virtual time vs wall time, instantaneous events/s, and an ETA
extrapolated from the virtual-time rate.  Because it piggybacks on
events the simulation was going to fire anyway — it never schedules
anything — progress reporting cannot perturb the run, and it works
unchanged inside ``run_sweep(workers=N)`` pool workers (each worker's
reporter writes to its own inherited stderr).

Lines go through the ``repro.progress`` structured logger when that
logger is enabled for INFO (so ``--log-json`` yields machine-readable
heartbeats), and fall back to a plain stderr line otherwise.
"""

from __future__ import annotations

import logging
import sys
from time import perf_counter
from typing import TextIO

from repro.obs.logs import get_logger

__all__ = ["ProgressReporter"]


class ProgressReporter:
    """Emits throttled progress heartbeats for one engine run.

    Parameters
    ----------
    engine:
        The engine being driven (read-only: ``now``/``events_processed``).
    duration:
        The run's virtual horizon, for percentages and the ETA.
    interval:
        Minimum wall seconds between heartbeats.
    label:
        Scenario label included in every line.
    stream:
        Fallback destination when the ``repro.progress`` logger is not
        configured (default ``sys.stderr``).
    """

    def __init__(
        self,
        engine,
        duration: float,
        interval: float = 5.0,
        label: str = "",
        stream: TextIO | None = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("progress interval must be positive")
        self.engine = engine
        self.duration = float(duration)
        self.interval = float(interval)
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.logger = get_logger("progress")
        self.started = perf_counter()
        self._last_wall = self.started
        self._last_events = 0
        self.beats = 0

    # ------------------------------------------------------------------
    def beat(self) -> None:
        """Engine heartbeat hook: emit if the wall interval elapsed."""
        now_wall = perf_counter()
        if now_wall - self._last_wall < self.interval:
            return
        self._emit(now_wall, final=False)

    def final(self) -> None:
        """Emit the end-of-run summary line (always)."""
        self._emit(perf_counter(), final=True)

    # ------------------------------------------------------------------
    def _emit(self, now_wall: float, final: bool) -> None:
        events = self.engine.events_processed
        window = now_wall - self._last_wall
        rate = (events - self._last_events) / window if window > 0 else 0.0
        elapsed = now_wall - self.started
        virtual = self.engine.now
        fraction = (
            min(virtual / self.duration, 1.0) if self.duration > 0 else 1.0
        )
        if final or fraction >= 1.0:
            eta = 0.0
        elif virtual > 0:
            eta = elapsed * (self.duration - virtual) / virtual
        else:
            eta = float("inf")
        self._last_wall = now_wall
        self._last_events = events
        self.beats += 1
        if self.logger.isEnabledFor(logging.INFO):
            self.logger.info(
                "run complete" if final else "progress",
                extra={
                    "label": self.label,
                    "virtual_time": round(virtual, 3),
                    "fraction": round(fraction, 4),
                    "wall_seconds": round(elapsed, 3),
                    "events": events,
                    "events_per_sec": round(rate, 1),
                    "eta_seconds": round(eta, 1) if eta != float("inf") else -1,
                },
            )
            return
        prefix = f"[{self.label}] " if self.label else ""
        if final:
            line = (
                f"{prefix}done: t={virtual:.0f}s in {elapsed:.1f}s wall,"
                f" {events:,} events"
                f" ({events / elapsed:,.0f} events/s overall)"
            )
        else:
            eta_text = "?" if eta == float("inf") else f"{eta:.0f}s"
            line = (
                f"{prefix}t={virtual:.0f}/{self.duration:.0f}s"
                f" ({fraction:.0%})  {rate:,.0f} events/s"
                f"  wall={elapsed:.1f}s  eta={eta_text}"
            )
        print(line, file=self.stream, flush=True)
