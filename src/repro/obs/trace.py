"""Lightweight span tracing: Chrome trace-event JSON for Perfetto.

A :class:`TraceCollector` records named wall-clock spans — the 3-phase
epoch-barrier protocol of a spatial run, one coalesced FlushBatch tick,
a checkpoint publish — as Chrome trace-event ``"ph": "X"`` complete
events.  :func:`write_trace` wraps them in the ``{"traceEvents": [...]}``
envelope that https://ui.perfetto.dev (or ``chrome://tracing``) loads
directly, so a barrier stall or a straggler shard shows up as a gap in
the timeline instead of a number in a log.

The module mirrors :mod:`repro.obs.telemetry`'s selection pattern — a
per-run singleton installed by :func:`begin_trace` with a shared no-op
twin when tracing is off — and the same hard rule: spans only read the
wall clock, never the engine, so a traced run fires exactly the events
an untraced one would (``metrics_key()`` parity is enforced by tests).

Timestamps come from :func:`time.perf_counter`, which is
``CLOCK_MONOTONIC`` on Linux: forked shard workers share its epoch, so
per-shard span streams merged by :func:`merge_traces` line up on one
timeline without clock translation.  Each collector stamps its events
with a ``pid`` lane (the shard index in spatial runs) for Perfetto's
per-process tracks.

Selection order for the enabled/disabled default:

1. an explicit :func:`set_tracing_enabled` call
   (``SimulationConfig.trace`` and the ``--trace-out`` CLI flag take
   this route per run);
2. the ``REPRO_TRACE`` environment variable (``1``/``true``/``on``);
3. disabled.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from time import perf_counter
from typing import Iterable, Sequence

__all__ = [
    "NullTraceCollector",
    "TraceCollector",
    "begin_trace",
    "get_tracer",
    "merge_traces",
    "set_tracing_enabled",
    "tracing_enabled",
    "write_trace",
]

#: Per-collector event cap: a runaway instrumentation loop degrades to
#: a counted drop instead of unbounded memory growth.
DEFAULT_MAX_EVENTS = 200_000


class _Span:
    """One in-flight span (context manager)."""

    __slots__ = ("_collector", "_name", "_args", "_started")

    def __init__(self, collector: "TraceCollector", name: str, args: dict):
        self._collector = collector
        self._name = name
        self._args = args
        self._started = 0.0

    def __enter__(self) -> "_Span":
        self._started = perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._collector._complete(
            self._name, self._args, self._started, perf_counter()
        )


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class TraceCollector:
    """The live span recorder of one run (or one shard of a run)."""

    enabled = True

    def __init__(
        self,
        run_id: str = "",
        pid: int = 0,
        tid: int = 0,
        max_events: int = DEFAULT_MAX_EVENTS,
    ) -> None:
        if max_events < 1:
            raise ValueError("max_events must be >= 1")
        self.run_id = run_id
        self.pid = int(pid)
        self.tid = int(tid)
        self.max_events = int(max_events)
        self.dropped = 0
        self._events: list[dict] = []

    # -- recording -----------------------------------------------------
    def span(self, name: str, **args) -> _Span:
        """Open a named span; labels become trace-event ``args``."""
        return _Span(self, name, args)

    def instant(self, name: str, **args) -> None:
        """Record a zero-duration marker event."""
        if len(self._events) >= self.max_events:
            self.dropped += 1
            return
        event = {
            "name": name,
            "ph": "i",
            "s": "p",
            "cat": "repro",
            "ts": round(perf_counter() * 1e6, 1),
            "pid": self.pid,
            "tid": self.tid,
        }
        if args or self.run_id:
            if self.run_id:
                args.setdefault("run_id", self.run_id)
            event["args"] = args
        self._events.append(event)

    def _complete(
        self, name: str, args: dict, started: float, ended: float
    ) -> None:
        if len(self._events) >= self.max_events:
            self.dropped += 1
            return
        event = {
            "name": name,
            "ph": "X",
            "cat": "repro",
            "ts": round(started * 1e6, 1),
            "dur": round((ended - started) * 1e6, 1),
            "pid": self.pid,
            "tid": self.tid,
        }
        if args or self.run_id:
            if self.run_id:
                args.setdefault("run_id", self.run_id)
            event["args"] = args
        self._events.append(event)

    # -- export --------------------------------------------------------
    def events(self) -> list[dict]:
        """The recorded events as plain JSON-able dicts (picklable)."""
        return list(self._events)


class NullTraceCollector:
    """Disabled recorder: spans are shared no-ops, nothing is kept."""

    enabled = False
    run_id = ""
    pid = 0
    tid = 0
    dropped = 0

    def span(self, name: str, **args) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, name: str, **args) -> None:
        pass

    def events(self) -> None:
        return None


_NULL_TRACER = NullTraceCollector()


# ----------------------------------------------------------------------
# merging + file output
# ----------------------------------------------------------------------
def merge_traces(
    traces: Iterable[Sequence[dict] | None],
) -> list[dict] | None:
    """Merge per-shard/per-worker event lists into one sorted timeline.

    ``None``/empty entries (tracing-off contributors) are skipped;
    returns ``None`` when nothing contributed.  Events sort by
    ``(ts, pid, tid)`` — deterministic for fixed inputs, and exactly the
    order Perfetto renders.
    """
    merged: list[dict] = []
    contributed = False
    for events in traces:
        if not events:
            continue
        contributed = True
        merged.extend(events)
    if not contributed:
        return None
    merged.sort(
        key=lambda event: (
            event.get("ts", 0.0),
            event.get("pid", 0),
            event.get("tid", 0),
        )
    )
    return merged


def write_trace(
    path: str | Path,
    events: Sequence[dict],
    process_names: dict[int, str] | None = None,
) -> Path:
    """Write events as a Perfetto-loadable Chrome trace JSON file.

    ``process_names`` optionally maps ``pid`` lanes to display names
    (rendered via ``process_name`` metadata events).
    """
    path = Path(path)
    payload: list[dict] = []
    if process_names:
        for pid in sorted(process_names):
            payload.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "args": {"name": process_names[pid]},
                }
            )
    payload.extend(events)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(
            {"traceEvents": payload, "displayTimeUnit": "ms"},
            separators=(",", ":"),
        ),
        encoding="utf-8",
    )
    return path


def span_names(events: Iterable[dict] | None) -> set[str]:
    """Distinct complete-span names in an event list (CI assertions)."""
    if not events:
        return set()
    return {
        event["name"] for event in events if event.get("ph") == "X"
    }


# ----------------------------------------------------------------------
# module-level selection (mirrors repro.obs.telemetry)
# ----------------------------------------------------------------------
_enabled: bool | None = None
_active: TraceCollector | NullTraceCollector | None = None


def tracing_enabled() -> bool:
    """The default enabled/disabled state, resolving lazily from the env."""
    global _enabled
    if _enabled is None:
        _enabled = os.environ.get("REPRO_TRACE", "").strip().lower() in (
            "1",
            "true",
            "on",
            "yes",
        )
    return _enabled


def set_tracing_enabled(flag: bool) -> None:
    """Override the default for subsequent :func:`begin_trace` calls."""
    global _enabled
    _enabled = bool(flag)


def begin_trace(
    run_id: str = "",
    enabled: bool | None = None,
    pid: int = 0,
) -> TraceCollector | NullTraceCollector:
    """Install (and return) a fresh collector for one run (or shard).

    ``enabled=None`` falls back to the module default (explicit call or
    ``REPRO_TRACE``).  Like the telemetry registry, the simulator
    activates its collector *before* constructing the subsystems that
    grab tracer handles (the network does, for the flush-tick span).
    """
    global _active
    if enabled is None:
        enabled = tracing_enabled()
    _active = TraceCollector(run_id=run_id, pid=pid) if enabled else _NULL_TRACER
    return _active


def get_tracer() -> TraceCollector | NullTraceCollector:
    """The active collector (a shared no-op when tracing is disabled)."""
    global _active
    if _active is None:
        _active = TraceCollector() if tracing_enabled() else _NULL_TRACER
    return _active
