"""Ablation experiments for the design choices the paper discusses.

* Window-controller step growth (§4.2: additive/multiplicative step
  sizes "cause over-reactions").
* Estimator history depth ``N_quad`` (§3.1 design parameter).
* Star vs fully-connected BS interconnect (Figure 1).
* 2-D hexagonal deployment with a mixed population (§7 future work).
* CDMA soft capacity and soft hand-off (§7 future work).
* The wired-backbone extension (§2/§7).
* Head-to-head with the Naghshineh-Schwartz distributed CAC (§6, [10]).
"""

from __future__ import annotations

import math

from repro.cellular.signaling import SignalingAccountant
from repro.cellular.topology import HexTopology
from repro.core.window import StepPolicy
from repro.experiments.report import ExperimentOutput, Table
from repro.mobility.models import HexMobilityModel
from repro.simulation.scenarios import stationary
from repro.simulation.simulator import CellularSimulator


def run_ablation_window_steps(
    offered_load: float = 300.0,
    duration: float = 1000.0,
    seed: int = 42,
) -> ExperimentOutput:
    """Unit vs additive vs multiplicative ``T_est`` steps under AC3."""
    output = ExperimentOutput(
        "ablation-window-steps",
        "Step-size policies of the T_est controller (AC3, L=300)",
        parameters={"offered_load": offered_load, "duration": duration},
    )
    rows = []
    for policy in StepPolicy:
        config = stationary(
            "AC3",
            offered_load=offered_load,
            voice_ratio=1.0,
            high_mobility=True,
            duration=duration,
            seed=seed,
            step_policy=policy,
            tracked_cells=(4,),
        )
        result = CellularSimulator(config).run()
        trace = [p.value for p in result.t_est_traces[4]]
        mean = sum(trace) / len(trace) if trace else 0.0
        variance = (
            sum((value - mean) ** 2 for value in trace) / len(trace)
            if trace
            else 0.0
        )
        rows.append(
            [
                policy.value,
                result.blocking_probability,
                result.dropping_probability,
                mean,
                math.sqrt(variance),
                max(trace) if trace else 0.0,
            ]
        )
    output.tables["step policies"] = Table(
        headers=[
            "policy", "PCB", "PHD", "mean Test (cell<5>)",
            "std Test", "max Test",
        ],
        rows=rows,
    )
    output.notes.append(
        "the paper keeps unit steps: larger steps over-react, visible as"
        " a larger T_est standard deviation without a PHD benefit"
    )
    return output


def run_ablation_estimator_depth(
    depths: tuple[int, ...] = (5, 25, 100, 400),
    offered_load: float = 200.0,
    duration: float = 1000.0,
    seed: int = 43,
) -> ExperimentOutput:
    """Sensitivity to ``N_quad``, the per-pair history depth."""
    output = ExperimentOutput(
        "ablation-estimator-depth",
        "Sensitivity of AC3 to the N_quad history depth",
        parameters={"offered_load": offered_load, "duration": duration},
    )
    rows = []
    for depth in depths:
        config = stationary(
            "AC3",
            offered_load=offered_load,
            voice_ratio=0.5,
            high_mobility=True,
            duration=duration,
            seed=seed,
            n_quad=depth,
        )
        result = CellularSimulator(config).run()
        rows.append(
            [
                depth,
                result.blocking_probability,
                result.dropping_probability,
                result.average_reservation,
            ]
        )
    output.tables["history depth"] = Table(
        headers=["N_quad", "PCB", "PHD", "avg Br"],
        rows=rows,
    )
    return output


def run_ablation_signaling(
    offered_load: float = 200.0,
    duration: float = 600.0,
    seed: int = 44,
) -> ExperimentOutput:
    """Transport cost of AC1/AC2/AC3 under star vs full-mesh backhaul."""
    output = ExperimentOutput(
        "ablation-signaling",
        "Backhaul signaling cost per admission test (Figure 1 layouts)",
        parameters={"offered_load": offered_load, "duration": duration},
    )
    rows = []
    for scheme in ("AC1", "AC2", "AC3"):
        config = stationary(
            scheme,
            offered_load=offered_load,
            voice_ratio=1.0,
            high_mobility=True,
            duration=duration,
            seed=seed,
        )
        result = CellularSimulator(config).run()
        logical = result.average_messages
        per_layout = SignalingAccountant.compare(round(logical * 1000))
        rows.append(
            [
                scheme,
                logical,
                per_layout["full_mesh"].transport_hops / 1000,
                per_layout["star"].transport_hops / 1000,
            ]
        )
    output.tables["signaling"] = Table(
        headers=[
            "scheme",
            "logical msgs/test",
            "hops/test (full mesh)",
            "hops/test (star)",
        ],
        rows=rows,
    )
    return output


def run_ablation_hex2d(
    rows_cols: tuple[int, int] = (4, 5),
    offered_load: float = 150.0,
    duration: float = 1500.0,
    seed: int = 45,
) -> ExperimentOutput:
    """AC3 on a 2-D hex grid with mixed user classes (paper §7)."""
    grid_rows, grid_cols = rows_cols
    output = ExperimentOutput(
        "ablation-hex2d",
        f"AC3 on a {grid_rows}x{grid_cols} hex grid, mixed population",
        parameters={"offered_load": offered_load, "duration": duration},
    )
    topology = HexTopology(grid_rows, grid_cols, wrap=True)
    table_rows = []
    for scheme in ("static", "AC3"):
        config = stationary(
            scheme,
            offered_load=offered_load,
            voice_ratio=0.8,
            duration=duration,
            seed=seed,
        )
        simulator = CellularSimulator(
            config, mobility_model=HexMobilityModel(topology)
        )
        result = simulator.run()
        table_rows.append(
            [
                scheme,
                result.blocking_probability,
                result.dropping_probability,
                result.average_calculations,
            ]
        )
    output.tables["hex grid"] = Table(
        headers=["scheme", "PCB", "PHD", "Ncalc"],
        rows=table_rows,
    )
    output.notes.append(
        "six neighbours per cell: AC3's hybrid test matters more than in"
        " 1-D (AC2 would need 7 B_r calculations per test)"
    )
    return output


def run_ablation_cdma(
    offered_load: float = 250.0,
    duration: float = 1500.0,
    seed: int = 3,
) -> ExperimentOutput:
    """CDMA soft capacity / soft hand-off vs the hard-hand-off baseline."""
    from dataclasses import replace

    output = ExperimentOutput(
        "ablation-cdma",
        "CDMA soft capacity and soft hand-off (static scheme, L=250, "
        "Rvo=0.5)",
        parameters={"offered_load": offered_load, "duration": duration},
    )
    base = stationary(
        "static", offered_load=offered_load, voice_ratio=0.5,
        duration=duration, warmup=duration / 5.0, seed=seed,
    )
    variants = {
        "hard hand-off": base,
        "soft capacity +10%": replace(base, handoff_overload=1.10),
        "soft hand-off 5s": replace(base, soft_handoff_window=5.0),
        "both": replace(
            base, handoff_overload=1.10, soft_handoff_window=5.0
        ),
    }
    rows = []
    for name, config in variants.items():
        result = CellularSimulator(config).run()
        rows.append(
            [name, result.blocking_probability,
             result.dropping_probability]
        )
    output.tables["cdma"] = Table(headers=["variant", "PCB", "PHD"],
                                  rows=rows)
    return output


def run_ablation_wired(
    offered_load: float = 200.0,
    duration: float = 1200.0,
    seed: int = 6,
) -> ExperimentOutput:
    """The wired-backbone extension: radio-only vs best-effort vs
    predictive backhaul reservation on a router chain."""
    from repro.wired import (
        WiredBackboneExtension,
        WiredReservationManager,
        chain_backbone,
    )

    output = ExperimentOutput(
        "ablation-wired",
        "Wired backbone (router chain, tight trunks), AC3, L=200",
        parameters={"offered_load": offered_load, "duration": duration},
    )
    rows = []
    for name, predictive in (
        ("radio only", None),
        ("best-effort backbone", False),
        ("predictive backbone", True),
    ):
        config = stationary(
            "AC3", offered_load=offered_load, voice_ratio=0.8,
            duration=duration, warmup=duration / 4.0, seed=seed,
        )
        extensions = []
        manager = None
        if predictive is not None:
            manager = WiredReservationManager(
                chain_backbone(
                    10, access_capacity=250.0, trunk_capacity=450.0
                ),
                predictive=predictive,
            )
            extensions.append(WiredBackboneExtension(manager))
        result = CellularSimulator(config, extensions=extensions).run()
        rows.append(
            [
                name,
                result.blocking_probability,
                result.dropping_probability,
                manager.wired_blocks if manager else 0,
                manager.reroutes if manager else 0,
                manager.max_utilization() if manager else 0.0,
            ]
        )
    output.tables["wired"] = Table(
        headers=["variant", "PCB", "PHD", "wired blocks", "reroutes",
                 "max util"],
        rows=rows,
    )
    output.notes.append(
        "re-routes never fail here: in a tree backbone a hand-off only"
        " adds edge links; the aggregation trunks are shared with the"
        " old route"
    )
    return output


def run_comparison_ns(
    offered_load: float = 250.0,
    duration: float = 600.0,
    seed: int = 4,
) -> ExperimentOutput:
    """AC3 vs the Naghshineh-Schwartz distributed CAC (§6, ref [10])."""
    from repro.core.related import NaghshinehSchwartzPolicy

    output = ExperimentOutput(
        "comparison-ns",
        "AC3 vs Naghshineh-Schwartz distributed CAC, L=250, Rvo=1.0",
        parameters={"offered_load": offered_load, "duration": duration},
    )
    rows = []
    config = stationary(
        "AC3", offered_load=offered_load, voice_ratio=1.0,
        duration=duration, seed=seed,
    )
    result = CellularSimulator(config).run()
    rows.append(
        ["AC3 (adaptive)", result.blocking_probability,
         result.dropping_probability, result.average_calculations]
    )
    for window in (2.0, 5.0, 10.0, 20.0):
        config = stationary(
            "AC3", offered_load=offered_load, voice_ratio=1.0,
            duration=duration, seed=seed,
        )
        simulator = CellularSimulator(
            config,
            policy=NaghshinehSchwartzPolicy(window=window, dwell_time=36.0),
        )
        result = simulator.run()
        rows.append(
            [f"NS T={window:g}s", result.blocking_probability,
             result.dropping_probability, result.average_calculations]
        )
    output.tables["comparison"] = Table(
        headers=["scheme", "PCB", "PHD", "calcs/test"],
        rows=rows,
    )
    output.notes.append(
        "NS needs its window hand-tuned (its exponential-residence model"
        " mis-fits road traffic; §6 criticism); AC3 adapts its window"
        " from observed drops and has no such parameter"
    )
    return output
