"""Plain-text rendering of experiment outputs (tables and series).

The paper reports results as figures and tables; this module renders
the regenerated data as aligned text so each benchmark can print the
same rows/series the paper shows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


@dataclass
class Table:
    """A rectangular result table."""

    headers: list[str]
    rows: list[list[object]]

    def render(self) -> str:
        columns = len(self.headers)
        cells = [self.headers] + [
            [_format_cell(value) for value in row] for row in self.rows
        ]
        widths = [
            max(len(row[index]) for row in cells) for index in range(columns)
        ]
        lines = []
        header = "  ".join(
            cell.ljust(width) for cell, width in zip(cells[0], widths)
        )
        lines.append(header)
        lines.append("  ".join("-" * width for width in widths))
        for row in cells[1:]:
            lines.append(
                "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
            )
        return "\n".join(lines)


@dataclass
class Series:
    """One named (x, y) series of a figure."""

    name: str
    points: list[tuple[float, float]]

    def render(self, x_label: str = "x", y_label: str = "y") -> str:
        table = Table(
            headers=[x_label, y_label],
            rows=[[x, y] for x, y in self.points],
        )
        return f"[{self.name}]\n{table.render()}"


@dataclass
class ExperimentOutput:
    """Everything one regenerated figure/table produced."""

    experiment_id: str
    title: str
    parameters: dict = field(default_factory=dict)
    series: list[Series] = field(default_factory=list)
    tables: dict[str, Table] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def series_by_name(self, name: str) -> Series:
        for series in self.series:
            if series.name == name:
                return series
        raise KeyError(f"no series named {name!r} in {self.experiment_id}")

    def render(self) -> str:
        lines = [f"=== {self.experiment_id}: {self.title} ==="]
        if self.parameters:
            rendered = ", ".join(
                f"{key}={value}" for key, value in self.parameters.items()
            )
            lines.append(f"parameters: {rendered}")
        for series in self.series:
            lines.append("")
            lines.append(series.render())
        for name, table in self.tables.items():
            lines.append("")
            lines.append(f"[{name}]")
            lines.append(table.render())
        for note in self.notes:
            lines.append("")
            lines.append(f"note: {note}")
        return "\n".join(lines)


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        if value != 0 and (abs(value) < 0.01 or abs(value) >= 100000):
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def probability_series(
    name: str, points: Sequence[tuple[float, float]]
) -> Series:
    """Convenience constructor for a probability-vs-load series."""
    return Series(name, [(float(x), float(y)) for x, y in points])
