"""Time-trace experiments: Figures 10 and 11.

One heavily loaded AC3 run (L=300, R_vo=1.0, high mobility) with cells
<5> and <6> tracked; Figure 10 plots ``T_est`` and ``B_r`` over time,
Figure 11 the cumulative per-cell ``P_HD``.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentOutput, Series
from repro.simulation.metrics import SimulationResult
from repro.simulation.scenarios import stationary
from repro.simulation.simulator import CellularSimulator

#: The paper tracks cells <5> and <6> (1-based) = ids 4 and 5.
PAPER_TRACKED_CELLS = (4, 5)


def run_trace_experiment(
    offered_load: float = 300.0,
    duration: float = 2000.0,
    seed: int = 10,
    tracked_cells: tuple[int, ...] = PAPER_TRACKED_CELLS,
) -> SimulationResult:
    """The single run behind Figures 10 and 11 (and Table 2's AC3 half)."""
    config = stationary(
        "AC3",
        offered_load=offered_load,
        voice_ratio=1.0,
        high_mobility=True,
        duration=duration,
        seed=seed,
        tracked_cells=tracked_cells,
    )
    return CellularSimulator(config).run()


def _decimate(points: list[tuple[float, float]], limit: int = 60):
    if len(points) <= limit:
        return points
    step = max(len(points) // limit, 1)
    return points[::step]


def run_fig10_fig11(
    result: SimulationResult | None = None,
    duration: float = 2000.0,
    seed: int = 10,
) -> tuple[ExperimentOutput, ExperimentOutput]:
    """Figures 10 and 11 from the shared trace run."""
    if result is None:
        result = run_trace_experiment(duration=duration, seed=seed)
    fig10 = ExperimentOutput(
        "fig10",
        "T_est and B_r vs time (L=300, Rvo=1.0, high mobility, AC3)",
        parameters={"duration": result.duration},
    )
    fig11 = ExperimentOutput(
        "fig11",
        "Cumulative P_HD at cells <5> and <6> vs time",
        parameters={"duration": result.duration},
    )
    for cell_id, trace in sorted(result.t_est_traces.items()):
        fig10.series.append(
            Series(
                f"Test cell<{cell_id + 1}>",
                _decimate([(p.time, p.value) for p in trace]),
            )
        )
    for cell_id, trace in sorted(result.reservation_traces.items()):
        fig10.series.append(
            Series(
                f"Br cell<{cell_id + 1}>",
                _decimate([(p.time, p.value) for p in trace]),
            )
        )
    for cell_id, trace in sorted(result.phd_traces.items()):
        fig11.series.append(
            Series(
                f"PHD cell<{cell_id + 1}>",
                _decimate([(p.time, p.value) for p in trace]),
            )
        )
    final = {
        cell_id: trace[-1].value
        for cell_id, trace in result.phd_traces.items()
        if trace
    }
    fig11.notes.append(
        "final cumulative P_HD per tracked cell: "
        + ", ".join(
            f"cell<{cell + 1}>={value:.4f}" for cell, value in final.items()
        )
    )
    return fig10, fig11
