"""Per-cell end-state tables: Tables 2 and 3.

Table 2 contrasts AC1 and AC3 cell-by-cell on the heavily loaded ring
(L=300, R_vo=1.0, high mobility): AC1 starves alternating cells (high
``P_CB``, unbounded ``P_HD``) while AC3 balances the whole system.
Table 3 repeats the comparison with *one-directional* mobiles on an
open road (border cells disconnected).
"""

from __future__ import annotations

from repro.experiments.report import ExperimentOutput, Table
from repro.simulation.metrics import SimulationResult
from repro.simulation.scenarios import one_directional, stationary
from repro.simulation.simulator import CellularSimulator


def _status_table(result: SimulationResult) -> Table:
    rows = []
    for status in result.statuses:
        rows.append(
            [
                status.cell_id + 1,  # the paper numbers cells from 1
                status.blocking_probability,
                status.dropping_probability,
                status.t_est,
                status.reserved_target,
                status.used_bandwidth,
            ]
        )
    return Table(
        headers=["Cell", "PCB", "PHD", "Test", "Br", "Bu"],
        rows=rows,
    )


def run_table2(
    offered_load: float = 300.0,
    duration: float = 2000.0,
    seed: int = 2,
) -> ExperimentOutput:
    """Table 2: per-cell status at the end of AC1 and AC3 ring runs."""
    output = ExperimentOutput(
        "table2",
        "Per-cell status, L=300, Rvo=1.0, high mobility (ring)",
        parameters={"offered_load": offered_load, "duration": duration},
    )
    for scheme in ("AC1", "AC3"):
        config = stationary(
            scheme,
            offered_load=offered_load,
            voice_ratio=1.0,
            high_mobility=True,
            duration=duration,
            seed=seed,
        )
        result = CellularSimulator(config).run()
        output.tables[f"({scheme})"] = _status_table(result)
        per_cell_phd = [
            status.dropping_probability for status in result.statuses
        ]
        output.notes.append(
            f"{scheme}: max per-cell PHD = {max(per_cell_phd):.4f}, "
            f"cells over target = "
            f"{sum(1 for value in per_cell_phd if value > 0.01)}"
        )
    return output


def run_table3(
    offered_load: float = 300.0,
    duration: float = 2000.0,
    seed: int = 3,
) -> ExperimentOutput:
    """Table 3: one-directional mobiles, open road, AC1 vs AC3."""
    output = ExperimentOutput(
        "table3",
        "Per-cell status with one-directional mobiles (open road), "
        "L=300, Rvo=1.0, high mobility",
        parameters={"offered_load": offered_load, "duration": duration},
    )
    for scheme in ("AC1", "AC3"):
        config = one_directional(
            scheme,
            offered_load=offered_load,
            duration=duration,
            seed=seed,
        )
        result = CellularSimulator(config).run()
        output.tables[f"({scheme})"] = _status_table(result)
    first_cell = output.tables["(AC1)"].rows[0]
    output.notes.append(
        "cell <1> has no incoming hand-offs: "
        f"AC1 PHD there = {first_cell[2]:.4f} (expected 0)"
    )
    return output
