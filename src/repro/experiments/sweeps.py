"""Offered-load sweep experiments: Figures 7, 8, 9, 12 and 13.

Every function regenerates the series of one figure.  ``duration`` and
``loads`` default to CI-friendly values; the recorded EXPERIMENTS.md
runs use longer horizons (see ``scripts/run_experiments.py``).
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.report import ExperimentOutput, Series
from repro.simulation.metrics import SimulationResult
from repro.simulation.runner import DEFAULT_LOAD_AXIS, run_sweep
from repro.simulation.scenarios import stationary

#: Voice ratios examined by Figures 7 and 8.
PAPER_VOICE_RATIOS = (1.0, 0.8, 0.5)


def _sweep(
    scheme: str,
    loads: Sequence[float],
    voice_ratio: float,
    high_mobility: bool,
    duration: float,
    seed: int,
    warmup: float = 0.0,
    workers: int | None = None,
    **overrides: object,
) -> list[SimulationResult]:
    configs = [
        stationary(
            scheme,
            offered_load=load,
            voice_ratio=voice_ratio,
            high_mobility=high_mobility,
            duration=duration,
            warmup=warmup,
            seed=seed,
            **overrides,
        )
        for load in loads
    ]
    return run_sweep(configs, workers=workers)


def _mobility_label(high_mobility: bool) -> str:
    return "high" if high_mobility else "low"


def run_fig07_static(
    loads: Sequence[float] = DEFAULT_LOAD_AXIS,
    voice_ratios: Sequence[float] = PAPER_VOICE_RATIOS,
    high_mobility: bool = True,
    guard: float = 10.0,
    duration: float = 1000.0,
    seed: int = 7,
    warmup: float = 0.0,
    workers: int | None = None,
) -> ExperimentOutput:
    """Figure 7: P_CB and P_HD vs offered load, static reservation G=10."""
    output = ExperimentOutput(
        "fig7" if high_mobility else "fig7b",
        f"Static reservation (G={guard:g} BUs), "
        f"{_mobility_label(high_mobility)} user mobility",
        parameters={
            "guard": guard,
            "duration": duration,
            "mobility": _mobility_label(high_mobility),
        },
    )
    for voice_ratio in voice_ratios:
        results = _sweep(
            "static",
            loads,
            voice_ratio,
            high_mobility,
            duration,
            seed,
            warmup=warmup,
            workers=workers,
            static_guard=guard,
        )
        output.series.append(
            Series(
                f"PCB Rvo={voice_ratio:g}",
                [
                    (load, result.blocking_probability)
                    for load, result in zip(loads, results)
                ],
            )
        )
        output.series.append(
            Series(
                f"PHD Rvo={voice_ratio:g}",
                [
                    (load, result.dropping_probability)
                    for load, result in zip(loads, results)
                ],
            )
        )
    return output


def run_fig08_fig09_ac3(
    loads: Sequence[float] = DEFAULT_LOAD_AXIS,
    voice_ratios: Sequence[float] = PAPER_VOICE_RATIOS,
    high_mobility: bool = True,
    duration: float = 1000.0,
    seed: int = 8,
    warmup: float = 0.0,
    workers: int | None = None,
) -> tuple[ExperimentOutput, ExperimentOutput]:
    """Figures 8 and 9 from one AC3 sweep.

    Figure 8: P_CB and P_HD vs load.  Figure 9: average target
    reservation bandwidth ``B_r`` and average used bandwidth ``B_u``.
    """
    label = _mobility_label(high_mobility)
    fig8 = ExperimentOutput(
        "fig8" if high_mobility else "fig8b",
        f"AC3 probabilities, {label} user mobility",
        parameters={"duration": duration, "mobility": label},
    )
    fig9 = ExperimentOutput(
        "fig9" if high_mobility else "fig9b",
        f"AC3 average B_r and B_u, {label} user mobility",
        parameters={"duration": duration, "mobility": label},
    )
    for voice_ratio in voice_ratios:
        results = _sweep(
            "AC3", loads, voice_ratio, high_mobility, duration, seed,
            warmup=warmup, workers=workers,
        )
        pairs = list(zip(loads, results))
        fig8.series.append(
            Series(
                f"PCB Rvo={voice_ratio:g}",
                [(load, r.blocking_probability) for load, r in pairs],
            )
        )
        fig8.series.append(
            Series(
                f"PHD Rvo={voice_ratio:g}",
                [(load, r.dropping_probability) for load, r in pairs],
            )
        )
        fig9.series.append(
            Series(
                f"Br Rvo={voice_ratio:g}",
                [(load, r.average_reservation) for load, r in pairs],
            )
        )
        fig9.series.append(
            Series(
                f"Bu Rvo={voice_ratio:g}",
                [(load, r.average_used) for load, r in pairs],
            )
        )
    return fig8, fig9


def run_fig12_fig13_comparison(
    loads: Sequence[float] = DEFAULT_LOAD_AXIS,
    voice_ratio: float = 1.0,
    high_mobility: bool = True,
    duration: float = 1000.0,
    seed: int = 12,
    warmup: float = 0.0,
    workers: int | None = None,
) -> tuple[ExperimentOutput, ExperimentOutput]:
    """Figures 12 and 13 from one AC1/AC2/AC3 sweep.

    Figure 12: P_CB and P_HD per scheme.  Figure 13: average ``N_calc``
    per admission test per scheme.
    """
    label = _mobility_label(high_mobility)
    # Paper sub-figures: 12(a) R_vo=1.0 / 12(b) R_vo=0.5 (high mobility);
    # 13(a) high mobility / 13(b) low mobility.
    fig12 = ExperimentOutput(
        "fig12a" if voice_ratio == 1.0 else "fig12b",
        f"AC1/AC2/AC3 probabilities, Rvo={voice_ratio:g}, {label} mobility",
        parameters={
            "voice_ratio": voice_ratio,
            "duration": duration,
            "mobility": label,
        },
    )
    fig13 = ExperimentOutput(
        "fig13a" if high_mobility else "fig13b",
        f"Average number of B_r calculations per admission test, "
        f"{label} mobility",
        parameters={"voice_ratio": voice_ratio, "duration": duration},
    )
    for scheme in ("AC1", "AC2", "AC3"):
        results = _sweep(
            scheme, loads, voice_ratio, high_mobility, duration, seed,
            warmup=warmup, workers=workers,
        )
        pairs = list(zip(loads, results))
        fig12.series.append(
            Series(
                f"PCB {scheme}",
                [(load, r.blocking_probability) for load, r in pairs],
            )
        )
        fig12.series.append(
            Series(
                f"PHD {scheme}",
                [(load, r.dropping_probability) for load, r in pairs],
            )
        )
        fig13.series.append(
            Series(
                f"Ncalc {scheme}",
                [(load, r.average_calculations) for load, r in pairs],
            )
        )
    return fig12, fig13
