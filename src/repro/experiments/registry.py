"""Registry of experiment runners keyed by paper figure/table id."""

from __future__ import annotations

from time import perf_counter
from typing import Callable

from repro.obs.logs import get_logger

from repro.experiments.ablations import (
    run_ablation_cdma,
    run_ablation_estimator_depth,
    run_ablation_hex2d,
    run_ablation_signaling,
    run_ablation_window_steps,
    run_ablation_wired,
    run_comparison_ns,
)
from repro.experiments.celltables import run_table2, run_table3
from repro.experiments.report import ExperimentOutput
from repro.experiments.sweeps import (
    run_fig07_static,
    run_fig08_fig09_ac3,
    run_fig12_fig13_comparison,
)
from repro.experiments.timevarying import run_fig14
from repro.experiments.traces import run_fig10_fig11


def _fig7(**kwargs: object) -> list[ExperimentOutput]:
    return [
        run_fig07_static(high_mobility=True, **kwargs),
        run_fig07_static(high_mobility=False, **kwargs),
    ]


def _fig8_9(**kwargs: object) -> list[ExperimentOutput]:
    outputs = []
    for high_mobility in (True, False):
        fig8, fig9 = run_fig08_fig09_ac3(high_mobility=high_mobility, **kwargs)
        outputs.extend([fig8, fig9])
    return outputs


def _fig12_13(**kwargs: object) -> list[ExperimentOutput]:
    # 12(a) + 13(a) share the (R_vo=1.0, high-mobility) sweep; 12(b) adds
    # R_vo=0.5 at high mobility; 13(b) adds low mobility at R_vo=1.0.
    fig12a, fig13a = run_fig12_fig13_comparison(
        voice_ratio=1.0, high_mobility=True, **kwargs
    )
    fig12b, _extra = run_fig12_fig13_comparison(
        voice_ratio=0.5, high_mobility=True, **kwargs
    )
    _extra, fig13b = run_fig12_fig13_comparison(
        voice_ratio=1.0, high_mobility=False, **kwargs
    )
    return [fig12a, fig12b, fig13a, fig13b]


def _fig10_11(**kwargs: object) -> list[ExperimentOutput]:
    return list(run_fig10_fig11(**kwargs))


EXPERIMENTS: dict[str, Callable[..., list[ExperimentOutput]]] = {
    "fig7": _fig7,
    "fig8+9": _fig8_9,
    "fig10+11": _fig10_11,
    "fig12+13": _fig12_13,
    "fig14": lambda **kwargs: [run_fig14(**kwargs)],
    "table2": lambda **kwargs: [run_table2(**kwargs)],
    "table3": lambda **kwargs: [run_table3(**kwargs)],
    "ablation-window-steps": lambda **kwargs: [
        run_ablation_window_steps(**kwargs)
    ],
    "ablation-estimator-depth": lambda **kwargs: [
        run_ablation_estimator_depth(**kwargs)
    ],
    "ablation-signaling": lambda **kwargs: [run_ablation_signaling(**kwargs)],
    "ablation-hex2d": lambda **kwargs: [run_ablation_hex2d(**kwargs)],
    "ablation-cdma": lambda **kwargs: [run_ablation_cdma(**kwargs)],
    "ablation-wired": lambda **kwargs: [run_ablation_wired(**kwargs)],
    "comparison-ns": lambda **kwargs: [run_comparison_ns(**kwargs)],
}


def run_experiment(name: str, **kwargs: object) -> list[ExperimentOutput]:
    """Run one registered experiment by id."""
    try:
        runner = EXPERIMENTS[name]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ValueError(f"unknown experiment {name!r}; known: {known}")
    log = get_logger("experiments")
    log.info("experiment started", extra={"experiment": name})
    started = perf_counter()
    outputs = runner(**kwargs)
    log.info(
        "experiment finished",
        extra={
            "experiment": name,
            "outputs": len(outputs),
            "wall_seconds": round(perf_counter() - started, 3),
        },
    )
    return outputs
