"""Experiment runners (S9): one per paper table/figure, plus ablations."""

from repro.experiments.ablations import (
    run_ablation_cdma,
    run_ablation_estimator_depth,
    run_ablation_hex2d,
    run_ablation_signaling,
    run_ablation_window_steps,
    run_ablation_wired,
    run_comparison_ns,
)
from repro.experiments.celltables import run_table2, run_table3
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.report import ExperimentOutput, Series, Table
from repro.experiments.sweeps import (
    PAPER_VOICE_RATIOS,
    run_fig07_static,
    run_fig08_fig09_ac3,
    run_fig12_fig13_comparison,
)
from repro.experiments.timevarying import run_fig14
from repro.experiments.traces import run_fig10_fig11, run_trace_experiment

__all__ = [
    "EXPERIMENTS",
    "ExperimentOutput",
    "PAPER_VOICE_RATIOS",
    "Series",
    "Table",
    "run_ablation_cdma",
    "run_ablation_estimator_depth",
    "run_ablation_hex2d",
    "run_ablation_signaling",
    "run_ablation_window_steps",
    "run_ablation_wired",
    "run_comparison_ns",
    "run_experiment",
    "run_fig07_static",
    "run_fig08_fig09_ac3",
    "run_fig10_fig11",
    "run_fig12_fig13_comparison",
    "run_fig14",
    "run_table2",
    "run_table3",
    "run_trace_experiment",
]
