"""The time-varying two-day experiment: Figure 14.

Figure 14(a) shows the driving profiles (average speed and original
offered load ``L_o``, plus the scheme-dependent actual load ``L_a``
amplified by retries); Figure 14(b) the hourly ``P_CB`` and ``P_HD`` of
AC1/AC2/AC3 over the two days.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentOutput, Series
from repro.simulation.metrics import SimulationResult
from repro.simulation.scenarios import time_varying
from repro.simulation.simulator import CellularSimulator
from repro.traffic.classes import TrafficMix
from repro.traffic.profiles import paper_load_profile, paper_speed_profile


def run_fig14(
    schemes: tuple[str, ...] = ("AC1", "AC2", "AC3"),
    days: float = 2.0,
    time_compression: float = 24.0,
    seed: int = 14,
) -> ExperimentOutput:
    """Figure 14: hourly probabilities over two profile-driven days.

    ``time_compression`` trades fidelity for compute; 1.0 replays the
    paper's full 48-hour horizon (see
    :func:`repro.simulation.scenarios.time_varying`).
    """
    output = ExperimentOutput(
        "fig14",
        "Time-varying traffic/mobility over two days",
        parameters={
            "days": days,
            "time_compression": time_compression,
        },
    )
    day_seconds = 86_400.0 / time_compression
    hour_seconds = day_seconds / 24.0
    load_profile = paper_load_profile(day_seconds=day_seconds)
    speed_profile = paper_speed_profile(day_seconds=day_seconds)
    hours = [0.5 + index for index in range(int(days * 24))]
    output.series.append(
        Series(
            "profile speed",
            [
                (hour, speed_profile.value_at(hour * hour_seconds))
                for hour in hours
            ],
        )
    )
    output.series.append(
        Series(
            "profile Lo",
            [
                (hour, load_profile.value_at(hour * hour_seconds))
                for hour in hours
            ],
        )
    )
    mix = TrafficMix(1.0)
    results: dict[str, SimulationResult] = {}
    for scheme in schemes:
        config = time_varying(
            scheme,
            days=days,
            time_compression=time_compression,
            seed=seed,
        )
        result = CellularSimulator(config).run()
        results[scheme] = result
        output.series.append(
            Series(
                f"PCB {scheme}",
                [
                    (bucket.hour + 0.5, bucket.blocking_probability)
                    for bucket in result.hourly
                ],
            )
        )
        output.series.append(
            Series(
                f"PHD {scheme}",
                [
                    (bucket.hour + 0.5, bucket.dropping_probability)
                    for bucket in result.hourly
                ],
            )
        )
        # Actual offered load L_a: request rate (retries included)
        # converted back to BUs via Eq. 7.
        output.series.append(
            Series(
                f"La {scheme}",
                [
                    (
                        bucket.hour + 0.5,
                        bucket.new_requests
                        / hour_seconds
                        / result.num_cells
                        * mix.mean_bandwidth
                        * 120.0,
                    )
                    for bucket in result.hourly
                ],
            )
        )
    for scheme, result in results.items():
        peak_phd = max(
            (bucket.dropping_probability for bucket in result.hourly),
            default=0.0,
        )
        output.notes.append(
            f"{scheme}: overall PCB={result.blocking_probability:.4f}, "
            f"overall PHD={result.dropping_probability:.4f}, "
            f"max hourly PHD={peak_phd:.4f}"
        )
    return output
