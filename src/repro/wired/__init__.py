"""Wired backbone substrate: links, routing, per-route reservation.

The paper confines its evaluation to wireless link bandwidth but
describes the wired extension (§2, §7): reserve along each connection's
route, re-route on hand-off, and push the per-cell hand-off targets
onto the wired links.  This package implements that extension and the
Figure-1 deployment layouts.
"""

from repro.wired.extension import WiredBackboneExtension
from repro.wired.graph import (
    GATEWAY,
    BackboneGraph,
    bs_node,
    chain_backbone,
    mesh_backbone,
    star_backbone,
)
from repro.wired.link import WiredCapacityError, WiredLink
from repro.wired.reservation import WiredReservationManager

__all__ = [
    "GATEWAY",
    "BackboneGraph",
    "WiredBackboneExtension",
    "WiredCapacityError",
    "WiredLink",
    "WiredReservationManager",
    "bs_node",
    "chain_backbone",
    "mesh_backbone",
    "star_backbone",
]
