"""Simulator extension plugging the wired backbone into admission.

With this extension installed, every connection also occupies its
BS-to-gateway route; admission and hand-offs can fail on wired links,
and (when predictive) the wireless per-cell ``B_r`` targets are pushed
onto the wired links before each admission test — the paper's §2/§7
wired-reservation extension, end to end.
"""

from __future__ import annotations

from repro.wired.reservation import WiredReservationManager


class WiredBackboneExtension:
    """Adapts :class:`WiredReservationManager` to the simulator hooks."""

    def __init__(self, manager: WiredReservationManager) -> None:
        self.manager = manager
        self._network = None

    # ------------------------------------------------------------------
    # SimulatorExtension hooks
    # ------------------------------------------------------------------
    def install(self, network) -> None:
        self._network = network
        missing = [
            cell.cell_id
            for cell in network.cells
            if self.manager.route_for_cell(cell.cell_id) is None
        ]
        if missing:
            raise ValueError(
                f"backbone has no gateway route for cells {missing}"
            )

    def _refresh_targets(self) -> None:
        if self._network is None or not self.manager.predictive:
            return
        self.manager.refresh_link_targets(
            {
                cell.cell_id: cell.reserved_target
                for cell in self._network.cells
            }
        )

    def admit_new(self, connection, cell_id: int, now: float) -> bool:
        self._refresh_targets()
        return self.manager.admit_new(
            connection.connection_id, cell_id, connection.bandwidth
        )

    def admit_handoff(
        self, connection, old_cell: int, new_cell: int, now: float
    ) -> bool:
        return self.manager.reroute(
            connection.connection_id, new_cell, connection.bandwidth
        )

    def on_connection_end(self, connection, now: float) -> None:
        self.manager.release(connection.connection_id)
