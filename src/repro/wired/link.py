"""Wired backbone links with per-connection bandwidth accounting.

Same BU currency as the wireless side: a connection consuming ``b`` BUs
of radio bandwidth consumes ``b`` BUs on every wired link of its route
(paper §2 treats wired reservation as the same problem on the links a
connection's route traverses).
"""

from __future__ import annotations


class WiredCapacityError(ValueError):
    """Raised when wired accounting would go out of [0, capacity]."""


class WiredLink:
    """An undirected backbone link between two nodes.

    Parameters
    ----------
    node_a, node_b:
        Endpoint node names (order does not matter).
    capacity:
        Link capacity in BUs, shared by both directions (a duplex link
        provisioned symmetrically).
    """

    def __init__(self, node_a: str, node_b: str, capacity: float) -> None:
        if node_a == node_b:
            raise ValueError(f"self-loop at {node_a!r}")
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.node_a = node_a
        self.node_b = node_b
        self.capacity = float(capacity)
        self.used_bandwidth = 0.0
        #: Target reservation for expected hand-off re-routes (the wired
        #: analogue of the cell's ``B_r``); maintained by the
        #: reservation manager.
        self.reserved_target = 0.0
        self._holders: dict[int, float] = {}

    @property
    def key(self) -> tuple[str, str]:
        """Canonical (sorted) endpoint pair identifying the link."""
        return tuple(sorted((self.node_a, self.node_b)))  # type: ignore

    @property
    def free_bandwidth(self) -> float:
        return self.capacity - self.used_bandwidth

    def fits_new(self, bandwidth: float) -> bool:
        """New traffic must stay clear of the reserved re-route band."""
        return (
            self.used_bandwidth + bandwidth
            <= self.capacity - self.reserved_target + 1e-9
        )

    def fits_reroute(self, bandwidth: float) -> bool:
        """Hand-off re-routes may consume the reserved band."""
        return self.used_bandwidth + bandwidth <= self.capacity + 1e-9

    def holds(self, connection_id: int) -> bool:
        return connection_id in self._holders

    def allocate(self, connection_id: int, bandwidth: float) -> None:
        """Account ``bandwidth`` BUs for a connection on this link."""
        if connection_id in self._holders:
            raise WiredCapacityError(
                f"connection {connection_id} already on link {self.key}"
            )
        if self.used_bandwidth + bandwidth > self.capacity + 1e-9:
            raise WiredCapacityError(
                f"link {self.key}: allocating {bandwidth} exceeds capacity"
            )
        self._holders[connection_id] = bandwidth
        self.used_bandwidth += bandwidth

    def release(self, connection_id: int) -> float:
        """Release a connection's share; returns the freed bandwidth."""
        bandwidth = self._holders.pop(connection_id, None)
        if bandwidth is None:
            raise WiredCapacityError(
                f"connection {connection_id} not on link {self.key}"
            )
        self.used_bandwidth -= bandwidth
        if self.used_bandwidth < 0:
            self.used_bandwidth = 0.0
        return bandwidth

    def utilization(self) -> float:
        """Fraction of capacity in use."""
        return self.used_bandwidth / self.capacity

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WiredLink({self.key}, {self.used_bandwidth:.0f}/"
            f"{self.capacity:.0f})"
        )
