"""Wired-path setup, hand-off re-routing and predictive link reservation.

Paper §2: a connection runs over wireless *and* wired links, and the
reservation idea extends to the wired side "by considering the routing
and re-routing inside the wired network".  Concretely:

* at admission, the connection's bandwidth is reserved on every link of
  the route from its BS to the gateway (its wired correspondent);
* on hand-off, the route is re-computed from the new BS; links shared
  between old and new routes keep their allocation, the difference is
  released/acquired (make-before-break on the shared suffix);
* each wired link maintains a *target reservation* — the expected
  bandwidth of hand-off re-routes about to land on it — computed from
  the cells' wireless ``B_r`` values: cell ``j``'s expected hand-off
  traffic will use the links of ``route(bs_j -> gateway)`` that its
  current routes do not already hold.

New connections must fit under ``capacity - reserved_target`` on every
link of their route; re-routes may use the reserved band — the same
asymmetry as the wireless Eq. 1.
"""

from __future__ import annotations

from repro.wired.graph import GATEWAY, BackboneGraph, bs_node
from repro.wired.link import WiredLink


class WiredReservationManager:
    """Owns routes and link reservations for all active connections.

    Parameters
    ----------
    graph:
        The backbone.
    predictive:
        If true, refresh each link's ``reserved_target`` from the
        wireless per-cell ``B_r`` values before admission tests (the
        §2 extension); if false, wired admission is plain best-effort
        capacity checking.
    """

    def __init__(self, graph: BackboneGraph, predictive: bool = True) -> None:
        self.graph = graph
        self.predictive = predictive
        self._routes: dict[int, list[str]] = {}
        self.setups = 0
        self.reroutes = 0
        self.wired_blocks = 0
        self.wired_drops = 0

    # ------------------------------------------------------------------
    # routes
    # ------------------------------------------------------------------
    def route_for_cell(self, cell_id: int) -> list[str] | None:
        """Route a connection in ``cell_id`` would use (BS -> gateway)."""
        node = bs_node(cell_id)
        if not (self.graph.has_node(node) and self.graph.has_node(GATEWAY)):
            return None
        return self.graph.shortest_path(node, GATEWAY)

    def route_of(self, connection_id: int) -> list[str] | None:
        """The route currently held by a connection."""
        return self._routes.get(connection_id)

    # ------------------------------------------------------------------
    # admission / teardown
    # ------------------------------------------------------------------
    def admit_new(self, connection_id: int, cell_id: int,
                  bandwidth: float) -> bool:
        """Reserve the path for a new connection; False if any link full."""
        path = self.route_for_cell(cell_id)
        if path is None:
            self.wired_blocks += 1
            return False
        links = self.graph.path_links(path)
        if not all(link.fits_new(bandwidth) for link in links):
            self.wired_blocks += 1
            return False
        for link in links:
            link.allocate(connection_id, bandwidth)
        self._routes[connection_id] = path
        self.setups += 1
        return True

    def reroute(self, connection_id: int, new_cell: int,
                bandwidth: float) -> bool:
        """Re-route a hand-off; shared links keep their allocation.

        On failure the *old* route is left intact — the caller decides
        whether to drop the connection (releasing everything) or keep
        trying (e.g. during a soft hand-off window).
        """
        old_path = self._routes.get(connection_id)
        if old_path is None:
            raise KeyError(f"connection {connection_id} has no route")
        new_path = self.route_for_cell(new_cell)
        if new_path is None:
            self.wired_drops += 1
            return False
        old_links = {
            link.key: link for link in self.graph.path_links(old_path)
        }
        new_links = self.graph.path_links(new_path)
        additions = [
            link for link in new_links if link.key not in old_links
        ]
        if not all(link.fits_reroute(bandwidth) for link in additions):
            self.wired_drops += 1
            return False
        for link in additions:
            link.allocate(connection_id, bandwidth)
        new_keys = {link.key for link in new_links}
        for key, link in old_links.items():
            if key not in new_keys:
                link.release(connection_id)
        self._routes[connection_id] = new_path
        self.reroutes += 1
        return True

    def release(self, connection_id: int) -> None:
        """Tear down a connection's route (completion or drop)."""
        if connection_id in self._routes:
            self._teardown(connection_id)

    def _teardown(self, connection_id: int) -> None:
        path = self._routes.pop(connection_id)
        for link in self.graph.path_links(path):
            if link.holds(connection_id):
                link.release(connection_id)

    # ------------------------------------------------------------------
    # predictive link reservation (the wired Eq. 6)
    # ------------------------------------------------------------------
    def refresh_link_targets(self, cell_reservations: dict[int, float]) -> None:
        """Install per-link reservation targets from wireless ``B_r``.

        ``cell_reservations`` maps cell id to that cell's current
        wireless target ``B_r`` — the expected hand-off bandwidth about
        to *arrive* there.  That traffic will need the links of the
        cell's gateway route, so each such link accumulates the cell's
        ``B_r`` into its own target.
        """
        if not self.predictive:
            return
        for link in self.graph.links():
            link.reserved_target = 0.0
        for cell_id, reservation in cell_reservations.items():
            if reservation <= 0.0:
                continue
            path = self.route_for_cell(cell_id)
            if path is None:
                continue
            for link in self.graph.path_links(path):
                link.reserved_target += reservation

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def utilization_report(self) -> dict[tuple[str, str], float]:
        """Utilization per link (fraction of capacity in use)."""
        return {
            link.key: link.utilization() for link in self.graph.links()
        }

    def max_utilization(self) -> float:
        utilizations = [link.utilization() for link in self.graph.links()]
        return max(utilizations, default=0.0)

    def active_routes(self) -> int:
        return len(self._routes)
