"""The backbone graph: BSs, MSCs/routers and a gateway, plus Dijkstra.

Builders mirror Figure 1's deployments:

* :func:`star_backbone` — every BS hangs off one MSC, the MSC uplinks
  to the wide-area gateway;
* :func:`chain_backbone` — BSs attach to routers strung along the road
  (a realistic highway deployment), gateway at one end;
* :func:`mesh_backbone` — BSs fully interconnected plus a gateway (the
  Figure 1(b) option).
"""

from __future__ import annotations

import heapq
from typing import Iterable, Mapping

from repro.wired.link import WiredLink

#: Node-name helpers: base stations are keyed by their cell id.
def bs_node(cell_id: int) -> str:
    """Backbone node name of a cell's base station."""
    return f"bs{cell_id}"


GATEWAY = "gateway"


class BackboneGraph:
    """An undirected capacitated graph with shortest-path routing."""

    def __init__(self) -> None:
        self._links: dict[tuple[str, str], WiredLink] = {}
        self._adjacency: dict[str, list[str]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_link(self, node_a: str, node_b: str, capacity: float) -> WiredLink:
        link = WiredLink(node_a, node_b, capacity)
        if link.key in self._links:
            raise ValueError(f"duplicate link {link.key}")
        self._links[link.key] = link
        self._adjacency.setdefault(node_a, []).append(node_b)
        self._adjacency.setdefault(node_b, []).append(node_a)
        return link

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> tuple[str, ...]:
        return tuple(self._adjacency)

    def links(self) -> Iterable[WiredLink]:
        return self._links.values()

    def link(self, node_a: str, node_b: str) -> WiredLink:
        key = tuple(sorted((node_a, node_b)))
        try:
            return self._links[key]  # type: ignore[index]
        except KeyError:
            raise KeyError(f"no link between {node_a!r} and {node_b!r}")

    def neighbors(self, node: str) -> tuple[str, ...]:
        return tuple(self._adjacency.get(node, ()))

    def has_node(self, node: str) -> bool:
        return node in self._adjacency

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def shortest_path(
        self,
        source: str,
        target: str,
        weight: Mapping[tuple[str, str], float] | None = None,
    ) -> list[str] | None:
        """Dijkstra by hop count (or per-link weights); ``None`` if cut."""
        if source == target:
            return [source]
        if not (self.has_node(source) and self.has_node(target)):
            raise KeyError(f"unknown node in ({source!r}, {target!r})")
        distances: dict[str, float] = {source: 0.0}
        previous: dict[str, str] = {}
        queue: list[tuple[float, str]] = [(0.0, source)]
        visited: set[str] = set()
        while queue:
            distance, node = heapq.heappop(queue)
            if node in visited:
                continue
            if node == target:
                break
            visited.add(node)
            for neighbor in self._adjacency[node]:
                if neighbor in visited:
                    continue
                key = tuple(sorted((node, neighbor)))
                step = 1.0 if weight is None else weight.get(key, 1.0)
                candidate = distance + step
                if candidate < distances.get(neighbor, float("inf")):
                    distances[neighbor] = candidate
                    previous[neighbor] = node
                    heapq.heappush(queue, (candidate, neighbor))
        if target not in previous:
            return None
        path = [target]
        while path[-1] != source:
            path.append(previous[path[-1]])
        path.reverse()
        return path

    def path_links(self, path: list[str]) -> list[WiredLink]:
        """Links traversed by a node path."""
        return [
            self.link(node_a, node_b)
            for node_a, node_b in zip(path, path[1:])
        ]


# ----------------------------------------------------------------------
# deployment builders (Figure 1 variants)
# ----------------------------------------------------------------------
def star_backbone(
    num_cells: int,
    access_capacity: float = 400.0,
    uplink_capacity: float = 2000.0,
) -> BackboneGraph:
    """Figure 1(a): all BSs on one MSC, one fat uplink to the gateway."""
    graph = BackboneGraph()
    for cell_id in range(num_cells):
        graph.add_link(bs_node(cell_id), "msc", access_capacity)
    graph.add_link("msc", GATEWAY, uplink_capacity)
    return graph


def chain_backbone(
    num_cells: int,
    cells_per_router: int = 2,
    access_capacity: float = 400.0,
    trunk_capacity: float = 800.0,
) -> BackboneGraph:
    """Routers strung along the road; the gateway sits past router 0.

    Traffic from far cells crosses many trunk hops — the deployment
    where wired bandwidth genuinely constrains admission.
    """
    if cells_per_router < 1:
        raise ValueError("cells_per_router must be >= 1")
    graph = BackboneGraph()
    num_routers = (num_cells + cells_per_router - 1) // cells_per_router
    for cell_id in range(num_cells):
        router = f"router{cell_id // cells_per_router}"
        graph.add_link(bs_node(cell_id), router, access_capacity)
    for index in range(num_routers - 1):
        graph.add_link(
            f"router{index}", f"router{index + 1}", trunk_capacity
        )
    graph.add_link("router0", GATEWAY, trunk_capacity)
    return graph


def mesh_backbone(
    num_cells: int,
    link_capacity: float = 400.0,
    uplink_capacity: float = 2000.0,
) -> BackboneGraph:
    """Figure 1(b): fully-connected BSs plus a gateway off BS 0."""
    graph = BackboneGraph()
    for first in range(num_cells):
        for second in range(first + 1, num_cells):
            graph.add_link(bs_node(first), bs_node(second), link_capacity)
    graph.add_link(bs_node(0), GATEWAY, uplink_capacity)
    return graph
