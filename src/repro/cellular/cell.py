"""A cell: the radio coverage area of one base station.

The cell tracks its fixed link capacity (FCA, in bandwidth units — one
BU is the bandwidth of a voice connection, paper §2) and the set of
admitted connections.  Two admission paths exist, mirroring the paper:

* **new connections** must fit under ``capacity - reserved_target``
  (Eq. 1) — the reserved band is off-limits to them;
* **hand-offs** may use the whole capacity, including the reserved band.

The cell itself only does bandwidth accounting; *which* reservation
target applies is decided by the admission policy.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.traffic.connection import Connection


class CapacityError(ValueError):
    """Raised when bandwidth accounting would go out of [0, C]."""


class Cell:
    """One cell with fixed link capacity.

    Parameters
    ----------
    cell_id:
        Index of the cell in its network (0-based).
    capacity:
        Wireless link capacity ``C(i)`` in BUs (paper assumption A6 uses
        100 BUs for every cell).
    """

    def __init__(
        self,
        cell_id: int,
        capacity: float,
        handoff_overload: float = 1.0,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if handoff_overload < 1.0:
            raise ValueError(
                f"hand-off overload factor must be >= 1, got"
                f" {handoff_overload}"
            )
        self.cell_id = cell_id
        self.capacity = float(capacity)
        #: CDMA-style *soft capacity* (paper §7): hand-offs may push the
        #: cell up to ``capacity * handoff_overload`` by accepting a
        #: higher interference level; new connections never may.
        self.handoff_capacity = float(capacity) * float(handoff_overload)
        self.used_bandwidth = 0.0
        #: Target reservation bandwidth ``B_r`` most recently computed for
        #: this cell (``B_r^{prev}`` in the AC3 description, §4.3).  For the
        #: static scheme this is the constant guard band ``G``.
        self.reserved_target = 0.0
        #: Monotone counter bumped on every attach/detach/adjustment;
        #: lets the base station's reservation cache detect that its
        #: memoized Eq. 5 contributions may be stale.
        self.version = 0
        self._connections: dict[int, "Connection"] = {}
        #: Incremental ``prev -> {connection_id: (entry_time, basis)}``
        #: buckets over the attached connections — the grouped input of
        #: the batched Eq. 5 path (both fields are immutable while a
        #: connection stays attached).
        self._by_prev: dict[
            int | None, dict[int, tuple[float, float]]
        ] = {}

    # ------------------------------------------------------------------
    # capacity queries
    # ------------------------------------------------------------------
    @property
    def free_bandwidth(self) -> float:
        """Bandwidth not used by any existing connection."""
        return self.capacity - self.used_bandwidth

    @property
    def connection_count(self) -> int:
        """Number of connections currently carried by this cell."""
        return len(self._connections)

    def connections(self) -> Iterator["Connection"]:
        """Iterate over the connections currently in this cell."""
        return iter(self._connections.values())

    def reservation_groups(
        self,
    ) -> dict[int | None, dict[int, tuple[float, float]]]:
        """Attached connections bucketed by ``prev`` cell.

        Maps ``prev -> {connection_id: (cell_entry_time, basis)}`` where
        ``basis`` is the connection's reservation basis (its minimum
        rate).  Maintained incrementally on attach/detach, so Eq. 5 can
        fetch each F_HOE snapshot once per bucket and batch its queries.
        The returned mapping is live — treat it as read-only.
        """
        return self._by_prev

    def fits_new_connection(self, bandwidth: float) -> bool:
        """Admission test of Eq. (1): new traffic must respect ``B_r``."""
        return (
            self.used_bandwidth + bandwidth
            <= self.capacity - self.reserved_target + 1e-9
        )

    def fits_handoff(self, bandwidth: float) -> bool:
        """Hand-offs may consume reserved bandwidth and (in soft-capacity
        deployments) the interference margin above the nominal capacity."""
        return self.used_bandwidth + bandwidth <= self.handoff_capacity + 1e-9

    def can_reserve_target(self) -> bool:
        """Whether the current ``B_r`` target is actually reservable.

        ``False`` means the cell is *suspect* in AC3 terms: its existing
        connections already overlap the reserved band
        (``sum b_j + B_r^{prev} > C``).
        """
        return (
            self.used_bandwidth + self.reserved_target <= self.capacity + 1e-9
        )

    # ------------------------------------------------------------------
    # bandwidth accounting
    # ------------------------------------------------------------------
    def attach(self, connection: "Connection") -> None:
        """Account a connection into this cell (admission already decided)."""
        if connection.connection_id in self._connections:
            raise CapacityError(
                f"connection {connection.connection_id} already in cell"
                f" {self.cell_id}"
            )
        if (
            self.used_bandwidth + connection.bandwidth
            > self.handoff_capacity + 1e-9
        ):
            raise CapacityError(
                f"cell {self.cell_id}: attaching {connection.bandwidth} BU"
                f" exceeds capacity ({self.used_bandwidth}/"
                f"{self.handoff_capacity})"
            )
        self._connections[connection.connection_id] = connection
        self.used_bandwidth += connection.bandwidth
        # Duck-typed minimal connections (bandwidth only) still account;
        # they just bucket under prev=None at entry time 0.
        group = self._by_prev.setdefault(
            getattr(connection, "prev_cell", None), {}
        )
        group[connection.connection_id] = (
            getattr(connection, "cell_entry_time", 0.0),
            getattr(connection, "reservation_basis", connection.bandwidth),
        )
        self.version += 1

    def detach(self, connection: "Connection") -> None:
        """Release a connection's bandwidth (hand-off out or completion)."""
        stored = self._connections.pop(connection.connection_id, None)
        if stored is None:
            raise CapacityError(
                f"connection {connection.connection_id} not in cell"
                f" {self.cell_id}"
            )
        self._discard_from_groups(connection)
        self.version += 1
        self.used_bandwidth -= connection.bandwidth
        if self.used_bandwidth < -1e-9:
            raise CapacityError(
                f"cell {self.cell_id}: used bandwidth went negative"
            )
        if self.used_bandwidth < 0:
            self.used_bandwidth = 0.0

    def adjust_bandwidth(
        self, connection: "Connection", new_bandwidth: float
    ) -> None:
        """Re-size an attached connection's allocation (QoS adaptation).

        Keeps the cell's accounting consistent while a degraded
        connection is squeezed further or upgraded back toward its full
        rate.  The new allocation must respect both the class's floor
        and the cell capacity.
        """
        if connection.connection_id not in self._connections:
            raise CapacityError(
                f"connection {connection.connection_id} not in cell"
                f" {self.cell_id}"
            )
        if new_bandwidth < connection.min_bandwidth - 1e-9:
            raise ValueError(
                f"allocation {new_bandwidth} below the class floor"
                f" {connection.min_bandwidth}"
            )
        if new_bandwidth > connection.full_bandwidth + 1e-9:
            raise ValueError(
                f"allocation {new_bandwidth} above the class rate"
                f" {connection.full_bandwidth}"
            )
        delta = new_bandwidth - connection.bandwidth
        if self.used_bandwidth + delta > self.capacity + 1e-9:
            raise CapacityError(
                f"cell {self.cell_id}: adjustment exceeds capacity"
            )
        self.used_bandwidth += delta
        connection.allocated_bandwidth = new_bandwidth
        # The reservation basis (minimum rate) is unaffected, but bump
        # the version so memoized Eq. 5 results are conservatively
        # recomputed after a QoS adaptation.
        self.version += 1

    def _discard_from_groups(self, connection: "Connection") -> None:
        prev = getattr(connection, "prev_cell", None)
        group = self._by_prev.get(prev)
        if (
            group is not None
            and group.pop(connection.connection_id, None) is not None
        ):
            if not group:
                del self._by_prev[prev]
            return
        # ``prev_cell`` mutated while attached (only possible with
        # hand-rolled test doubles): fall back to scanning the buckets.
        for prev, members in list(self._by_prev.items()):
            if members.pop(connection.connection_id, None) is not None:
                if not members:
                    del self._by_prev[prev]
                return

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cell({self.cell_id}, used={self.used_bandwidth:.1f}/"
            f"{self.capacity:.0f}, B_r={self.reserved_target:.2f})"
        )
