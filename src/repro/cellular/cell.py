"""A cell: the radio coverage area of one base station.

The cell tracks its fixed link capacity (FCA, in bandwidth units — one
BU is the bandwidth of a voice connection, paper §2) and the set of
admitted connections.  Two admission paths exist, mirroring the paper:

* **new connections** must fit under ``capacity - reserved_target``
  (Eq. 1) — the reserved band is off-limits to them;
* **hand-offs** may use the whole capacity, including the reserved band.

The cell itself only does bandwidth accounting; *which* reservation
target applies is decided by the admission policy.  As a side product
of that accounting it maintains columnar ``prev``-buckets of its
connections (:class:`ReservationGroup`), the batch input of the Eq. 5
kernels.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.traffic.connection import Connection


class CapacityError(ValueError):
    """Raised when bandwidth accounting would go out of [0, C]."""


class ReservationGroup:
    """Columnar view of one ``prev``-bucket of attached connections.

    Three parallel lists sorted ascending by entry time: connection ids,
    cell entry times, and reservation bases (both immutable while a
    connection stays attached).  Sorted order is what lets the Eq. 5
    kernels run a single vectorized ``searchsorted`` pass (numpy) or a
    resumable binary-search walk (python) over the whole bucket without
    re-sorting per reservation update.  Simulated attaches happen at
    ``now`` so the common insert is an append; out-of-order entry times
    (synthetic populations) fall back to an insort.
    """

    __slots__ = ("keys", "entries", "bases", "seqs", "_arrays", "_seq_array",
                 "rebuilds")

    def __init__(self) -> None:
        self.keys: list[int] = []
        self.entries: list[float] = []
        self.bases: list[float] = []
        #: Cell-wide attach sequence numbers (see :attr:`Cell.attach`):
        #: ``argsort`` over the concatenated ``seqs`` of all buckets
        #: reproduces the cell's connection-iteration order, which is
        #: what lets the grouped flush build its summation permutation
        #: with one array op instead of a per-connection Python walk.
        self.seqs: list[int] = []
        #: Cached ``(entries, bases)`` ndarray pair (see :meth:`arrays`);
        #: invalidated by every mutation.
        self._arrays = None
        #: Cached ``seqs`` ndarray, invalidated alongside :attr:`_arrays`.
        self._seq_array = None
        #: Times the ndarray cache was rebuilt (a telemetry observable:
        #: rebuilds / queries is the group-level cache miss rate).
        self.rebuilds = 0

    def __len__(self) -> int:
        return len(self.keys)

    def add(
        self, key: int, entry_time: float, basis: float, seq: int = 0
    ) -> None:
        self._arrays = None
        self._seq_array = None
        entries = self.entries
        if not entries or entry_time >= entries[-1]:
            self.keys.append(key)
            entries.append(entry_time)
            self.bases.append(basis)
            self.seqs.append(seq)
            return
        index = bisect_right(entries, entry_time)
        self.keys.insert(index, key)
        entries.insert(index, entry_time)
        self.bases.insert(index, basis)
        self.seqs.insert(index, seq)

    def remove(self, key: int, entry_time: float) -> bool:
        """Drop one connection located via its (exact) entry time."""
        entries = self.entries
        index = bisect_left(entries, entry_time)
        count = len(entries)
        keys = self.keys
        while index < count and entries[index] == entry_time:
            if keys[index] == key:
                self._arrays = None
                self._seq_array = None
                del keys[index]
                del entries[index]
                del self.bases[index]
                del self.seqs[index]
                return True
            index += 1
        return False

    def discard(self, key: int) -> bool:
        """Linear-scan removal for when the entry time is unreliable."""
        try:
            index = self.keys.index(key)
        except ValueError:
            return False
        self._arrays = None
        self._seq_array = None
        del self.keys[index]
        del self.entries[index]
        del self.bases[index]
        del self.seqs[index]
        return True

    def arrays(self, np):
        """Cached ``(entries, bases)`` float64 ndarrays of the columns.

        Reservation updates re-query the same (unchanged) groups for
        every neighbour target; caching the conversion keeps the numpy
        Eq. 5 path from re-materialising arrays each time.
        """
        cached = self._arrays
        if cached is None:
            self.rebuilds += 1
            cached = self._arrays = (
                np.asarray(self.entries, dtype=np.float64),
                np.asarray(self.bases, dtype=np.float64),
            )
        return cached

    def seq_array(self, np):
        """Cached int64 ndarray of the attach sequence numbers."""
        cached = self._seq_array
        if cached is None:
            cached = self._seq_array = np.asarray(self.seqs, dtype=np.int64)
        return cached

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ReservationGroup(size={len(self.keys)})"


class Cell:
    """One cell with fixed link capacity.

    Parameters
    ----------
    cell_id:
        Index of the cell in its network (0-based).
    capacity:
        Wireless link capacity ``C(i)`` in BUs (paper assumption A6 uses
        100 BUs for every cell).
    """

    def __init__(
        self,
        cell_id: int,
        capacity: float,
        handoff_overload: float = 1.0,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if handoff_overload < 1.0:
            raise ValueError(
                f"hand-off overload factor must be >= 1, got"
                f" {handoff_overload}"
            )
        self.cell_id = cell_id
        self.capacity = float(capacity)
        #: CDMA-style *soft capacity* (paper §7): hand-offs may push the
        #: cell up to ``capacity * handoff_overload`` by accepting a
        #: higher interference level; new connections never may.
        self.handoff_capacity = float(capacity) * float(handoff_overload)
        self.used_bandwidth = 0.0
        #: Target reservation bandwidth ``B_r`` most recently computed for
        #: this cell (``B_r^{prev}`` in the AC3 description, §4.3).  For the
        #: static scheme this is the constant guard band ``G``.
        self.reserved_target = 0.0
        #: Monotone counter bumped on every attach/detach/adjustment;
        #: lets the base station's reservation cache detect that its
        #: memoized Eq. 5 contributions may be stale.
        self.version = 0
        self._connections: dict[int, "Connection"] = {}
        #: Incremental ``prev -> ReservationGroup`` buckets over the
        #: attached connections — the grouped columnar input of the
        #: batched Eq. 5 path.
        self._by_prev: dict[int | None, ReservationGroup] = {}
        #: ndarray-cache rebuilds of buckets already emptied and dropped
        #: (so :attr:`group_rebuilds` survives bucket turnover).
        self._retired_rebuilds = 0
        #: Monotone attach counter.  ``dict`` preserves insertion order
        #: and re-attaches get a fresh (higher) number, so ascending
        #: sequence == the iteration order of :meth:`connections`.
        self._attach_seq = 0

    # ------------------------------------------------------------------
    # capacity queries
    # ------------------------------------------------------------------
    @property
    def free_bandwidth(self) -> float:
        """Bandwidth not used by any existing connection."""
        return self.capacity - self.used_bandwidth

    @property
    def connection_count(self) -> int:
        """Number of connections currently carried by this cell."""
        return len(self._connections)

    def connections(self) -> Iterator["Connection"]:
        """Iterate over the connections currently in this cell."""
        return iter(self._connections.values())

    def reservation_groups(self) -> dict[int | None, "ReservationGroup"]:
        """Attached connections bucketed by ``prev`` cell.

        Maps ``prev -> ReservationGroup`` (parallel id/entry-time/basis
        columns sorted by entry time).  Maintained incrementally on
        attach/detach, so Eq. 5 can fetch each F_HOE snapshot once per
        bucket and evaluate the whole bucket in one batched pass.  The
        returned mapping is live — treat it as read-only.
        """
        return self._by_prev

    @property
    def group_rebuilds(self) -> int:
        """Total ``ReservationGroup`` ndarray-cache rebuilds (telemetry)."""
        return self._retired_rebuilds + sum(
            group.rebuilds for group in self._by_prev.values()
        )

    def fits_new_connection(self, bandwidth: float) -> bool:
        """Admission test of Eq. (1): new traffic must respect ``B_r``."""
        return (
            self.used_bandwidth + bandwidth
            <= self.capacity - self.reserved_target + 1e-9
        )

    def fits_handoff(self, bandwidth: float) -> bool:
        """Hand-offs may consume reserved bandwidth and (in soft-capacity
        deployments) the interference margin above the nominal capacity."""
        return self.used_bandwidth + bandwidth <= self.handoff_capacity + 1e-9

    def can_reserve_target(self) -> bool:
        """Whether the current ``B_r`` target is actually reservable.

        ``False`` means the cell is *suspect* in AC3 terms: its existing
        connections already overlap the reserved band
        (``sum b_j + B_r^{prev} > C``).
        """
        return (
            self.used_bandwidth + self.reserved_target <= self.capacity + 1e-9
        )

    @property
    def is_suspect(self) -> bool:
        """AC3's *suspect* predicate: the ``B_r`` target is not met.

        A suspect cell's existing connections already overlap its
        reserved band (``sum b_j + B_r^{prev} > C``); AC3 re-estimates
        only these cells before admitting (§4.3).
        """
        return not self.can_reserve_target()

    # ------------------------------------------------------------------
    # bandwidth accounting
    # ------------------------------------------------------------------
    def attach(self, connection: "Connection") -> None:
        """Account a connection into this cell (admission already decided)."""
        if connection.connection_id in self._connections:
            raise CapacityError(
                f"connection {connection.connection_id} already in cell"
                f" {self.cell_id}"
            )
        if (
            self.used_bandwidth + connection.bandwidth
            > self.handoff_capacity + 1e-9
        ):
            raise CapacityError(
                f"cell {self.cell_id}: attaching {connection.bandwidth} BU"
                f" exceeds capacity ({self.used_bandwidth}/"
                f"{self.handoff_capacity})"
            )
        self._connections[connection.connection_id] = connection
        self.used_bandwidth += connection.bandwidth
        # Duck-typed minimal connections (bandwidth only) still account;
        # they just bucket under prev=None at entry time 0.
        group = self._by_prev.get(
            prev := getattr(connection, "prev_cell", None)
        )
        if group is None:
            group = self._by_prev[prev] = ReservationGroup()
        group.add(
            connection.connection_id,
            getattr(connection, "cell_entry_time", 0.0),
            getattr(connection, "reservation_basis", connection.bandwidth),
            self._attach_seq,
        )
        self._attach_seq += 1
        self.version += 1

    def detach(self, connection: "Connection") -> None:
        """Release a connection's bandwidth (hand-off out or completion)."""
        stored = self._connections.pop(connection.connection_id, None)
        if stored is None:
            raise CapacityError(
                f"connection {connection.connection_id} not in cell"
                f" {self.cell_id}"
            )
        self._discard_from_groups(connection)
        self.version += 1
        self.used_bandwidth -= connection.bandwidth
        if self.used_bandwidth < -1e-9:
            raise CapacityError(
                f"cell {self.cell_id}: used bandwidth went negative"
            )
        if self.used_bandwidth < 0:
            self.used_bandwidth = 0.0

    def adjust_bandwidth(
        self, connection: "Connection", new_bandwidth: float
    ) -> None:
        """Re-size an attached connection's allocation (QoS adaptation).

        Keeps the cell's accounting consistent while a degraded
        connection is squeezed further or upgraded back toward its full
        rate.  The new allocation must respect both the class's floor
        and the cell capacity.
        """
        if connection.connection_id not in self._connections:
            raise CapacityError(
                f"connection {connection.connection_id} not in cell"
                f" {self.cell_id}"
            )
        if new_bandwidth < connection.min_bandwidth - 1e-9:
            raise ValueError(
                f"allocation {new_bandwidth} below the class floor"
                f" {connection.min_bandwidth}"
            )
        if new_bandwidth > connection.full_bandwidth + 1e-9:
            raise ValueError(
                f"allocation {new_bandwidth} above the class rate"
                f" {connection.full_bandwidth}"
            )
        delta = new_bandwidth - connection.bandwidth
        if self.used_bandwidth + delta > self.capacity + 1e-9:
            raise CapacityError(
                f"cell {self.cell_id}: adjustment exceeds capacity"
            )
        self.used_bandwidth += delta
        connection.allocated_bandwidth = new_bandwidth
        # The reservation basis (minimum rate) is unaffected, but bump
        # the version so memoized Eq. 5 results are conservatively
        # recomputed after a QoS adaptation.
        self.version += 1

    def _discard_from_groups(self, connection: "Connection") -> None:
        prev = getattr(connection, "prev_cell", None)
        group = self._by_prev.get(prev)
        if group is not None and group.remove(
            connection.connection_id,
            getattr(connection, "cell_entry_time", 0.0),
        ):
            if not group:
                self._retired_rebuilds += group.rebuilds
                del self._by_prev[prev]
            return
        # ``prev_cell`` or ``cell_entry_time`` mutated while attached
        # (only possible with hand-rolled test doubles): fall back to
        # scanning the buckets.
        for prev, members in list(self._by_prev.items()):
            if members.discard(connection.connection_id):
                if not members:
                    self._retired_rebuilds += members.rebuilds
                    del self._by_prev[prev]
                return

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cell({self.cell_id}, used={self.used_bandwidth:.1f}/"
            f"{self.capacity:.0f}, B_r={self.reserved_target:.2f})"
        )
