"""Cell topologies: adjacency plus (for 1-D) road geometry.

The paper indexes each cell's neighbours from the cell's own point of
view (Figure 2); here cells carry global ids and a topology answers
``neighbors(cell_id)``.  Two families are provided:

* :class:`LinearTopology` — the paper's evaluation substrate (§5.1): 10
  cells of 1 km along a straight road, optionally closed into a ring so
  that border cells see the same traffic as inner ones.
* :class:`HexTopology` — a 2-D hexagonal grid for the paper's stated
  future work (§7); used by the 2-D extension scenario.
"""

from __future__ import annotations

from typing import Protocol, Sequence


class Topology(Protocol):
    """Minimal interface the rest of the library needs from a topology."""

    @property
    def num_cells(self) -> int: ...

    def neighbors(self, cell_id: int) -> Sequence[int]: ...


class LinearTopology:
    """Cells along a straight road, optionally wrapped into a ring.

    Parameters
    ----------
    num_cells:
        Number of cells on the road (paper assumption A1: 10).
    cell_diameter_km:
        Length of road covered by each cell (A1: 1 km).
    ring:
        If true, cell ``n-1`` is adjacent to cell ``0`` and mobile
        positions wrap around (paper §5.1 connects cells <1> and <10>
        to avoid border effects; Table 3 uses the open line instead).
    """

    def __init__(
        self,
        num_cells: int,
        cell_diameter_km: float = 1.0,
        ring: bool = True,
    ) -> None:
        if num_cells < 2:
            raise ValueError("a road needs at least two cells")
        if cell_diameter_km <= 0:
            raise ValueError("cell diameter must be positive")
        self._num_cells = num_cells
        self.cell_diameter_km = float(cell_diameter_km)
        self.ring = ring
        self.road_length_km = num_cells * self.cell_diameter_km

    @property
    def num_cells(self) -> int:
        return self._num_cells

    def neighbors(self, cell_id: int) -> tuple[int, ...]:
        """Adjacent cell ids (1 or 2 in a line, 2 in a ring of >= 3)."""
        self._check(cell_id)
        if self.ring:
            left = (cell_id - 1) % self._num_cells
            right = (cell_id + 1) % self._num_cells
            # A two-cell ring has a single distinct neighbour.
            return (left,) if left == right else (left, right)
        result = []
        if cell_id > 0:
            result.append(cell_id - 1)
        if cell_id < self._num_cells - 1:
            result.append(cell_id + 1)
        return tuple(result)

    # ------------------------------------------------------------------
    # road geometry (used by the 1-D mobility model)
    # ------------------------------------------------------------------
    def cell_of_position(self, position_km: float) -> int:
        """Cell covering road position ``position_km``."""
        if self.ring:
            position_km %= self.road_length_km
        if not 0 <= position_km <= self.road_length_km:
            raise ValueError(
                f"position {position_km} outside road"
                f" [0, {self.road_length_km}]"
            )
        cell = int(position_km / self.cell_diameter_km)
        return min(cell, self._num_cells - 1)

    def cell_span_km(self, cell_id: int) -> tuple[float, float]:
        """Road interval ``[lo, hi)`` covered by ``cell_id``."""
        self._check(cell_id)
        lo = cell_id * self.cell_diameter_km
        return lo, lo + self.cell_diameter_km

    def wrap_position(self, position_km: float) -> float:
        """Normalise a position onto the road (modulo length on a ring)."""
        if self.ring:
            return position_km % self.road_length_km
        return position_km

    def off_road(self, position_km: float) -> bool:
        """True when a mobile has driven past either end of an open road."""
        if self.ring:
            return False
        return position_km < 0 or position_km >= self.road_length_km

    def _check(self, cell_id: int) -> None:
        if not 0 <= cell_id < self._num_cells:
            raise ValueError(f"cell id {cell_id} out of range")


class HexTopology:
    """A rows x cols hexagonal grid (odd-row offset layout).

    Each interior cell has 6 neighbours, matching the classic cellular
    layout sketched in Figure 2(b).  Optionally toroidal to avoid border
    effects in synthetic workloads.
    """

    _EVEN_ROW = ((+1, 0), (-1, 0), (0, -1), (0, +1), (-1, -1), (-1, +1))
    _ODD_ROW = ((+1, 0), (-1, 0), (0, -1), (0, +1), (+1, -1), (+1, +1))

    def __init__(self, rows: int, cols: int, wrap: bool = False) -> None:
        if rows < 1 or cols < 1:
            raise ValueError("grid must be at least 1x1")
        if wrap and rows % 2:
            # Offset-coordinate hex grids only tile a torus when the
            # row count is even; an odd seam breaks adjacency symmetry.
            raise ValueError("a wrapped hex grid needs an even row count")
        self.rows = rows
        self.cols = cols
        self.wrap = wrap
        self._neighbors: list[tuple[int, ...]] = []
        for cell_id in range(rows * cols):
            self._neighbors.append(self._compute_neighbors(cell_id))

    @property
    def num_cells(self) -> int:
        return self.rows * self.cols

    def cell_id(self, row: int, col: int) -> int:
        """Global id of the cell at grid coordinates ``(row, col)``."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ValueError(f"({row}, {col}) outside {self.rows}x{self.cols}")
        return row * self.cols + col

    def coordinates(self, cell_id: int) -> tuple[int, int]:
        """Grid coordinates ``(row, col)`` of a cell."""
        if not 0 <= cell_id < self.num_cells:
            raise ValueError(f"cell id {cell_id} out of range")
        return divmod(cell_id, self.cols)

    def neighbors(self, cell_id: int) -> tuple[int, ...]:
        if not 0 <= cell_id < self.num_cells:
            raise ValueError(f"cell id {cell_id} out of range")
        return self._neighbors[cell_id]

    def row_bands(self, bands: int) -> list[tuple[int, int]]:
        """Split the grid into ``bands`` contiguous row ranges.

        Returns ``[(start_row, end_row), ...]`` (end exclusive) with
        sizes differing by at most one row; the first ``rows % bands``
        bands get the extra row.  Hex adjacency never spans more than
        one row, so each band's cut is one cell deep — the partition
        the spatial sharding layer builds on.
        """
        if bands < 1:
            raise ValueError("need at least one band")
        if bands > self.rows:
            raise ValueError(
                f"cannot cut {self.rows} rows into {bands} bands"
            )
        base, extra = divmod(self.rows, bands)
        ranges = []
        start = 0
        for band in range(bands):
            size = base + (1 if band < extra else 0)
            ranges.append((start, start + size))
            start += size
        return ranges

    def _compute_neighbors(self, cell_id: int) -> tuple[int, ...]:
        row, col = divmod(cell_id, self.cols)
        offsets = self._ODD_ROW if row % 2 else self._EVEN_ROW
        found = []
        for column_delta, row_delta in offsets:
            neighbor_row = row + row_delta
            neighbor_col = col + column_delta
            if self.wrap:
                neighbor_row %= self.rows
                neighbor_col %= self.cols
            elif not (
                0 <= neighbor_row < self.rows and 0 <= neighbor_col < self.cols
            ):
                continue
            neighbor = neighbor_row * self.cols + neighbor_col
            if neighbor != cell_id and neighbor not in found:
                found.append(neighbor)
        return tuple(found)
