"""The cellular network: cells, topology, and their base stations."""

from __future__ import annotations

from typing import Callable, Iterator

from repro._kernel import flush_batch_or_none
from repro.cellular.base_station import BaseStation
from repro.obs.trace import get_tracer
from repro.core.reservation import aggregate_reservation
from repro.cellular.cell import Cell
from repro.cellular.topology import Topology
from repro.core.window import EstimationWindowController, WindowControllerConfig
from repro.estimation.cache import CacheConfig
from repro.estimation.estimator import MobilityEstimator


class CellularNetwork:
    """A set of cells wired together by a topology.

    Parameters
    ----------
    topology:
        Adjacency (and, for 1-D roads, geometry) of the cells.
    capacity:
        Wireless link capacity per cell in BUs (A6: 100), or a callable
        mapping cell id to capacity for heterogeneous deployments.
    cache_config:
        Estimator cache parameters shared by all stations.
    window_config:
        Window-controller parameters shared by all stations.
    estimator_factory:
        Override to plug a custom estimator (e.g. ``KnownPathEstimator``).
    cell_factory:
        Override to plug a custom :class:`Cell` subclass — called as
        ``cell_factory(cell_id, capacity, handoff_overload)``.  The
        spatial runner uses this to build
        :class:`~repro.simulation.columnar.ColumnarCell` cells whose
        attached sets live in a shared connection store.
    reservation_cache:
        Whether base stations evaluate Eq. 5 over their incremental
        columnar buckets (see
        :meth:`repro.cellular.base_station.BaseStation.outgoing_reservation`);
        disabling forces the naive per-connection rescan.
    coalesced_tick:
        Whether admission policies may coalesce the reservation updates
        of one admission test into a single batched estimation tick
        (see :meth:`flush_reservation_tick`).  Off by default so direct
        constructions behave exactly as before; the simulator turns it
        on via :attr:`repro.simulation.config.SimulationConfig.coalesced_tick`.
    grouped_flush:
        Whether a tick flush may gather the Eq. 4/5 rows of *all*
        suppliers into one cross-cell batch
        (:class:`repro._kernel.FlushBatch`) instead of evaluating each
        supplier separately.  Pure optimisation — bit-identical either
        way; the switch keeps the equivalence testable.
    """

    def __init__(
        self,
        topology: Topology,
        capacity: float | Callable[[int], float] = 100.0,
        cache_config: CacheConfig | None = None,
        window_config: WindowControllerConfig | None = None,
        estimator_factory: Callable[[int], MobilityEstimator] | None = None,
        cell_factory: Callable[[int, float, float], Cell] | None = None,
        handoff_overload: float = 1.0,
        reservation_cache: bool = True,
        coalesced_tick: bool = False,
        grouped_flush: bool = True,
    ) -> None:
        self.topology = topology
        self.coalesced_tick = coalesced_tick
        self.grouped_flush = grouped_flush
        #: The run's span tracer (a shared no-op when tracing is off);
        #: grabbed at construction like the telemetry handles are.
        self.tracer = get_tracer()
        #: Cells whose ``B_r`` must be refreshed at the next tick flush.
        self._reservation_dirty: list[int] = []
        #: Tick flushes performed / targets refreshed across them
        #: (telemetry: targets-per-flush is the coalescing win).
        self.tick_flushes = 0
        self.tick_targets = 0
        #: Suppliers evaluated through the cross-cell batch vs through
        #: the per-supplier fallback, across all tick flushes.
        self.tick_grouped_suppliers = 0
        self.tick_fallback_suppliers = 0
        #: Running inter-BS message total (kept in sync with the
        #: per-station ``messages_sent`` counters via
        #: :meth:`count_messages`, so the per-admission message deltas
        #: need no sweep over all stations).
        self._messages_total = 0
        self.cells: list[Cell] = []
        self.stations: list[BaseStation] = []
        for cell_id in range(topology.num_cells):
            if callable(capacity):
                cell_capacity = capacity(cell_id)
            else:
                cell_capacity = float(capacity)
            if cell_factory is not None:
                cell = cell_factory(cell_id, cell_capacity, handoff_overload)
            else:
                cell = Cell(
                    cell_id, cell_capacity, handoff_overload=handoff_overload
                )
            if estimator_factory is not None:
                estimator = estimator_factory(cell_id)
            else:
                estimator = MobilityEstimator(cache_config)
            controller = EstimationWindowController(
                window_config or WindowControllerConfig()
            )
            self.cells.append(cell)
            self.stations.append(
                BaseStation(
                    cell,
                    self,
                    estimator,
                    controller,
                    reservation_cache=reservation_cache,
                )
            )

    @property
    def num_cells(self) -> int:
        return self.topology.num_cells

    def cell(self, cell_id: int) -> Cell:
        """Cell by id."""
        return self.cells[cell_id]

    def station(self, cell_id: int) -> BaseStation:
        """Base station by cell id."""
        return self.stations[cell_id]

    def neighbors(self, cell_id: int) -> tuple[int, ...]:
        """Adjacent cell ids."""
        return tuple(self.topology.neighbors(cell_id))

    def __iter__(self) -> Iterator[Cell]:
        return iter(self.cells)

    # ------------------------------------------------------------------
    # coalesced estimation tick
    # ------------------------------------------------------------------
    def mark_reservation_dirty(self, cell_id: int) -> None:
        """Queue a cell's ``B_r`` refresh for the next tick flush."""
        self._reservation_dirty.append(cell_id)

    def flush_reservation_tick(self, now: float) -> None:
        """Refresh every dirty cell's ``B_r`` in one batched pass.

        Equivalent (bit-for-bit, message-for-message) to calling
        ``update_target_reservation(now)`` on each dirty station in
        queue order: within a single admission test at a fixed ``now``
        the Eq. 5 inputs (connection sets, ``T_est``, estimator state)
        are frozen — installing one target's ``reserved_target`` cannot
        change another's contributions.  The batching win is on the
        supplier side, at two levels: each supplier evaluates all of
        its pending targets at once, and — under an array kernel with
        :attr:`grouped_flush` on — the rows of *every* supplier are
        gathered into one cross-cell :class:`repro._kernel.FlushBatch`
        whose searches and arithmetic run as a single columnar pass.
        Suppliers that cannot join the batch (non-unit-weight
        snapshots, route oracles, duck-typed estimators, disabled
        batching) fall back to
        :meth:`~repro.cellular.base_station.BaseStation.outgoing_reservation_multi`
        supplier-locally; mixing the paths never changes a result.
        """
        dirty = self._reservation_dirty
        if not dirty:
            return
        tracer = self.tracer
        if not tracer.enabled:
            self._flush_tick(now, dirty)
            return
        with tracer.span("kernel.flush_tick", targets=len(dirty)):
            self._flush_tick(now, dirty)

    def _flush_tick(self, now: float, dirty: list[int]) -> None:
        self._reservation_dirty = []
        # Plan phase: count the protocol messages in the exact sequential
        # order (announce then reply, per target then per neighbour) and
        # bucket the Eq. 5 requests by supplier.
        plan: list[tuple[BaseStation, list[BaseStation]]] = []
        requests: dict[int, list[tuple[int, float]]] = {}
        message_pairs = 0
        for cell_id in dirty:
            station = self.stations[cell_id]
            neighbors = station.neighbor_stations()
            plan.append((station, neighbors))
            for neighbor in neighbors:
                station.messages_sent += 1  # announce T_est
                requests.setdefault(neighbor.cell_id, []).append(
                    (cell_id, station.t_est)
                )
                neighbor.messages_sent += 1  # neighbour returns B_{i,0}
                message_pairs += 1
        self._messages_total += 2 * message_pairs
        # Supply phase: one cross-cell batch, with per-supplier batched
        # calls as the fallback.
        supplies: dict[int, Iterator[float]] = {}
        batch = flush_batch_or_none() if self.grouped_flush else None
        if batch is not None:
            np = batch.np
            deferred: list[tuple[int, list]] = []
            for supplier_id, pending in requests.items():
                supplier = self.stations[supplier_id]
                slots = supplier.grouped_contribution_eval(
                    np, now, pending, batch
                )
                if slots is None:
                    self.tick_fallback_suppliers += 1
                    supplies[supplier_id] = iter(
                        supplier.outgoing_reservation_multi(now, pending)
                    )
                else:
                    self.tick_grouped_suppliers += 1
                    deferred.append((supplier_id, slots))
            if deferred:
                batch.resolve()
                for supplier_id, slots in deferred:
                    supplies[supplier_id] = iter(
                        [
                            0.0
                            if slot is None
                            else (
                                slot
                                if type(slot) is float
                                else slot.total
                            )
                            for slot in slots
                        ]
                    )
        else:
            supplies = {
                supplier_id: iter(
                    self.stations[supplier_id].outgoing_reservation_multi(
                        now, pending
                    )
                )
                for supplier_id, pending in requests.items()
            }
        # Install phase: re-assemble each target's contributions in the
        # neighbour order the sequential path would have used.
        for station, neighbors in plan:
            contributions = [
                next(supplies[neighbor.cell_id]) for neighbor in neighbors
            ]
            station.cell.reserved_target = aggregate_reservation(
                contributions
            )
            station.reservation_calculations += 1
        self.tick_flushes += 1
        self.tick_targets += len(plan)

    def total_used_bandwidth(self) -> float:
        """Bandwidth in use across the whole network (BUs)."""
        return sum(cell.used_bandwidth for cell in self.cells)

    def count_messages(self, count: int) -> None:
        """Note inter-BS messages just added to a station's counter."""
        self._messages_total += count

    def total_messages(self) -> int:
        """Inter-BS messages sent by all stations so far (O(1))."""
        return self._messages_total

    def recount_messages(self) -> int:
        """Rebuild the running message total from the per-station
        counters (used after checkpoint restore overwrites them)."""
        self._messages_total = sum(
            station.messages_sent for station in self.stations
        )
        return self._messages_total

    def total_reservation_calculations(self) -> int:
        """``B_r`` (Eq. 6) computations performed by all stations so far."""
        return sum(
            station.reservation_calculations for station in self.stations
        )
