"""The cellular network: cells, topology, and their base stations."""

from __future__ import annotations

from typing import Callable, Iterator

from repro.cellular.base_station import BaseStation
from repro.core.reservation import aggregate_reservation
from repro.cellular.cell import Cell
from repro.cellular.topology import Topology
from repro.core.window import EstimationWindowController, WindowControllerConfig
from repro.estimation.cache import CacheConfig
from repro.estimation.estimator import MobilityEstimator


class CellularNetwork:
    """A set of cells wired together by a topology.

    Parameters
    ----------
    topology:
        Adjacency (and, for 1-D roads, geometry) of the cells.
    capacity:
        Wireless link capacity per cell in BUs (A6: 100), or a callable
        mapping cell id to capacity for heterogeneous deployments.
    cache_config:
        Estimator cache parameters shared by all stations.
    window_config:
        Window-controller parameters shared by all stations.
    estimator_factory:
        Override to plug a custom estimator (e.g. ``KnownPathEstimator``).
    reservation_cache:
        Whether base stations memoize their Eq. 5 contributions (see
        :meth:`repro.cellular.base_station.BaseStation.outgoing_reservation`).
    coalesced_tick:
        Whether admission policies may coalesce the reservation updates
        of one admission test into a single batched estimation tick
        (see :meth:`flush_reservation_tick`).  Off by default so direct
        constructions behave exactly as before; the simulator turns it
        on via :attr:`repro.simulation.config.SimulationConfig.coalesced_tick`.
    """

    def __init__(
        self,
        topology: Topology,
        capacity: float | Callable[[int], float] = 100.0,
        cache_config: CacheConfig | None = None,
        window_config: WindowControllerConfig | None = None,
        estimator_factory: Callable[[int], MobilityEstimator] | None = None,
        handoff_overload: float = 1.0,
        reservation_cache: bool = True,
        coalesced_tick: bool = False,
    ) -> None:
        self.topology = topology
        self.coalesced_tick = coalesced_tick
        #: Cells whose ``B_r`` must be refreshed at the next tick flush.
        self._reservation_dirty: list[int] = []
        #: Tick flushes performed / targets refreshed across them
        #: (telemetry: targets-per-flush is the coalescing win).
        self.tick_flushes = 0
        self.tick_targets = 0
        self.cells: list[Cell] = []
        self.stations: list[BaseStation] = []
        for cell_id in range(topology.num_cells):
            if callable(capacity):
                cell_capacity = capacity(cell_id)
            else:
                cell_capacity = float(capacity)
            cell = Cell(
                cell_id, cell_capacity, handoff_overload=handoff_overload
            )
            if estimator_factory is not None:
                estimator = estimator_factory(cell_id)
            else:
                estimator = MobilityEstimator(cache_config)
            controller = EstimationWindowController(
                window_config or WindowControllerConfig()
            )
            self.cells.append(cell)
            self.stations.append(
                BaseStation(
                    cell,
                    self,
                    estimator,
                    controller,
                    reservation_cache=reservation_cache,
                )
            )

    @property
    def num_cells(self) -> int:
        return self.topology.num_cells

    def cell(self, cell_id: int) -> Cell:
        """Cell by id."""
        return self.cells[cell_id]

    def station(self, cell_id: int) -> BaseStation:
        """Base station by cell id."""
        return self.stations[cell_id]

    def neighbors(self, cell_id: int) -> tuple[int, ...]:
        """Adjacent cell ids."""
        return tuple(self.topology.neighbors(cell_id))

    def __iter__(self) -> Iterator[Cell]:
        return iter(self.cells)

    # ------------------------------------------------------------------
    # coalesced estimation tick
    # ------------------------------------------------------------------
    def mark_reservation_dirty(self, cell_id: int) -> None:
        """Queue a cell's ``B_r`` refresh for the next tick flush."""
        self._reservation_dirty.append(cell_id)

    def flush_reservation_tick(self, now: float) -> None:
        """Refresh every dirty cell's ``B_r`` in one batched pass.

        Equivalent (bit-for-bit, message-for-message) to calling
        ``update_target_reservation(now)`` on each dirty station in
        queue order: within a single admission test at a fixed ``now``
        the Eq. 5 inputs (connection sets, ``T_est``, estimator state)
        are frozen — installing one target's ``reserved_target`` cannot
        change another's contributions.  The batching win is on the
        supplier side: each supplier evaluates all of its pending
        targets through one
        :meth:`~repro.cellular.base_station.BaseStation.outgoing_reservation_multi`
        call, so its ``prev``-buckets are walked once and the Eq. 4
        kernel sees one large batch instead of one batch per target.
        """
        dirty = self._reservation_dirty
        if not dirty:
            return
        self._reservation_dirty = []
        # Plan phase: count the protocol messages in the exact sequential
        # order (announce then reply, per target then per neighbour) and
        # bucket the Eq. 5 requests by supplier.
        plan: list[tuple[BaseStation, list[BaseStation]]] = []
        requests: dict[int, list[tuple[int, float]]] = {}
        for cell_id in dirty:
            station = self.stations[cell_id]
            neighbors = station.neighbor_stations()
            plan.append((station, neighbors))
            for neighbor in neighbors:
                station.messages_sent += 1  # announce T_est
                requests.setdefault(neighbor.cell_id, []).append(
                    (cell_id, station.t_est)
                )
                neighbor.messages_sent += 1  # neighbour returns B_{i,0}
        # Supply phase: one batched call per supplier.
        supplies: dict[int, Iterator[float]] = {
            supplier_id: iter(
                self.stations[supplier_id].outgoing_reservation_multi(
                    now, pending
                )
            )
            for supplier_id, pending in requests.items()
        }
        # Install phase: re-assemble each target's contributions in the
        # neighbour order the sequential path would have used.
        for station, neighbors in plan:
            contributions = [
                next(supplies[neighbor.cell_id]) for neighbor in neighbors
            ]
            station.cell.reserved_target = aggregate_reservation(
                contributions
            )
            station.reservation_calculations += 1
        self.tick_flushes += 1
        self.tick_targets += len(plan)

    def total_used_bandwidth(self) -> float:
        """Bandwidth in use across the whole network (BUs)."""
        return sum(cell.used_bandwidth for cell in self.cells)

    def total_messages(self) -> int:
        """Inter-BS messages sent by all stations so far."""
        return sum(station.messages_sent for station in self.stations)

    def total_reservation_calculations(self) -> int:
        """``B_r`` (Eq. 6) computations performed by all stations so far."""
        return sum(
            station.reservation_calculations for station in self.stations
        )
