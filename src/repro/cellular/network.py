"""The cellular network: cells, topology, and their base stations."""

from __future__ import annotations

from typing import Callable, Iterator

from repro.cellular.base_station import BaseStation
from repro.cellular.cell import Cell
from repro.cellular.topology import Topology
from repro.core.window import EstimationWindowController, WindowControllerConfig
from repro.estimation.cache import CacheConfig
from repro.estimation.estimator import MobilityEstimator


class CellularNetwork:
    """A set of cells wired together by a topology.

    Parameters
    ----------
    topology:
        Adjacency (and, for 1-D roads, geometry) of the cells.
    capacity:
        Wireless link capacity per cell in BUs (A6: 100), or a callable
        mapping cell id to capacity for heterogeneous deployments.
    cache_config:
        Estimator cache parameters shared by all stations.
    window_config:
        Window-controller parameters shared by all stations.
    estimator_factory:
        Override to plug a custom estimator (e.g. ``KnownPathEstimator``).
    reservation_cache:
        Whether base stations memoize their Eq. 5 contributions (see
        :meth:`repro.cellular.base_station.BaseStation.outgoing_reservation`).
    """

    def __init__(
        self,
        topology: Topology,
        capacity: float | Callable[[int], float] = 100.0,
        cache_config: CacheConfig | None = None,
        window_config: WindowControllerConfig | None = None,
        estimator_factory: Callable[[int], MobilityEstimator] | None = None,
        handoff_overload: float = 1.0,
        reservation_cache: bool = True,
    ) -> None:
        self.topology = topology
        self.cells: list[Cell] = []
        self.stations: list[BaseStation] = []
        for cell_id in range(topology.num_cells):
            if callable(capacity):
                cell_capacity = capacity(cell_id)
            else:
                cell_capacity = float(capacity)
            cell = Cell(
                cell_id, cell_capacity, handoff_overload=handoff_overload
            )
            if estimator_factory is not None:
                estimator = estimator_factory(cell_id)
            else:
                estimator = MobilityEstimator(cache_config)
            controller = EstimationWindowController(
                window_config or WindowControllerConfig()
            )
            self.cells.append(cell)
            self.stations.append(
                BaseStation(
                    cell,
                    self,
                    estimator,
                    controller,
                    reservation_cache=reservation_cache,
                )
            )

    @property
    def num_cells(self) -> int:
        return self.topology.num_cells

    def cell(self, cell_id: int) -> Cell:
        """Cell by id."""
        return self.cells[cell_id]

    def station(self, cell_id: int) -> BaseStation:
        """Base station by cell id."""
        return self.stations[cell_id]

    def neighbors(self, cell_id: int) -> tuple[int, ...]:
        """Adjacent cell ids."""
        return tuple(self.topology.neighbors(cell_id))

    def __iter__(self) -> Iterator[Cell]:
        return iter(self.cells)

    def total_used_bandwidth(self) -> float:
        """Bandwidth in use across the whole network (BUs)."""
        return sum(cell.used_bandwidth for cell in self.cells)

    def total_messages(self) -> int:
        """Inter-BS messages sent by all stations so far."""
        return sum(station.messages_sent for station in self.stations)

    def total_reservation_calculations(self) -> int:
        """``B_r`` (Eq. 6) computations performed by all stations so far."""
        return sum(
            station.reservation_calculations for station in self.stations
        )
