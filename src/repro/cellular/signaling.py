"""Backhaul signaling accounting: star (MSC) vs fully-connected BSs.

Figure 1 of the paper shows the two interconnect options for the wired
backbone.  The reservation protocol exchanges the same *logical*
messages either way (``T_est`` announcements and Eq. 5 replies); what
differs is the transport cost and where Eq. 6 is evaluated:

* **star** — BSs talk only to the MSC, so one logical BS-to-BS message
  costs two hops, and the MSC computes the targets centrally;
* **full mesh** — BSs talk directly (one hop) and compute locally.

:class:`SignalingAccountant` converts logical message counts into hop
counts so deployments can be compared (the ablation benchmark).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Interconnect(enum.Enum):
    """Wired interconnect layout between the MSC and the base stations."""

    STAR = "star"
    FULL_MESH = "full_mesh"


@dataclass
class SignalingReport:
    """Transport cost of a batch of logical control messages."""

    interconnect: Interconnect
    logical_messages: int
    transport_hops: int
    msc_transits: int

    def hops_per_message(self) -> float:
        if self.logical_messages == 0:
            return 0.0
        return self.transport_hops / self.logical_messages


class SignalingAccountant:
    """Accumulates signaling cost under a chosen interconnect."""

    def __init__(self, interconnect: Interconnect = Interconnect.FULL_MESH):
        self.interconnect = interconnect
        self.logical_messages = 0
        self.transport_hops = 0
        self.msc_transits = 0

    def account(self, logical_messages: int) -> None:
        """Register ``logical_messages`` BS-to-BS control messages."""
        if logical_messages < 0:
            raise ValueError("message count cannot be negative")
        self.logical_messages += logical_messages
        if self.interconnect is Interconnect.STAR:
            self.transport_hops += 2 * logical_messages
            self.msc_transits += logical_messages
        else:
            self.transport_hops += logical_messages

    def report(self) -> SignalingReport:
        """Snapshot of the accumulated transport cost."""
        return SignalingReport(
            self.interconnect,
            self.logical_messages,
            self.transport_hops,
            self.msc_transits,
        )

    @staticmethod
    def compare(logical_messages: int) -> dict[str, SignalingReport]:
        """Cost of the same logical load under both interconnects."""
        reports = {}
        for interconnect in Interconnect:
            accountant = SignalingAccountant(interconnect)
            accountant.account(logical_messages)
            reports[interconnect.value] = accountant.report()
        return reports
