"""Cellular infrastructure substrate (S2): cells, topologies, stations.

Public surface:

* :class:`Cell` — FCA capacity accounting with a reserved hand-off band.
* :class:`LinearTopology` / :class:`HexTopology` — 1-D road and 2-D grid.
* :class:`BaseStation` — per-cell control plane (estimator + window +
  distributed Eq. 5/6 reservation protocol).
* :class:`CellularNetwork` — cells wired by a topology.
* :mod:`repro.cellular.signaling` — star vs full-mesh backhaul costs.
"""

from repro.cellular.base_station import EXIT_CELL, BaseStation
from repro.cellular.cell import CapacityError, Cell
from repro.cellular.network import CellularNetwork
from repro.cellular.signaling import (
    Interconnect,
    SignalingAccountant,
    SignalingReport,
)
from repro.cellular.topology import HexTopology, LinearTopology, Topology

__all__ = [
    "EXIT_CELL",
    "BaseStation",
    "CapacityError",
    "Cell",
    "CellularNetwork",
    "HexTopology",
    "Interconnect",
    "LinearTopology",
    "SignalingAccountant",
    "SignalingReport",
    "Topology",
]
