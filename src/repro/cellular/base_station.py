"""Base station: the per-cell control-plane of the scheme.

Each :class:`BaseStation` owns its cell's mobility estimator (§3) and
estimation-window controller (§4.2), and implements the distributed
reservation protocol of §4.1:

* when *this* cell needs ``B_r`` updated, it informs its neighbours of
  its current ``T_est`` and each neighbour computes Eq. 5 over its own
  connections; the results are aggregated with Eq. 6;
* every hand-off arrival (success or drop) feeds the window controller;
* every departure is recorded as a quadruplet in the estimator.

Inter-BS message exchanges are counted so the star-vs-full-mesh
signaling comparison (Figure 1) and the ``N_calc`` complexity metric
(Figure 13) can be reported.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cellular.cell import Cell
from repro.core.reservation import (
    aggregate_reservation,
    expected_handoff_bandwidth,
)
from repro.core.window import EstimationWindowController
from repro.estimation.estimator import MobilityEstimator

if TYPE_CHECKING:  # pragma: no cover
    from repro.cellular.network import CellularNetwork

#: Sentinel "next cell" for mobiles driving off an open road's ends.
EXIT_CELL = -1


class BaseStation:
    """Controller of one cell.

    Parameters
    ----------
    cell:
        The radio cell this station serves.
    network:
        Owning network (used to reach neighbouring stations).
    estimator:
        This cell's mobility estimator.
    window_controller:
        This cell's adaptive ``T_est`` controller.
    """

    def __init__(
        self,
        cell: Cell,
        network: "CellularNetwork",
        estimator: MobilityEstimator,
        window_controller: EstimationWindowController,
        reservation_cache: bool = True,
    ) -> None:
        self.cell = cell
        self.network = network
        self.estimator = estimator
        self.window = window_controller
        #: Number of times this station computed its own ``B_r`` (Eq. 6).
        self.reservation_calculations = 0
        #: Inter-BS (or BS<->MSC) messages attributable to this station.
        self.messages_sent = 0
        #: Whether Eq. 5 runs over the cell's incremental columnar
        #: ``prev``-buckets (batched kernels, grouped flush).  Disabling
        #: falls back to the naive rescan-everything path — useful to
        #: verify equivalence.
        self.reservation_cache_enabled = reservation_cache
        #: Cached neighbour stations (the topology is immutable).
        self._neighbor_stations: list["BaseStation"] | None = None
        #: ``(cell version, plan)`` memo of :meth:`grouped_flush_plan`.
        self._flush_plan: tuple[int, tuple | None] | None = None

    @property
    def cell_id(self) -> int:
        return self.cell.cell_id

    @property
    def t_est(self) -> float:
        """Current estimation window ``T_est`` of this cell (seconds)."""
        return self.window.t_est

    def neighbor_stations(self) -> list["BaseStation"]:
        """Base stations of the adjacent cells (``A_0``)."""
        stations = self._neighbor_stations
        if stations is None:
            stations = self._neighbor_stations = [
                self.network.station(neighbor)
                for neighbor in self.network.topology.neighbors(self.cell_id)
            ]
        return stations

    # ------------------------------------------------------------------
    # distributed reservation (Eqs. 5-6)
    # ------------------------------------------------------------------
    def outgoing_reservation(self, now: float, target_cell: int,
                             t_est: float) -> float:
        """Eq. 5: expected hand-off bandwidth from here toward a neighbour.

        The cell's incrementally maintained columnar ``prev``-buckets
        (:meth:`repro.cellular.cell.Cell.reservation_groups`) are handed
        to the estimator, which evaluates each bucket against one F_HOE
        snapshot in a single batched pass — vectorized under the numpy
        kernel, a resumable binary-search walk otherwise.  With the
        batched path disabled (or a duck-typed estimator that predates
        it), Eq. 5 rescans every connection individually; both paths are
        bit-identical.
        """
        if (
            not self.reservation_cache_enabled
            or getattr(self.estimator, "version", None) is None
        ):
            return expected_handoff_bandwidth(
                self.estimator,
                now,
                self.cell.connections(),
                target_cell,
                t_est,
            )
        return expected_handoff_bandwidth(
            self.estimator,
            now,
            self.cell.connections(),
            target_cell,
            t_est,
            groups=self.cell.reservation_groups(),
        )

    def outgoing_reservation_multi(
        self, now: float, requests: list[tuple[int, float]]
    ) -> list[float]:
        """Batched :meth:`outgoing_reservation` over several targets.

        The coalesced estimation tick asks each supplier for all of its
        pending ``(target_cell, t_est)`` contributions at once, so the
        estimator can walk every ``prev``-bucket a single time and feed
        the Eq. 4 kernel one large batch instead of one batch per
        target.  The returned values are identical to issuing the
        per-target calls in order at the same ``now``.
        """
        estimator = self.estimator
        multi = getattr(estimator, "expected_bandwidth_multi", None)
        if (
            not self.reservation_cache_enabled
            or getattr(estimator, "version", None) is None
            or multi is None
        ):
            # Batched path disabled or a duck-typed / calendar estimator
            # without a batched entry point: per-target calls are the
            # batched path, by definition of equivalence.
            return [
                self.outgoing_reservation(now, target, t_est)
                for target, t_est in requests
            ]
        return multi(
            now,
            self.cell.connections(),
            requests,
            groups=self.cell.reservation_groups(),
        )

    def grouped_flush_plan(self, np):
        """This supplier's columnar layout for the cross-cell flush.

        ``(entries, bases, blocks, perm, n_rows)`` where ``entries`` /
        ``bases`` are the cell's ``prev``-bucket columns concatenated
        into one float64 array each, ``blocks`` lists
        ``(prev, start, end)`` slices into them, and ``perm`` maps
        connection-iteration order to row positions (so flush totals
        replay the exact addition order of the per-supplier path).
        Cached until the cell version changes — attach/detach/QoS
        re-sizing all bump it.  ``None`` when the layout cannot be
        built (no rows, or rows that do not one-to-one match the
        attached connections); callers then fall back to
        :meth:`outgoing_reservation_multi`.

        The permutation is derived from the cell-wide attach sequence
        numbers: ascending sequence *is* connection-iteration order, so
        one ``argsort`` over the concatenated bucket sequences replaces
        a per-connection Python walk (the plan is rebuilt on nearly
        every flush — cell versions churn with every attach/detach — so
        build cost is on the hot path).
        """
        cached = self._flush_plan
        cell = self.cell
        version = cell.version
        if cached is not None and cached[0] == version:
            return cached[1]
        blocks = []
        entry_parts = []
        basis_parts = []
        seq_parts = []
        start = 0
        for prev, group in cell.reservation_groups().items():
            end = start + len(group.keys)
            entries, bases = group.arrays(np)
            entry_parts.append(entries)
            basis_parts.append(bases)
            seq_parts.append(group.seq_array(np))
            blocks.append((prev, start, end))
            start = end
        plan = None
        if start and start == cell.connection_count:
            if len(seq_parts) == 1:
                seqs = seq_parts[0]
                entries_cat = entry_parts[0]
                bases_cat = basis_parts[0]
            else:
                seqs = np.concatenate(seq_parts)
                entries_cat = np.concatenate(entry_parts)
                bases_cat = np.concatenate(basis_parts)
            plan = (entries_cat, bases_cat, blocks, np.argsort(seqs), start)
        self._flush_plan = (version, plan)
        return plan

    def grouped_contribution_eval(self, np, now, requests, batch):
        """Register this supplier's Eq. 5 work into a cross-cell flush.

        Returns one result slot per ``(target_cell, t_est)`` request —
        a :class:`repro._kernel.FlushSegment` whose ``total`` is valid
        after ``batch.resolve()``, a plain float when the answer is
        already known (no connections), or ``None`` inside the list for
        ``t_est <= 0`` requests (their contribution is 0.0).  Returns
        ``None`` *instead of a list* when this supplier cannot join the
        grouped flush (batched path disabled, duck-typed estimator,
        route oracle, non-unit-weight snapshots, unplannable layout);
        the caller must then use :meth:`outgoing_reservation_multi`,
        which computes bit-identical values supplier-locally.
        """
        if not self.reservation_cache_enabled:
            return None
        estimator = self.estimator
        parts = getattr(estimator, "grouped_flush_parts", None)
        if parts is None or getattr(estimator, "version", None) is None:
            return None
        if not self.cell.reservation_groups():
            # No connections: every Eq. 5 contribution is exactly 0.0.
            return [0.0] * len(requests)
        plan = self.grouped_flush_plan(np)
        if plan is None:
            return None
        return parts(np, now, requests, plan, batch)

    def update_target_reservation(self, now: float) -> float:
        """Eq. 6: recompute and install this cell's ``B_r``.

        Models the protocol of §4.1: this BS announces ``T_est`` to each
        neighbour (one message each), every neighbour answers with its
        Eq. 5 contribution (one message each).
        """
        contributions = []
        network = self.network
        for neighbor in self.neighbor_stations():
            self.messages_sent += 1  # announce T_est to the neighbour
            contributions.append(
                neighbor.outgoing_reservation(now, self.cell_id, self.t_est)
            )
            neighbor.messages_sent += 1  # neighbour returns B_{i,0}
            network.count_messages(2)
        reservation = aggregate_reservation(contributions)
        self.cell.reserved_target = reservation
        self.reservation_calculations += 1
        return reservation

    # ------------------------------------------------------------------
    # hand-off bookkeeping
    # ------------------------------------------------------------------
    def neighborhood_max_sojourn(self, now: float) -> float:
        """``T_soj,max``: largest sojourn in the neighbours' estimators."""
        maximum = 0.0
        for neighbor in self.neighbor_stations():
            maximum = max(maximum, neighbor.estimator.max_sojourn(now))
        return maximum

    def on_handoff_arrival(self, dropped: bool, now: float) -> None:
        """Feed the window controller for a hand-off into this cell."""
        self.window.on_handoff(
            dropped, self.neighborhood_max_sojourn(now), now
        )

    def record_departure(
        self,
        now: float,
        prev: int | None,
        next_cell: int,
        entry_time: float,
    ) -> None:
        """Cache the quadruplet of a mobile that just left this cell."""
        self.estimator.record_departure(
            now, prev, next_cell, now - entry_time
        )
