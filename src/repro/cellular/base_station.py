"""Base station: the per-cell control-plane of the scheme.

Each :class:`BaseStation` owns its cell's mobility estimator (§3) and
estimation-window controller (§4.2), and implements the distributed
reservation protocol of §4.1:

* when *this* cell needs ``B_r`` updated, it informs its neighbours of
  its current ``T_est`` and each neighbour computes Eq. 5 over its own
  connections; the results are aggregated with Eq. 6;
* every hand-off arrival (success or drop) feeds the window controller;
* every departure is recorded as a quadruplet in the estimator.

Inter-BS message exchanges are counted so the star-vs-full-mesh
signaling comparison (Figure 1) and the ``N_calc`` complexity metric
(Figure 13) can be reported.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cellular.cell import Cell
from repro.core.reservation import (
    aggregate_reservation,
    expected_handoff_bandwidth,
)
from repro.core.window import EstimationWindowController
from repro.estimation.estimator import MobilityEstimator

if TYPE_CHECKING:  # pragma: no cover
    from repro.cellular.network import CellularNetwork

#: Sentinel "next cell" for mobiles driving off an open road's ends.
EXIT_CELL = -1


class BaseStation:
    """Controller of one cell.

    Parameters
    ----------
    cell:
        The radio cell this station serves.
    network:
        Owning network (used to reach neighbouring stations).
    estimator:
        This cell's mobility estimator.
    window_controller:
        This cell's adaptive ``T_est`` controller.
    """

    def __init__(
        self,
        cell: Cell,
        network: "CellularNetwork",
        estimator: MobilityEstimator,
        window_controller: EstimationWindowController,
        reservation_cache: bool = True,
    ) -> None:
        self.cell = cell
        self.network = network
        self.estimator = estimator
        self.window = window_controller
        #: Number of times this station computed its own ``B_r`` (Eq. 6).
        self.reservation_calculations = 0
        #: Inter-BS (or BS<->MSC) messages attributable to this station.
        self.messages_sent = 0
        #: Whether Eq. 5 contributions are memoized (see
        #: :meth:`outgoing_reservation`).  Disabling falls back to the
        #: naive rescan-everything path — useful to verify equivalence.
        self.reservation_cache_enabled = reservation_cache
        #: ``target -> (validity stamp, contribution)`` memo of Eq. 5
        #: results this station computed for its neighbours.
        self._contribution_cache: dict[
            int, tuple[tuple[float, float, int, int], float]
        ] = {}
        self.contribution_cache_hits = 0
        self.contribution_cache_misses = 0

    @property
    def cell_id(self) -> int:
        return self.cell.cell_id

    @property
    def t_est(self) -> float:
        """Current estimation window ``T_est`` of this cell (seconds)."""
        return self.window.t_est

    def neighbor_stations(self) -> list["BaseStation"]:
        """Base stations of the adjacent cells (``A_0``)."""
        return [
            self.network.station(neighbor)
            for neighbor in self.network.topology.neighbors(self.cell_id)
        ]

    # ------------------------------------------------------------------
    # distributed reservation (Eqs. 5-6)
    # ------------------------------------------------------------------
    def outgoing_reservation(self, now: float, target_cell: int,
                             t_est: float) -> float:
        """Eq. 5: expected hand-off bandwidth from here toward a neighbour.

        The cell's incrementally maintained columnar ``prev``-buckets
        (:meth:`repro.cellular.cell.Cell.reservation_groups`) are handed
        to the estimator, which evaluates each bucket against one F_HOE
        snapshot in a single batched pass — vectorized under the numpy
        kernel, a resumable binary-search walk otherwise.

        Incremental: the last contribution per target cell is memoized
        under a validity stamp ``(now, t_est, cell version, estimator
        version)``.  The cell version changes on every connection
        attach/detach (and QoS re-sizing); the estimator version on
        every new quadruplet, which is also what invalidates F_HOE
        snapshots.  ``now`` participates because Eq. 4 conditions on
        the extant sojourn, which grows with the clock even while the
        connection set is unchanged — dropping it would trade accuracy
        for hit rate and break bit-identity with the uncached scheme.
        """
        estimator_version = getattr(self.estimator, "version", None)
        if not self.reservation_cache_enabled or estimator_version is None:
            # Disabled, or a duck-typed estimator without change
            # tracking: fall back to the naive full recomputation.
            return expected_handoff_bandwidth(
                self.estimator,
                now,
                self.cell.connections(),
                target_cell,
                t_est,
            )
        stamp = (now, t_est, self.cell.version, estimator_version)
        cached = self._contribution_cache.get(target_cell)
        if cached is not None and cached[0] == stamp:
            self.contribution_cache_hits += 1
            return cached[1]
        value = expected_handoff_bandwidth(
            self.estimator,
            now,
            self.cell.connections(),
            target_cell,
            t_est,
            groups=self.cell.reservation_groups(),
        )
        self._contribution_cache[target_cell] = (stamp, value)
        self.contribution_cache_misses += 1
        return value

    def outgoing_reservation_multi(
        self, now: float, requests: list[tuple[int, float]]
    ) -> list[float]:
        """Batched :meth:`outgoing_reservation` over several targets.

        The coalesced estimation tick asks each supplier for all of its
        pending ``(target_cell, t_est)`` contributions at once, so the
        estimator can walk every ``prev``-bucket a single time and feed
        the Eq. 4 kernel one large batch instead of one batch per
        target.  Memo semantics, counters, and — crucially — the
        returned values are identical to issuing the per-target calls in
        order at the same ``now``.
        """
        estimator = self.estimator
        estimator_version = getattr(estimator, "version", None)
        multi = getattr(estimator, "expected_bandwidth_multi", None)
        if (
            not self.reservation_cache_enabled
            or estimator_version is None
            or multi is None
        ):
            # Cache disabled or a duck-typed / calendar estimator
            # without a batched entry point: per-target calls are the
            # batched path, by definition of equivalence.
            return [
                self.outgoing_reservation(now, target, t_est)
                for target, t_est in requests
            ]
        results: list[float | None] = [None] * len(requests)
        pending: list[tuple[int, float]] = []
        pending_indices: list[int] = []
        for index, (target, t_est) in enumerate(requests):
            stamp = (now, t_est, self.cell.version, estimator_version)
            cached = self._contribution_cache.get(target)
            if cached is not None and cached[0] == stamp:
                self.contribution_cache_hits += 1
                results[index] = cached[1]
            else:
                pending.append((target, t_est))
                pending_indices.append(index)
        if pending:
            values = multi(
                now,
                self.cell.connections(),
                pending,
                groups=self.cell.reservation_groups(),
            )
            for (target, t_est), index, value in zip(
                pending, pending_indices, values
            ):
                stamp = (now, t_est, self.cell.version, estimator_version)
                self._contribution_cache[target] = (stamp, value)
                self.contribution_cache_misses += 1
                results[index] = value
        return results  # type: ignore[return-value]

    def update_target_reservation(self, now: float) -> float:
        """Eq. 6: recompute and install this cell's ``B_r``.

        Models the protocol of §4.1: this BS announces ``T_est`` to each
        neighbour (one message each), every neighbour answers with its
        Eq. 5 contribution (one message each).
        """
        contributions = []
        for neighbor in self.neighbor_stations():
            self.messages_sent += 1  # announce T_est to the neighbour
            contributions.append(
                neighbor.outgoing_reservation(now, self.cell_id, self.t_est)
            )
            neighbor.messages_sent += 1  # neighbour returns B_{i,0}
        reservation = aggregate_reservation(contributions)
        self.cell.reserved_target = reservation
        self.reservation_calculations += 1
        return reservation

    # ------------------------------------------------------------------
    # hand-off bookkeeping
    # ------------------------------------------------------------------
    def neighborhood_max_sojourn(self, now: float) -> float:
        """``T_soj,max``: largest sojourn in the neighbours' estimators."""
        maximum = 0.0
        for neighbor in self.neighbor_stations():
            maximum = max(maximum, neighbor.estimator.max_sojourn(now))
        return maximum

    def on_handoff_arrival(self, dropped: bool, now: float) -> None:
        """Feed the window controller for a hand-off into this cell."""
        self.window.on_handoff(
            dropped, self.neighborhood_max_sojourn(now), now
        )

    def record_departure(
        self,
        now: float,
        prev: int | None,
        next_cell: int,
        entry_time: float,
    ) -> None:
        """Cache the quadruplet of a mobile that just left this cell."""
        self.estimator.record_departure(
            now, prev, next_cell, now - entry_time
        )
