"""Estimation-kernel selection: numpy-batched, numba-jitted, or pure Python.

This is the single place that imports :mod:`numpy` (and, lazily,
:mod:`numba`).  The package works without either — every batched code
path has a pure-Python ``bisect`` fallback — but when numpy is
installed (``pip install repro[fast]``) the columnar F_HOE/Bayes
kernels evaluate whole query batches with ``searchsorted`` + prefix
sums instead of per-connection loops, and when numba is also installed
(``pip install repro[fastest]``) the grouped flush evaluation can run
through jitted binary-search loops with no per-array-op overhead.

Selection order:

1. an explicit :func:`set_kernel` call (``SimulationConfig.kernel``,
   the ``--kernel`` CLI flag, and ``repro-bench --kernel`` end here);
2. the ``REPRO_KERNEL`` environment variable
   (``numpy`` / ``python`` / ``numba``);
3. ``auto``: numpy when importable, python otherwise.  ``auto`` never
   selects numba — JIT compilation is an explicit opt-in so short runs
   don't pay compile cost by surprise.

Requesting ``numpy`` without numpy, or ``numba`` without numba (or
numpy, which it builds on), raises an informative error; the ``auto``
and ``python`` kernels always work.  The resolved choice is logged
once (logger ``repro.kernel``, INFO) so long runs record which kernel
produced them.

Besides selection, this module hosts the grouped gather/scatter used
by the cross-cell coalesced reservation tick
(:meth:`repro.cellular.network.CellularNetwork.flush_reservation_tick`):
:class:`FlushBatch` accumulates the per-``prev``-block Eq. 4 binary
searches of *every* supplier participating in one tick and evaluates
all contributions in a single flush-level arithmetic pass.  All
kernels produce bit-identical results — the vectorized arithmetic
mirrors the scalar walk op for op.
"""

from __future__ import annotations

import logging
import os

logger = logging.getLogger("repro.kernel")

try:  # the only eager numpy import in the package — keep it that way
    import numpy as _numpy
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _numpy = None

#: Whether the optional ``[fast]`` dependency is importable at all.
HAS_NUMPY = _numpy is not None

KERNELS = ("auto", "numpy", "python", "numba")

_active: str | None = None

#: Lazily probed numba availability (``None`` = not probed yet).  The
#: probe only runs when the numba kernel is actually requested: a bare
#: ``import numba`` costs seconds and must not tax numpy/python runs.
_numba_available: bool | None = None

#: The jitted-kernel module (:mod:`repro._kernel_numba`), loaded — and
#: warm-compiled — on first activation of the numba kernel.
_numba_kernels = None


def has_numba() -> bool:
    """Whether the optional numba dependency is importable (lazy probe)."""
    global _numba_available
    if _numba_available is None:
        try:
            import numba  # noqa: F401

            _numba_available = True
        except ImportError:
            _numba_available = False
    return _numba_available


def _load_numba_kernels():
    """Import and warm-compile the jitted kernels (numba kernel only).

    ``numba.njit(cache=True)`` persists compiled machine code next to
    the source, so only the very first selection on a machine pays the
    JIT cost; subsequent runs (and processes) load from the cache.
    """
    global _numba_kernels
    if _numba_kernels is None:
        from repro import _kernel_numba

        _kernel_numba.warm()
        _numba_kernels = _kernel_numba
    return _numba_kernels


def _resolve(requested: str) -> str:
    if requested == "auto":
        return "numpy" if HAS_NUMPY else "python"
    if requested == "numpy" and not HAS_NUMPY:
        raise RuntimeError(
            "the numpy kernel was requested but numpy is not installed;"
            " install the optional extra (pip install 'repro[fast]')"
            " or select --kernel python"
        )
    if requested == "numba":
        if not HAS_NUMPY:
            raise RuntimeError(
                "the numba kernel was requested but numpy is not"
                " installed; install the optional extra"
                " (pip install 'repro[fastest]') or select another kernel"
            )
        if not has_numba():
            raise RuntimeError(
                "the numba kernel was requested but numba is not"
                " installed; install the optional extra"
                " (pip install 'repro[fastest]') or select --kernel"
                " numpy / python — both produce bit-identical results"
            )
    return requested


def set_kernel(name: str) -> str:
    """Select the estimation kernel; returns the resolved name."""
    global _active
    if name not in KERNELS:
        raise ValueError(
            f"unknown kernel {name!r}; expected one of {KERNELS}"
        )
    resolved = _resolve(name)
    if resolved == "numba":
        # Warm the JIT before the first simulated event so compile time
        # never lands inside a measured run.
        _load_numba_kernels()
    if resolved != _active:
        _active = resolved
        logger.info(
            "estimation kernel: %s%s",
            resolved,
            "" if HAS_NUMPY else " (numpy not installed)",
        )
    return resolved


def kernel_name() -> str:
    """The active kernel (``numpy``, ``numba`` or ``python``), resolved
    lazily from ``REPRO_KERNEL`` / availability on first use."""
    if _active is None:
        set_kernel(os.environ.get("REPRO_KERNEL", "auto"))
    return _active  # type: ignore[return-value]


def numpy_or_none():
    """The numpy module when an array kernel is active, else ``None``.

    Batched code paths branch on this exactly once per batch, so the
    per-call overhead is one function call and a string compare.  The
    numba kernel builds on the same ndarray layout, so it also answers
    numpy here; only the pure-python kernel returns ``None``.
    """
    return _numpy if kernel_name() in ("numpy", "numba") else None


# ----------------------------------------------------------------------
# grouped gather/scatter for the cross-cell coalesced tick
# ----------------------------------------------------------------------
class FlushSegment:
    """Per ``(supplier, target)`` output of one coalesced tick.

    Holds the contribution of every supplier row (one per attached
    connection, in the supplier's block order) and, after
    :meth:`FlushBatch.resolve`, the Eq. 5 total summed in the
    supplier's connection-iteration order (``perm`` maps that order to
    row positions) — the exact left-to-right addition sequence of the
    per-supplier path.
    """

    __slots__ = ("n_rows", "perm", "values", "total")

    def __init__(self, n_rows: int, perm) -> None:
        self.n_rows = n_rows
        self.perm = perm
        #: Row contributions; allocated lazily on the first block that
        #: actually produces mass (rows of skipped blocks stay 0.0,
        #: which adds nothing — bit-identically — to the total).
        self.values = None
        self.total = 0.0


class FlushBatch:
    """Cross-supplier accumulator of one coalesced tick's Eq. 4 batches.

    Suppliers register their per-``prev``-block binary-search results
    (:meth:`union_indices` / :meth:`add_part`); :meth:`resolve` then
    evaluates every registered row in **one** flush-level arithmetic
    pass — concatenated gathers, a single masked divide/clip/scale —
    and scatters the contributions back into each segment.

    Only *unit-weight* masses participate (``w == 1.0``, the stationary
    default): their cumulative weights are exact consecutive integers,
    so the Eq. 4 masses equal the search indices themselves and no
    prefix-sum gathers are needed.  The arithmetic replays the scalar
    walk op for op (subtract, divide, ``min``, scale), so every
    contribution — and every total — is bit-identical to the
    per-supplier paths.
    """

    __slots__ = (
        "np",
        "_idx_u",
        "_idx_lo",
        "_idx_hi",
        "_union_lens",
        "_lengths",
        "_bases",
        "_targets",
        "_segments",
    )

    def __init__(self, np) -> None:
        self.np = np
        self._idx_u = []
        self._idx_lo = []
        self._idx_hi = []
        self._union_lens = []
        self._lengths = []
        self._bases = []
        #: ``(segment, row offset)`` per registered part.
        self._targets = []
        self._segments: list[FlushSegment] = []

    def new_segment(self, n_rows: int, perm) -> FlushSegment:
        segment = FlushSegment(n_rows, perm)
        self._segments.append(segment)
        return segment

    def union_indices(self, union_sojourns, extants):
        """Eq. 4 denominator search of one block (shared across its
        requests): count of union sojourns ``<= extant`` per row."""
        # ndarray method, not np.searchsorted: the free-function wrapper
        # costs a dispatch layer per call and this is the hot path.
        return union_sojourns.searchsorted(extants, side="right")

    def add_part(
        self,
        segment: FlushSegment,
        offset: int,
        idx_u,
        union_len: int,
        target_sojourns,
        extants,
        extants_high,
        bases,
    ) -> None:
        """Register one ``(block, request)`` numerator search."""
        self._idx_u.append(idx_u)
        self._idx_lo.append(
            target_sojourns.searchsorted(extants, side="right")
        )
        self._idx_hi.append(
            target_sojourns.searchsorted(extants_high, side="right")
        )
        self._union_lens.append(union_len)
        self._lengths.append(len(bases))
        self._bases.append(bases)
        self._targets.append((segment, offset))

    def resolve(self) -> None:
        """Evaluate all registered parts and total every segment."""
        np = self.np
        if self._lengths:
            idx_u = np.concatenate(self._idx_u)
            idx_lo = np.concatenate(self._idx_lo)
            idx_hi = np.concatenate(self._idx_hi)
            union_len = np.repeat(
                np.asarray(self._union_lens, dtype=np.int64),
                np.asarray(self._lengths, dtype=np.int64),
            )
            # Unit-weight masses: cumulative weight of the first k
            # entries is exactly float(k), so the masses are the search
            # indices themselves and the scalar walk's gathers reduce
            # to integer differences (converted to the same float64
            # values the gathers would have produced).
            den_count = union_len - idx_u
            num_count = idx_hi - idx_lo
            valid = (den_count > 0) & (num_count > 0)
            denominator = den_count.astype(np.float64)
            numerator = num_count.astype(np.float64)
            ratio = np.divide(
                numerator,
                denominator,
                out=np.zeros(len(denominator), dtype=np.float64),
                where=valid,
            )
            np.minimum(ratio, 1.0, out=ratio)
            contributions = np.concatenate(self._bases) * ratio
            cursor = 0
            for (segment, offset), length in zip(
                self._targets, self._lengths
            ):
                if segment.values is None:
                    segment.values = np.zeros(
                        segment.n_rows, dtype=np.float64
                    )
                segment.values[offset:offset + length] = contributions[
                    cursor:cursor + length
                ]
                cursor += length
        for segment in self._segments:
            values = segment.values
            if values is not None and segment.n_rows:
                # cumsum is a strict left-to-right recurrence, so the
                # last element is the same addition sequence — hence
                # the same float — as the per-connection Python loop.
                segment.total = float(
                    np.cumsum(values[segment.perm])[-1]
                )


class NumbaFlushBatch(FlushBatch):
    """Flush batch whose per-part evaluation runs in jitted loops.

    Same registration protocol and bit-identical results; the binary
    searches and per-row arithmetic of each part run inside one
    ``njit`` call (no per-array-op dispatch overhead), writing straight
    into the segment's row array.  :meth:`resolve` then only totals.
    """

    __slots__ = ("kernels",)

    def __init__(self, np, kernels) -> None:
        super().__init__(np)
        self.kernels = kernels

    def union_indices(self, union_sojourns, extants):
        return self.kernels.searchsorted_right(union_sojourns, extants)

    def add_part(
        self,
        segment: FlushSegment,
        offset: int,
        idx_u,
        union_len: int,
        target_sojourns,
        extants,
        extants_high,
        bases,
    ) -> None:
        if segment.values is None:
            segment.values = self.np.zeros(
                segment.n_rows, dtype=self.np.float64
            )
        self.kernels.unit_part_contributions(
            idx_u,
            union_len,
            target_sojourns,
            extants,
            extants_high,
            bases,
            segment.values,
            offset,
        )

    def resolve(self) -> None:
        np = self.np
        for segment in self._segments:
            values = segment.values
            if values is not None and segment.n_rows:
                segment.total = float(
                    np.cumsum(values[segment.perm])[-1]
                )


def flush_batch_or_none():
    """A fresh :class:`FlushBatch` for the active kernel, or ``None``.

    ``None`` under the pure-python kernel — the caller then keeps the
    per-supplier resumable-walk path.
    """
    kernel = kernel_name()
    if kernel == "numba":
        return NumbaFlushBatch(_numpy, _load_numba_kernels())
    if kernel == "numpy":
        return FlushBatch(_numpy)
    return None
