"""Estimation-kernel selection: numpy-batched or pure-Python columnar.

This is the single place that imports :mod:`numpy`.  The package works
without it — every batched code path has a pure-Python ``bisect``
fallback — but when numpy is installed (``pip install repro[fast]``)
the columnar F_HOE/Bayes kernels evaluate whole query batches with
``searchsorted`` + prefix sums instead of per-connection loops.

Selection order:

1. an explicit :func:`set_kernel` call (``SimulationConfig.kernel``,
   the ``--kernel`` CLI flag, and ``repro-bench --kernel`` end here);
2. the ``REPRO_KERNEL`` environment variable (``numpy`` / ``python``);
3. ``auto``: numpy when importable, python otherwise.

The resolved choice is logged once (logger ``repro.kernel``, INFO) so
long runs record which kernel produced them.
"""

from __future__ import annotations

import logging
import os

logger = logging.getLogger("repro.kernel")

try:  # the only numpy import in the package — keep it that way
    import numpy as _numpy
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _numpy = None

#: Whether the optional ``[fast]`` dependency is importable at all.
HAS_NUMPY = _numpy is not None

KERNELS = ("auto", "numpy", "python")

_active: str | None = None


def _resolve(requested: str) -> str:
    if requested == "auto":
        return "numpy" if HAS_NUMPY else "python"
    if requested == "numpy" and not HAS_NUMPY:
        raise RuntimeError(
            "the numpy kernel was requested but numpy is not installed;"
            " install the optional extra (pip install 'repro[fast]')"
            " or select --kernel python"
        )
    return requested


def set_kernel(name: str) -> str:
    """Select the estimation kernel; returns the resolved name."""
    global _active
    if name not in KERNELS:
        raise ValueError(
            f"unknown kernel {name!r}; expected one of {KERNELS}"
        )
    resolved = _resolve(name)
    if resolved != _active:
        _active = resolved
        logger.info(
            "estimation kernel: %s%s",
            resolved,
            "" if HAS_NUMPY else " (numpy not installed)",
        )
    return resolved


def kernel_name() -> str:
    """The active kernel (``numpy`` or ``python``), resolving lazily."""
    if _active is None:
        set_kernel(os.environ.get("REPRO_KERNEL", "auto"))
    return _active  # type: ignore[return-value]


def numpy_or_none():
    """The numpy module when the numpy kernel is active, else ``None``.

    Batched code paths branch on this exactly once per batch, so the
    per-call overhead is one function call and a string compare.
    """
    return _numpy if kernel_name() == "numpy" else None
