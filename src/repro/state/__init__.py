"""Durable simulation state: versioned checkpoints and warm-starts.

The paper's mobility estimator (§3) aggregates hand-off quadruplets
across ``N_win`` previous days — state that is only meaningful if it
outlives a single process.  This package persists the full warm state
of a run (quadruplet caches, window controllers, RNG positions, the
pending event queue, run metrics) into an atomic, versioned,
checksummed on-disk directory, and restores it either

* **exactly** — :func:`restore_simulator` rebuilds a mid-run simulator
  that continues bit-identically (same ``metrics_key()`` as the
  uninterrupted run), or
* **warm-only** — :class:`CheckpointWarmStart` hydrates a *fresh* run's
  estimator history (rebased backwards in time the way
  ``SharedColumnStore`` rebases worker imports), which is what the
  multi-day :func:`run_campaign` chains between simulated days.
"""

from repro.state.campaign import CampaignDay, run_campaign
from repro.state.checkpoint import (
    CheckpointError,
    Checkpointer,
    CheckpointWarmStart,
    restore_simulator,
    save_checkpoint,
)
from repro.state.format import (
    SCHEMA_VERSION,
    StateCorruptionError,
    StateFormatError,
    StateSchemaError,
)
from repro.state.inspect import inspect_state

__all__ = [
    "CampaignDay",
    "CheckpointError",
    "CheckpointWarmStart",
    "Checkpointer",
    "SCHEMA_VERSION",
    "StateCorruptionError",
    "StateFormatError",
    "StateSchemaError",
    "inspect_state",
    "restore_simulator",
    "run_campaign",
    "save_checkpoint",
]
