"""Multi-day campaign runner: chain simulated days through the store.

The paper's estimator is explicitly multi-day — ``F_HOE`` aggregates
quadruplets across ``N_win`` previous days with day-age weights ``w_n``
(Eq. 3) — but one simulated day is already millions of events, so long
campaigns want to run day by day, possibly across process lifetimes.

:func:`run_campaign` runs ``N`` one-day simulations.  Each day:

* starts **warm**: the previous day's checkpoint hydrates the fresh
  simulator through :class:`~repro.state.checkpoint.CheckpointWarmStart`
  — quadruplet history rebased one period backwards (so day-age
  weighting sees yesterday's entries at ``n = 1``), entries beyond the
  ``N_win`` horizon expired, and the window controllers' ``T_est``
  position carried over;
* draws from a **distinct RNG universe**: per-day seeds are derived
  with :meth:`RandomStreams.spawn`, so days see different traffic while
  the whole campaign stays reproducible from the base seed;
* ends with a durable checkpoint in ``state_dir/day_NNN`` and one JSONL
  line of the day's ``P_CB`` / ``P_HD`` / mean ``T_est``.

A campaign interrupted after day ``k`` resumes by re-running with the
same arguments: completed days are detected by their on-disk state and
re-used instead of re-simulated.
"""

from __future__ import annotations

import json
import time as wall_clock
from dataclasses import asdict, dataclass, replace
from pathlib import Path

from repro.des.random import RandomStreams
from repro.obs import get_logger, get_telemetry
from repro.state.checkpoint import CheckpointWarmStart, save_checkpoint
from repro.state.format import StateFormatError, load_manifest

_log = get_logger("repro.state.campaign")

_REPORT_NAME = "campaign.jsonl"


@dataclass
class CampaignDay:
    """One day's outcome — a row of the campaign report."""

    day: int
    seed: int
    p_cb: float
    p_hd: float
    mean_t_est: float
    new_requests: int
    handoff_attempts: int
    handoff_drops: int
    quadruplets: int
    events_processed: int
    wall_seconds: float
    state_path: str


def day_seed(base_seed: int, day: int) -> int:
    """Per-day master seed (stable sha256 derivation, collision-free)."""
    return RandomStreams(base_seed).spawn(day).seed


def _day_state_path(state_dir: Path, day: int) -> Path:
    return state_dir / f"day_{day:03d}"


def _day_config(config, day: int, state_dir: Path, carry_windows: bool):
    base_label = config.label or config.scheme
    warm = None
    if day > 0:
        warm = CheckpointWarmStart(
            _day_state_path(state_dir, day - 1),
            rebase_seconds=config.day_seconds,
            carry_windows=carry_windows,
        )
    return replace(
        config,
        duration=config.day_seconds,
        seed=day_seed(config.seed, day),
        warm_state=warm,
        label=f"{base_label} day {day + 1}",
    )


def run_campaign(
    config,
    days: int,
    state_dir: str | Path,
    jsonl_path: str | Path | None = None,
    carry_windows: bool = True,
) -> list[CampaignDay]:
    """Run ``days`` chained one-day simulations; return per-day reports.

    ``config`` describes one day: ``config.day_seconds`` becomes each
    day's horizon (``config.duration`` is ignored).  ``state_dir``
    receives one durable checkpoint per day plus ``campaign.jsonl``
    (or ``jsonl_path`` if given); existing day states from an earlier,
    interrupted invocation are reused, making the campaign resumable.
    """
    from repro.simulation.simulator import CellularSimulator

    if days < 1:
        raise ValueError("a campaign needs at least one day")
    state_dir = Path(state_dir)
    state_dir.mkdir(parents=True, exist_ok=True)
    report_path = (
        Path(jsonl_path) if jsonl_path is not None else state_dir / _REPORT_NAME
    )
    reports: list[CampaignDay] = []
    completed = _load_completed(report_path, state_dir, days)
    if completed:
        reports.extend(completed)
        _log.info(
            "campaign resumed",
            extra={"days_done": len(completed), "days_total": days},
        )
    # Rewrite the report from the verified prefix: a row whose
    # checkpoint did not survive must not linger in the JSONL.
    with open(report_path, "w") as report_file:
        for report in completed:
            report_file.write(json.dumps(asdict(report)) + "\n")
        report_file.flush()
        for day in range(len(completed), days):
            started = wall_clock.perf_counter()
            day_config = _day_config(config, day, state_dir, carry_windows)
            simulator = CellularSimulator(day_config)
            result = simulator.run()
            state_path = save_checkpoint(
                simulator, _day_state_path(state_dir, day)
            )
            stations = simulator.network.stations
            report = CampaignDay(
                day=day,
                seed=day_config.seed,
                p_cb=result.blocking_probability,
                p_hd=result.dropping_probability,
                mean_t_est=(
                    sum(station.t_est for station in stations)
                    / len(stations)
                ),
                new_requests=result.total_new_requests,
                handoff_attempts=result.total_handoff_attempts,
                handoff_drops=sum(
                    cell.handoff_drops for cell in result.cells
                ),
                quadruplets=sum(
                    station.estimator.cache.size() for station in stations
                ),
                events_processed=result.events_processed,
                wall_seconds=wall_clock.perf_counter() - started,
                state_path=str(state_path),
            )
            reports.append(report)
            report_file.write(json.dumps(asdict(report)) + "\n")
            report_file.flush()
            telemetry = get_telemetry()
            if telemetry.enabled:
                telemetry.counter("state.campaign_days").inc()
            _log.info(
                "campaign day complete",
                extra={
                    "day": day,
                    "p_cb": round(report.p_cb, 6),
                    "p_hd": round(report.p_hd, 6),
                    "mean_t_est": round(report.mean_t_est, 3),
                    "quadruplets": report.quadruplets,
                },
            )
    return reports


def _load_completed(
    report_path: Path, state_dir: Path, days: int
) -> list[CampaignDay]:
    """Days already finished by an earlier invocation, in order.

    A day counts as done only if its JSONL row *and* its checkpoint
    directory are both intact; the first gap truncates the resumable
    prefix (later days depend on the chain).
    """
    if not report_path.is_file():
        return []
    rows: dict[int, CampaignDay] = {}
    for line in report_path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
            rows[data["day"]] = CampaignDay(**data)
        except (ValueError, TypeError, KeyError):
            break
    completed: list[CampaignDay] = []
    for day in range(days):
        report = rows.get(day)
        if report is None:
            break
        try:
            load_manifest(_day_state_path(state_dir, day))
        except StateFormatError:
            break
        completed.append(report)
    return completed
