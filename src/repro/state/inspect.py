"""``repro state inspect``: manifest summary + blob CRC verification.

Prints what a checkpoint claims to contain (schema version, clock,
scenario, per-cell quadruplet counts) and verifies every file's CRC32
against the manifest.  Exit status is the contract: 0 only when every
checksum matches and the schema is readable — CI's corruption smoke
flips one blob byte and asserts a non-zero exit.
"""

from __future__ import annotations

import time as wall_clock
from pathlib import Path
from typing import Callable

from repro.state.format import (
    MANIFEST_NAME,
    load_manifest,
    verify_state_dir,
)

__all__ = ["inspect_state"]


def inspect_state(
    path: str | Path, out: Callable[[str], None] = print
) -> int:
    """Describe and verify the checkpoint at ``path``; return exit code.

    Raises :class:`~repro.state.format.StateFormatError` (or its
    schema/corruption subclasses) when the manifest itself is missing,
    unparseable, or written by an incompatible schema — per-file
    corruption below the manifest is *reported* and turns the exit
    code non-zero instead.
    """
    path = Path(path)
    manifest = load_manifest(path)
    created = manifest.get("created_unix")
    counts = manifest.get("counts", {})
    out(f"Checkpoint: {path}")
    out(
        f"  format:           {manifest['format']} "
        f"schema v{manifest['schema_version']}"
    )
    if created is not None:
        stamp = wall_clock.strftime(
            "%Y-%m-%d %H:%M:%S UTC", wall_clock.gmtime(created)
        )
        out(f"  created:          {stamp}")
    out(f"  label:            {manifest.get('label', '?')}")
    out(f"  seed:             {manifest.get('seed', '?')}")
    out(f"  virtual clock:    {manifest.get('clock', 0.0):.3f} s")
    out(
        f"  connections:      {counts.get('connections', '?')}"
        f"   pending events: {counts.get('pending_events', '?')}"
        f"   processed: {counts.get('events_processed', '?')}"
    )
    out(f"  quadruplets:      {counts.get('quadruplets', '?')}")
    out("")
    out(f"  {'file':<28} {'cell':>4} {'quads':>8} {'bytes':>10}  crc")
    rows = verify_state_dir(path)
    by_path = {entry["path"]: entry for entry in manifest.get("files", [])}
    failures = 0
    for row in rows:
        entry = by_path.get(row["path"], {})
        cell = entry.get("cell", "")
        quads = entry.get("quadruplets", "")
        status = "OK" if row["ok"] else "FAIL"
        if not row["ok"]:
            failures += 1
        out(
            f"  {row['path']:<28} {cell!s:>4} {quads!s:>8}"
            f" {row['bytes']:>10}  {status}"
        )
        if not row["ok"]:
            out(f"    !! {row['error']}")
    out("")
    manifest_bytes = (path / MANIFEST_NAME).stat().st_size
    out(f"  {MANIFEST_NAME:<28} {'':>4} {'':>8} {manifest_bytes:>10}  -")
    if failures:
        out(f"Integrity: FAILED ({failures}/{len(rows)} files corrupt)")
        return 1
    out(f"Integrity: OK ({len(rows)} files verified)")
    return 0
