"""``repro state inspect``: manifest summary + blob CRC verification.

Prints what a checkpoint claims to contain (schema version, clock,
scenario, per-cell quadruplet counts) and verifies every file's CRC32
against the manifest.  Exit status is the contract: 0 only when every
checksum matches and the schema is readable — CI's corruption smoke
flips one blob byte and asserts a non-zero exit.
"""

from __future__ import annotations

import json
import time as wall_clock
from pathlib import Path
from typing import Callable

from repro.state.format import (
    MANIFEST_NAME,
    load_manifest,
    verify_state_dir,
)

__all__ = ["inspect_state"]


def _summarise_series(path: Path, out: Callable[[str], None]) -> None:
    """Print a one-block summary of a series.jsonl sidecar, if present."""
    from repro.obs.timeseries import read_series, series_summary

    series_path = path / "series.jsonl"
    if not series_path.exists():
        return
    summary = series_summary(read_series(series_path))
    if summary is None:
        return
    out("")
    out(f"  time series:      {summary['samples']} samples,"
        f" t={summary['t_first']:g}..{summary['t_last']:g}s")
    shards = summary["shards"]
    if shards:
        out(f"    shards:         {', '.join(str(s) for s in shards)}")
    out(f"    peak rate:      {summary['peak_events_per_s']:,.0f} events/s")
    if summary["last_p_cb"] is not None:
        out(f"    last P_CB/P_HD: {summary['last_p_cb']:.4f}"
            f" / {summary['last_p_hd']:.4f}")


def _summarise_telemetry(path: Path, out: Callable[[str], None]) -> None:
    """Print the headline counters of a telemetry.json sidecar."""
    telemetry_path = path / "telemetry.json"
    if not telemetry_path.exists():
        return
    try:
        snapshot = json.loads(telemetry_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return
    counters = snapshot.get("counters", {})
    out("")
    out(f"  telemetry:        run_id={snapshot.get('run_id', '?')}"
        f" ({len(counters)} counters,"
        f" {len(snapshot.get('gauges', {}))} gauges)")
    events = counters.get("des.events_fired")
    if events is not None:
        out(f"    events fired:   {events:,.0f}")


def _inspect_campaign(path: Path, out: Callable[[str], None]) -> int:
    """Summarise a campaign directory (per-day JSONL, no manifest)."""
    from repro.obs.timeseries import iter_series

    jsonl = path / "campaign.jsonl"
    with jsonl.open("r", encoding="utf-8") as handle:
        days = list(iter_series(handle))
    out(f"Campaign: {path}")
    out(f"  days:             {len(days)}")
    if days:
        last = days[-1]
        out(f"  last day:         day={last.get('day', '?')}"
            f"  P_CB={last.get('p_cb', 0.0):.4f}"
            f"  P_HD={last.get('p_hd', 0.0):.4f}")
        total = sum(int(day.get("events", 0)) for day in days)
        out(f"  total events:     {total:,}")
    checkpoints = sorted(
        entry.name for entry in path.iterdir() if entry.is_dir()
    )
    if checkpoints:
        out(f"  checkpoints:      {len(checkpoints)}"
            f" ({checkpoints[0]} .. {checkpoints[-1]})")
    _summarise_series(path, out)
    return 0


def inspect_state(
    path: str | Path, out: Callable[[str], None] = print
) -> int:
    """Describe and verify the checkpoint at ``path``; return exit code.

    A campaign directory (``campaign.jsonl``, no manifest) gets a
    per-day summary instead of CRC verification.  For checkpoints,
    raises :class:`~repro.state.format.StateFormatError` (or its
    schema/corruption subclasses) when the manifest itself is missing,
    unparseable, or written by an incompatible schema — per-file
    corruption below the manifest is *reported* and turns the exit
    code non-zero instead.
    """
    path = Path(path)
    if (
        not (path / MANIFEST_NAME).exists()
        and (path / "campaign.jsonl").exists()
    ):
        return _inspect_campaign(path, out)
    manifest = load_manifest(path)
    created = manifest.get("created_unix")
    counts = manifest.get("counts", {})
    out(f"Checkpoint: {path}")
    out(
        f"  format:           {manifest['format']} "
        f"schema v{manifest['schema_version']}"
    )
    if created is not None:
        stamp = wall_clock.strftime(
            "%Y-%m-%d %H:%M:%S UTC", wall_clock.gmtime(created)
        )
        out(f"  created:          {stamp}")
    out(f"  label:            {manifest.get('label', '?')}")
    out(f"  seed:             {manifest.get('seed', '?')}")
    out(f"  virtual clock:    {manifest.get('clock', 0.0):.3f} s")
    out(
        f"  connections:      {counts.get('connections', '?')}"
        f"   pending events: {counts.get('pending_events', '?')}"
        f"   processed: {counts.get('events_processed', '?')}"
    )
    out(f"  quadruplets:      {counts.get('quadruplets', '?')}")
    out("")
    out(f"  {'file':<28} {'cell':>4} {'quads':>8} {'bytes':>10}  crc")
    rows = verify_state_dir(path)
    by_path = {entry["path"]: entry for entry in manifest.get("files", [])}
    failures = 0
    for row in rows:
        entry = by_path.get(row["path"], {})
        cell = entry.get("cell", "")
        quads = entry.get("quadruplets", "")
        status = "OK" if row["ok"] else "FAIL"
        if not row["ok"]:
            failures += 1
        out(
            f"  {row['path']:<28} {cell!s:>4} {quads!s:>8}"
            f" {row['bytes']:>10}  {status}"
        )
        if not row["ok"]:
            out(f"    !! {row['error']}")
    out("")
    manifest_bytes = (path / MANIFEST_NAME).stat().st_size
    out(f"  {MANIFEST_NAME:<28} {'':>4} {'':>8} {manifest_bytes:>10}  -")
    _summarise_telemetry(path, out)
    _summarise_series(path, out)
    if failures:
        out(f"Integrity: FAILED ({failures}/{len(rows)} files corrupt)")
        return 1
    out(f"Integrity: OK ({len(rows)} files verified)")
    return 0
