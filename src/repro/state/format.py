"""On-disk container for durable simulation state.

A checkpoint is a *directory*::

    <name>/
        manifest.json       format tag, schema version, config
                            fingerprint, clock, and a checksummed
                            entry for every other file
        runtime.json        JSON-serializable runtime state (engine
                            queue, connections, RNG positions, metrics)
        cells/cell_0000.bin per-cell binary column blobs (quadruplet
                            history + optional F_HOE snapshots)

Design points:

* **Atomic**: everything is written into a temporary sibling directory,
  each file is flushed and ``fsync``'d, and the directory is published
  with a single ``rename`` (an existing target is rotated aside first —
  ``os.replace`` cannot replace a non-empty directory).  A reader never
  observes a half-written checkpoint.
* **Checksummed**: the manifest records a CRC32 per file; every read
  verifies it and raises :class:`StateCorruptionError` on mismatch.
* **Versioned**: the manifest carries ``schema_version``; a mismatch
  raises :class:`StateSchemaError` with a migration hint instead of
  mis-parsing bytes.

Blob layout (all little-endian)::

    "RQC1"                              magic
    u32  n_pairs
    per pair:
        i32 prev                        -2 encodes ``prev = None``
        i32 next                        -1 is EXIT_CELL (valid)
        u32 n
        n * f64 event times (record order)
        n * f64 sojourns
    u8   has_snapshots
    if has_snapshots:
        u32  n_snapshots
        per snapshot:
            i32 prev, f64 built_at, u32 n_next
            per next: i32 next, column sojourns, column cumulative
            column union sojourns, column union cumulative
    (column = u32 length + that many f64)

JSON floats round-trip exactly (``repr`` produces the shortest string
that parses back to the same double), so ``runtime.json`` can carry
clock values and accumulated bandwidth without precision loss; the
binary blobs exist for *size*, not precision — a warm L=200 state holds
tens of thousands of quadruplets per cell.
"""

from __future__ import annotations

import json
import os
import shutil
import struct
import zlib
from pathlib import Path
from typing import Iterable

FORMAT_NAME = "repro-state"
SCHEMA_VERSION = 1

MANIFEST_NAME = "manifest.json"
RUNTIME_NAME = "runtime.json"
CELLS_DIR = "cells"

BLOB_MAGIC = b"RQC1"
#: Encodes ``prev = None`` (birth cell) in the i32 ``prev`` slot.
#: Distinct from ``EXIT_CELL = -1``, which is a valid *next* value
#: (``prev`` is never -1: exits terminate connections).
PREV_NONE = -2

_HEADER = struct.Struct("<4sI")
_PAIR_HEADER = struct.Struct("<iiI")
_SNAP_HEADER = struct.Struct("<idI")
_I32 = struct.Struct("<i")
_U32 = struct.Struct("<I")
_U8 = struct.Struct("<B")


class StateFormatError(ValueError):
    """The bytes/files do not form a valid state container."""


class StateSchemaError(StateFormatError):
    """The container is valid but written by an incompatible schema."""


class StateCorruptionError(StateFormatError):
    """A checksum failed: the container was truncated or bit-flipped."""


def crc32_of(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


def encode_prev(prev: int | None) -> int:
    return PREV_NONE if prev is None else int(prev)


def decode_prev(raw: int) -> int | None:
    return None if raw == PREV_NONE else raw


# ----------------------------------------------------------------------
# cell blobs
# ----------------------------------------------------------------------
def _pack_column(values: Iterable[float]) -> bytes:
    values = list(values)
    return _U32.pack(len(values)) + struct.pack(f"<{len(values)}d", *values)


def pack_cell_blob(pairs, snapshots=None) -> bytes:
    """Serialize one cell's quadruplet history (and F_HOE snapshots).

    ``pairs`` maps ``(prev, next)`` to parallel ``(times, sojourns)``
    record-order columns — exactly what
    :meth:`repro.estimation.cache.QuadrupletCache.export_columns`
    returns.  ``snapshots`` (finite ``T_int`` only; ``None`` otherwise)
    is a list of ``{"prev", "built_at", "per_next", "union"}`` dicts
    where each column pair is ``(sojourns, cumulative)``.
    """
    chunks = [_HEADER.pack(BLOB_MAGIC, len(pairs))]
    for (prev, next_cell), (times, sojourns) in pairs.items():
        if len(times) != len(sojourns):
            raise StateFormatError(
                f"pair ({prev}, {next_cell}): column lengths differ"
            )
        chunks.append(
            _PAIR_HEADER.pack(encode_prev(prev), int(next_cell), len(times))
        )
        chunks.append(struct.pack(f"<{len(times)}d", *times))
        chunks.append(struct.pack(f"<{len(sojourns)}d", *sojourns))
    if snapshots is None:
        chunks.append(_U8.pack(0))
    else:
        chunks.append(_U8.pack(1))
        chunks.append(_U32.pack(len(snapshots)))
        for snapshot in snapshots:
            per_next = snapshot["per_next"]
            chunks.append(
                _SNAP_HEADER.pack(
                    encode_prev(snapshot["prev"]),
                    float(snapshot["built_at"]),
                    len(per_next),
                )
            )
            for next_cell, (sojourns, cumulative) in per_next.items():
                chunks.append(_I32.pack(int(next_cell)))
                chunks.append(_pack_column(sojourns))
                chunks.append(_pack_column(cumulative))
            union_sojourns, union_cumulative = snapshot["union"]
            chunks.append(_pack_column(union_sojourns))
            chunks.append(_pack_column(union_cumulative))
    return b"".join(chunks)


class _Reader:
    """Bounds-checked sequential reader over a blob."""

    __slots__ = ("data", "offset")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.offset = 0

    def take(self, spec: struct.Struct):
        end = self.offset + spec.size
        if end > len(self.data):
            raise StateCorruptionError("blob truncated")
        values = spec.unpack_from(self.data, self.offset)
        self.offset = end
        return values

    def floats(self, count: int) -> list[float]:
        end = self.offset + 8 * count
        if end > len(self.data):
            raise StateCorruptionError("blob truncated inside a column")
        values = list(struct.unpack_from(f"<{count}d", self.data, self.offset))
        self.offset = end
        return values

    def column(self) -> list[float]:
        (count,) = self.take(_U32)
        return self.floats(count)


def unpack_cell_blob(data: bytes):
    """Inverse of :func:`pack_cell_blob` — ``(pairs, snapshots)``."""
    reader = _Reader(data)
    magic, n_pairs = reader.take(_HEADER)
    if magic != BLOB_MAGIC:
        raise StateFormatError(
            f"bad cell blob magic {magic!r} (expected {BLOB_MAGIC!r})"
        )
    pairs = {}
    for _ in range(n_pairs):
        raw_prev, next_cell, count = reader.take(_PAIR_HEADER)
        times = reader.floats(count)
        sojourns = reader.floats(count)
        pairs[(decode_prev(raw_prev), next_cell)] = (times, sojourns)
    (has_snapshots,) = reader.take(_U8)
    snapshots = None
    if has_snapshots:
        (n_snapshots,) = reader.take(_U32)
        snapshots = []
        for _ in range(n_snapshots):
            raw_prev, built_at, n_next = reader.take(_SNAP_HEADER)
            per_next = {}
            for _ in range(n_next):
                (next_cell,) = reader.take(_I32)
                per_next[next_cell] = (reader.column(), reader.column())
            union = (reader.column(), reader.column())
            snapshots.append(
                {
                    "prev": decode_prev(raw_prev),
                    "built_at": built_at,
                    "per_next": per_next,
                    "union": union,
                }
            )
    if reader.offset != len(data):
        raise StateCorruptionError(
            f"{len(data) - reader.offset} trailing bytes after blob payload"
        )
    return pairs, snapshots


def cell_blob_name(cell_id: int) -> str:
    return f"{CELLS_DIR}/cell_{cell_id:04d}.bin"


# ----------------------------------------------------------------------
# directory container
# ----------------------------------------------------------------------
def _fsync_dir(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fsync on dirs can be unsupported
        pass
    finally:
        os.close(fd)


def publish_state_dir(path: str | Path, files: dict[str, bytes]) -> Path:
    """Atomically write ``files`` (relpath -> bytes) as directory ``path``.

    The payload lands in a temporary sibling, every file is fsync'd,
    and one ``rename`` publishes the whole directory.  An existing
    checkpoint at ``path`` is rotated aside first and removed only
    after the new one is in place, so a crash at any instant leaves
    either the old or the new checkpoint readable.
    """
    path = Path(path)
    parent = path.parent
    parent.mkdir(parents=True, exist_ok=True)
    tmp = parent / f".{path.name}.tmp.{os.getpid()}"
    if tmp.exists():
        shutil.rmtree(tmp)
    tmp.mkdir(parents=True)
    seen_dirs = {tmp}
    for relative, data in files.items():
        target = tmp / relative
        target.parent.mkdir(parents=True, exist_ok=True)
        seen_dirs.add(target.parent)
        with open(target, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
    for directory in seen_dirs:
        _fsync_dir(directory)
    rotated = None
    if path.exists():
        rotated = parent / f".{path.name}.old.{os.getpid()}"
        if rotated.exists():
            shutil.rmtree(rotated)
        os.rename(path, rotated)
    os.rename(tmp, path)
    _fsync_dir(parent)
    if rotated is not None:
        shutil.rmtree(rotated)
    return path


def load_manifest(path: str | Path) -> dict:
    """Read and gate ``manifest.json`` (format tag + schema version)."""
    path = Path(path)
    manifest_path = path / MANIFEST_NAME
    if not manifest_path.is_file():
        raise StateFormatError(
            f"not a state directory (no {MANIFEST_NAME}): {path}"
        )
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise StateCorruptionError(
            f"unreadable manifest at {manifest_path}: {error}"
        ) from error
    if manifest.get("format") != FORMAT_NAME:
        raise StateFormatError(
            f"{manifest_path} is not a {FORMAT_NAME} manifest"
        )
    version = manifest.get("schema_version")
    if version != SCHEMA_VERSION:
        raise StateSchemaError(
            f"state schema v{version} at {path} is not readable by this "
            f"build (supports v{SCHEMA_VERSION}); re-create the checkpoint "
            f"with this version, or load it with the version that wrote it"
        )
    return manifest


def read_entry(path: str | Path, entry: dict) -> bytes:
    """Read one manifest file entry, verifying size and CRC32."""
    target = Path(path) / entry["path"]
    try:
        data = target.read_bytes()
    except OSError as error:
        raise StateCorruptionError(
            f"missing state file {target}: {error}"
        ) from error
    if len(data) != entry["bytes"]:
        raise StateCorruptionError(
            f"{target}: expected {entry['bytes']} bytes, found {len(data)}"
        )
    actual = crc32_of(data)
    if actual != entry["crc32"]:
        raise StateCorruptionError(
            f"{target}: CRC32 mismatch "
            f"(manifest {entry['crc32']:#010x}, file {actual:#010x})"
        )
    return data


def verify_state_dir(path: str | Path) -> list[dict]:
    """CRC-verify every manifest entry; one report row per file.

    Rows are ``{"path", "bytes", "crc32", "ok", "error"}``.  Raises
    only for an unreadable/incompatible manifest — per-file corruption
    is reported, not raised, so ``inspect`` can show the full picture.
    """
    manifest = load_manifest(path)
    rows = []
    for entry in manifest.get("files", []):
        row = {
            "path": entry["path"],
            "bytes": entry["bytes"],
            "crc32": entry["crc32"],
            "ok": True,
            "error": "",
        }
        try:
            read_entry(path, entry)
        except StateCorruptionError as error:
            row["ok"] = False
            row["error"] = str(error)
        rows.append(row)
    return rows
