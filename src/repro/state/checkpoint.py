"""Checkpoint capture and bit-identical restore of a live simulator.

:func:`save_checkpoint` walks a :class:`CellularSimulator` — between
events or after its run — and persists everything the continuation
depends on: the engine clock and pending event queue (with scheduling
order stamps), every named RNG position, the live connections and
their per-cell attach order, quadruplet caches (binary column blobs),
finite-``T_int`` F_HOE snapshots, window-controller state, run metrics
and the observability counters.

:func:`restore_simulator` rebuilds a simulator in a fresh process that
continues **bit-identically**: the restored run fires exactly the
events the uninterrupted run would have fired, in the same order, with
the same random draws — so its final ``metrics_key()`` matches.

The two order-preservation mechanisms worth knowing about:

* **Sequence stamps.**  Simultaneous events tie-break on
  ``(priority, scheduling order)``.  Absolute stamp values need not
  survive a restore — re-scheduling the pending events sorted by their
  *original* stamps preserves every relative order, and continuation
  events always stamp higher, exactly as in the uninterrupted run.
* **Suppressed draws.**  The simulator draws the next arrival/sample
  even when it falls beyond the horizon, and then schedules nothing.
  Those draws are recorded with the stamp the engine *would* have
  issued; on restore with a longer horizon they are merged into the
  queue at their stamp (a suppressed draw sorts before a real event
  with the same stamp — it would have consumed that stamp first).
"""

from __future__ import annotations

import json
import shutil
import time as wall_clock
from dataclasses import fields
from enum import Enum
from pathlib import Path
from typing import TYPE_CHECKING

from repro.des.engine import Engine
from repro.des.events import EventPriority
from repro.estimation.estimator import MobilityEstimator
from repro.estimation.function import HandoffEstimationFunction, _Mass
from repro.mobility.mobile import Mobile, peek_mobile_ids, reset_mobile_ids
from repro.mobility.models import LinearMobilityModel, Transition
from repro.obs import get_logger, get_telemetry, get_tracer
from repro.simulation.metrics import HourlyBucket, TracePoint
from repro.state.format import (
    FORMAT_NAME,
    MANIFEST_NAME,
    RUNTIME_NAME,
    SCHEMA_VERSION,
    StateFormatError,
    cell_blob_name,
    crc32_of,
    decode_prev,
    encode_prev,
    load_manifest,
    pack_cell_blob,
    publish_state_dir,
    read_entry,
    unpack_cell_blob,
)
from repro.traffic.classes import ADAPTIVE_VIDEO, VIDEO, VOICE
from repro.traffic.connection import (
    Connection,
    peek_connection_ids,
    reset_connection_ids,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulation.simulator import CellularSimulator

_log = get_logger("repro.state")

_TRAFFIC_CLASSES = {
    VOICE.name: VOICE,
    VIDEO.name: VIDEO,
    ADAPTIVE_VIDEO.name: ADAPTIVE_VIDEO,
}

#: Config fields that do not change what the simulation *is* — a
#: checkpoint may be resumed under a different horizon, label, or
#: observability setup (none of them feed the event sequence).
_FINGERPRINT_EXEMPT = {
    "duration",
    "label",
    "telemetry",
    "progress_interval",
    "run_id",
    "kernel",
    "warm_state",
    "series_interval",
    "series_wall_interval",
    "series_path",
    "series_max_samples",
    "trace",
}


class CheckpointError(RuntimeError):
    """The simulator's configuration cannot be checkpointed faithfully."""


def _encode_rng(state) -> list:
    """``random.Random.getstate()`` as JSON: [version, ints, gauss_next]."""
    version, internal, gauss_next = state
    return [version, list(internal), gauss_next]


# ----------------------------------------------------------------------
# config fingerprint
# ----------------------------------------------------------------------
def _fingerprint_value(value):
    if isinstance(value, Enum):
        return value.value
    if isinstance(value, tuple):
        return [_fingerprint_value(item) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(key): _fingerprint_value(val) for key, val in value.items()}
    # Profile objects and other composites: their repr is stable enough
    # to detect a scenario mismatch, which is all the fingerprint does.
    return repr(value)


def config_fingerprint(config) -> dict:
    """The scenario-identity slice of a :class:`SimulationConfig`."""
    return {
        field.name: _fingerprint_value(getattr(config, field.name))
        for field in fields(config)
        if field.name not in _FINGERPRINT_EXEMPT
    }


def _check_fingerprint(saved: dict, config) -> None:
    current = config_fingerprint(config)
    mismatched = sorted(
        name
        for name in set(saved) | set(current)
        if saved.get(name) != current.get(name)
    )
    if mismatched:
        details = ", ".join(
            f"{name}: saved={saved.get(name)!r} != current={current.get(name)!r}"
            for name in mismatched
        )
        raise StateFormatError(
            f"checkpoint was taken under a different scenario ({details})"
        )


# ----------------------------------------------------------------------
# capture
# ----------------------------------------------------------------------
def _require_checkpointable(sim: "CellularSimulator") -> None:
    if sim.extensions:
        raise CheckpointError(
            "cannot checkpoint a run with extensions installed "
            "(extension state is outside the state schema)"
        )
    if type(sim.mobility) is not LinearMobilityModel:
        raise CheckpointError(
            f"cannot checkpoint mobility model "
            f"{type(sim.mobility).__name__}: only the stateless "
            f"LinearMobilityModel is supported"
        )
    for station in sim.network.stations:
        if type(station.estimator) is not MobilityEstimator:
            raise CheckpointError(
                f"cannot checkpoint estimator "
                f"{type(station.estimator).__name__} of cell "
                f"{station.cell_id}: only MobilityEstimator is supported"
            )
    if sim.network._reservation_dirty:
        raise CheckpointError(
            "reservation tick has undrained dirty cells; checkpoints "
            "must be taken between events"
        )


def _capture_connection(connection: Connection) -> dict:
    if connection.traffic_class.name not in _TRAFFIC_CLASSES:
        raise CheckpointError(
            f"unknown traffic class {connection.traffic_class.name!r}"
        )
    mobile = connection.mobile
    return {
        "id": connection.connection_id,
        "class": connection.traffic_class.name,
        "start": connection.start_time,
        "cell": connection.cell_id,
        "prev": connection.prev_cell,
        "entry": connection.cell_entry_time,
        "handoffs": connection.handoff_count,
        "alloc": connection.allocated_bandwidth,
        "mobile": None
        if mobile is None
        else {
            "id": mobile.mobile_id,
            "pos": mobile.position_km,
            "speed": mobile.speed_kmh,
            "dir": mobile.direction,
            "cell": mobile.cell_id,
            "ptime": mobile.position_time,
        },
    }


def _capture_queue(sim: "CellularSimulator") -> list[dict]:
    records = []
    for event in sim.engine.queued_events():
        if event.cancelled:
            continue
        callback = event.callback
        func = getattr(callback, "__func__", None)
        owner = getattr(callback, "__self__", None)
        record: dict = {"time": event.time, "seq": event.sequence}
        if owner is not sim:
            # Progress/checkpoint heartbeats never schedule; anything
            # else in the queue belongs to code the schema cannot
            # reconstruct.
            raise CheckpointError(
                f"cannot serialize foreign pending event {callback!r}"
            )
        simulator_cls = type(sim)
        if func is simulator_cls._on_arrival:
            record.update(
                kind="arrival", cell=event.args[0], attempt=event.args[1]
            )
        elif func is simulator_cls._handle_request:
            record.update(
                kind="retry", cell=event.args[0], attempt=event.args[1]
            )
        elif func is simulator_cls._on_lifetime_end:
            record.update(kind="lifetime", conn=event.args[0].connection_id)
        elif func is simulator_cls._on_crossing:
            connection, transition = event.args[0], event.args[1]
            record.update(
                kind="crossing",
                conn=connection.connection_id,
                t_time=transition.time,
                t_next=transition.next_cell,
            )
            if len(event.args) > 2 and event.args[2] is not None:
                record["soft"] = event.args[2]
        elif func is simulator_cls._on_sample:
            record.update(kind="sample")
        else:
            raise CheckpointError(
                f"cannot serialize pending event {func!r}"
            )
        records.append(record)
    records.sort(key=lambda record: record["seq"])
    return records


def _capture_suppressed(sim: "CellularSimulator") -> list[dict]:
    records = []
    for cell_id, (when, stamp, tie) in getattr(
        sim, "_suppressed_arrivals", {}
    ).items():
        records.append(
            {
                "kind": "arrival",
                "cell": cell_id,
                "time": when,
                "stamp": stamp,
                "tie": tie,
            }
        )
    sample = getattr(sim, "_suppressed_sample", None)
    if sample is not None:
        when, stamp, tie = sample
        records.append(
            {"kind": "sample", "time": when, "stamp": stamp, "tie": tie}
        )
    records.sort(key=lambda record: (record["stamp"], record["tie"]))
    return records


def _capture_window(controller) -> dict:
    return {
        "reference": controller.reference,
        "observation_window": controller.observation_window,
        "t_est": controller.t_est,
        "handoffs": controller.handoffs,
        "drops": controller.drops,
        "total_handoffs": controller.total_handoffs,
        "total_drops": controller.total_drops,
        "consecutive": controller._consecutive,
        "last_direction": controller._last_direction,
        "adjustments": [
            [
                adjustment.time,
                adjustment.new_window,
                adjustment.increased,
                adjustment.handoffs,
                adjustment.drops,
            ]
            for adjustment in controller.adjustments
        ],
    }


def _capture_estimator(estimator: MobilityEstimator) -> dict:
    return {
        "version": estimator.version,
        "dirty": sorted(
            encode_prev(prev) for prev in estimator._dirty
        ),
        "total_recorded": estimator.cache.total_recorded,
        "snapshot_hits": estimator.snapshot_hits,
        "snapshot_builds": estimator.snapshot_builds,
        "snapshot_invalidations": estimator.snapshot_invalidations,
        "eq4_vector_batches": estimator.eq4_vector_batches,
        "eq4_scalar_batches": estimator.eq4_scalar_batches,
        "eq4_vector_rows": estimator.eq4_vector_rows,
        "eq4_scalar_rows": estimator.eq4_scalar_rows,
    }


def _capture_snapshots(estimator: MobilityEstimator):
    """Finite-``T_int`` F_HOE snapshots, or ``None``.

    Infinite-interval snapshots rebuild bit-identically from the cache
    (the hit rule ignores age), so they are derived state and stay out
    of the blob.  Finite-interval snapshots are reused for up to
    ``rebuild_interval`` seconds of staleness; an uninterrupted run
    would keep answering Eq. 4 from them, so the restore must too.
    """
    if estimator.cache.config.interval is None:
        return None
    snapshots = []
    for prev, (built_at, function) in estimator._snapshots.items():
        snapshots.append(
            {
                "prev": prev,
                "built_at": built_at,
                "per_next": {
                    next_cell: (mass.sojourns, mass.cumulative)
                    for next_cell, mass in function._per_next.items()
                },
                "union": (
                    function._union.sojourns,
                    function._union.cumulative,
                ),
            }
        )
    return snapshots


def _capture_metrics(metrics) -> dict:
    return {
        "cells": [
            [
                counters.new_requests,
                counters.blocked,
                counters.handoff_attempts,
                counters.handoff_drops,
                counters.completed,
                counters.exited,
            ]
            for counters in metrics.cells
        ],
        "hourly": [
            [
                bucket.hour,
                bucket.new_requests,
                bucket.blocked,
                bucket.handoff_attempts,
                bucket.handoff_drops,
            ]
            for _, bucket in sorted(metrics.hourly.items())
        ],
        "total_admission_tests": metrics.total_admission_tests,
        "total_calculations": metrics.total_calculations,
        "total_messages": metrics.total_messages,
        "traces": {
            str(cell): {
                "t_est": [[p.time, p.value] for p in metrics.t_est_traces[cell]],
                "reservation": [
                    [p.time, p.value]
                    for p in metrics.reservation_traces[cell]
                ],
                "phd": [[p.time, p.value] for p in metrics.phd_traces[cell]],
                "attempts": metrics._trace_attempts[cell],
                "drops": metrics._trace_drops[cell],
            }
            for cell in metrics.tracked
        },
        "reservation_sum": metrics._reservation_sum,
        "used_sum": metrics._used_sum,
        "samples": metrics._samples,
    }


def capture_state(sim: "CellularSimulator") -> dict[str, bytes]:
    """Serialize a simulator into the on-disk file map (relpath->bytes)."""
    _require_checkpointable(sim)
    engine = sim.engine
    runtime = {
        "clock": engine.now,
        "events_processed": engine.events_processed,
        "engine_counters": {
            "events_cancelled": engine.events_cancelled,
            "heap_compactions": engine.heap_compactions,
            "pool_hits": engine.pool_hits,
            "pool_misses": engine.pool_misses,
        },
        "rng": {
            name: _encode_rng(sim.streams.get(name).getstate())
            for name in sim.streams.names()
        },
        "next_connection_id": peek_connection_ids(),
        "next_mobile_id": peek_mobile_ids(),
        "policy": {
            "name": sim.policy.name,
            "degradations": getattr(sim.policy, "degradations", 0),
            "upgrades": getattr(sim.policy, "upgrades", 0),
        },
        "connections": [
            _capture_connection(connection)
            for connection in sim.active_connections.values()
        ],
        "cell_members": [
            list(sim.network.cell(cell_id)._connections)
            for cell_id in range(sim.topology.num_cells)
        ],
        "cells": [
            {
                "used": cell.used_bandwidth,
                "reserved": cell.reserved_target,
                "version": cell.version,
                "rebuilds": cell.group_rebuilds,
            }
            for cell in sim.network.cells
        ],
        "stations": [
            {
                "reservation_calculations": station.reservation_calculations,
                "messages_sent": station.messages_sent,
                "window": _capture_window(station.window),
                "estimator": _capture_estimator(station.estimator),
            }
            for station in sim.network.stations
        ],
        "network": {
            "tick_flushes": sim.network.tick_flushes,
            "tick_targets": sim.network.tick_targets,
            "tick_grouped_suppliers": sim.network.tick_grouped_suppliers,
            "tick_fallback_suppliers": sim.network.tick_fallback_suppliers,
        },
        "metrics": _capture_metrics(sim.metrics),
        "queue": _capture_queue(sim),
        "suppressed": _capture_suppressed(sim),
        "finished": sim._finished,
    }
    files: dict[str, bytes] = {}
    cell_entries = []
    for station in sim.network.stations:
        cache = station.estimator.cache
        pairs = cache.export_columns()
        blob = pack_cell_blob(pairs, _capture_snapshots(station.estimator))
        name = cell_blob_name(station.cell_id)
        files[name] = blob
        cell_entries.append(
            {
                "path": name,
                "kind": "cell",
                "cell": station.cell_id,
                "bytes": len(blob),
                "crc32": crc32_of(blob),
                "quadruplets": cache.size(),
                "pairs": sum(1 for _ in cache.pairs()),
            }
        )
    # Observability sidecars: a telemetry snapshot and the series rows
    # so far, when the run carries them.  Pure annotations — restore
    # never reads them, but ``repro state inspect`` summarises them.
    sidecar_entries = []
    telemetry = getattr(sim, "telemetry", None)
    if telemetry is not None and telemetry.enabled:
        blob = json.dumps(
            telemetry.snapshot(), sort_keys=True, indent=1
        ).encode("utf-8")
        files["telemetry.json"] = blob
        sidecar_entries.append(
            {
                "path": "telemetry.json",
                "kind": "telemetry",
                "bytes": len(blob),
                "crc32": crc32_of(blob),
            }
        )
    sampler = getattr(sim, "sampler", None)
    if sampler is not None and sampler.series():
        blob = (
            "\n".join(
                json.dumps(row, sort_keys=True) for row in sampler.series()
            )
            + "\n"
        ).encode("utf-8")
        files["series.jsonl"] = blob
        sidecar_entries.append(
            {
                "path": "series.jsonl",
                "kind": "series",
                "bytes": len(blob),
                "crc32": crc32_of(blob),
            }
        )
    runtime_bytes = json.dumps(runtime).encode("utf-8")
    manifest = {
        "format": FORMAT_NAME,
        "schema_version": SCHEMA_VERSION,
        "created_unix": wall_clock.time(),
        "clock": engine.now,
        "seed": sim.config.seed,
        "label": sim.config.label or sim.config.scheme,
        "config": config_fingerprint(sim.config),
        "counts": {
            "connections": len(sim.active_connections),
            "pending_events": engine.pending,
            "events_processed": engine.events_processed,
            "quadruplets": sum(
                entry["quadruplets"] for entry in cell_entries
            ),
        },
        "files": [
            {
                "path": RUNTIME_NAME,
                "kind": "runtime",
                "bytes": len(runtime_bytes),
                "crc32": crc32_of(runtime_bytes),
            },
            *cell_entries,
            *sidecar_entries,
        ],
    }
    files[RUNTIME_NAME] = runtime_bytes
    files[MANIFEST_NAME] = json.dumps(manifest, indent=1).encode("utf-8")
    return files


def save_checkpoint(sim: "CellularSimulator", path: str | Path) -> Path:
    """Capture ``sim`` and atomically publish it as directory ``path``."""
    telemetry = get_telemetry()
    tracer = get_tracer()
    started = wall_clock.perf_counter()
    files = capture_state(sim)
    with tracer.span(
        "checkpoint.publish", files=len(files), t=round(sim.engine.now, 3)
    ):
        target = publish_state_dir(path, files)
    elapsed = wall_clock.perf_counter() - started
    total_bytes = sum(len(data) for data in files.values())
    if telemetry.enabled:
        timer = telemetry.timer("state.save")
        timer.seconds += elapsed
        timer.count += 1
        telemetry.counter("state.checkpoints", op="save").inc()
        telemetry.gauge("state.bytes").set(total_bytes)
    _log.info(
        "checkpoint saved",
        extra={
            "path": str(target),
            "bytes": total_bytes,
            "virtual_time": sim.engine.now,
            "connections": len(sim.active_connections),
            "wall_seconds": round(elapsed, 6),
        },
    )
    return target


# ----------------------------------------------------------------------
# restore
# ----------------------------------------------------------------------
def _entry_for(manifest: dict, relative: str) -> dict:
    for entry in manifest.get("files", []):
        if entry["path"] == relative:
            return entry
    raise StateFormatError(f"manifest lists no entry for {relative}")


def _restore_estimator(
    estimator: MobilityEstimator, pairs, snapshots, saved: dict
) -> None:
    estimator.preload(pairs)
    if snapshots is not None:
        for snapshot in snapshots:
            function = HandoffEstimationFunction.__new__(
                HandoffEstimationFunction
            )
            function._per_next = {
                next_cell: _Mass(sojourns, cumulative)
                for next_cell, (sojourns, cumulative) in snapshot[
                    "per_next"
                ].items()
            }
            function._union = _Mass(*snapshot["union"])
            estimator._snapshots[snapshot["prev"]] = (
                snapshot["built_at"],
                function,
            )
    estimator._dirty = {decode_prev(raw) for raw in saved["dirty"]}
    estimator.version = saved["version"]
    estimator.cache.total_recorded = saved["total_recorded"]
    estimator.snapshot_hits = saved["snapshot_hits"]
    estimator.snapshot_builds = saved["snapshot_builds"]
    estimator.snapshot_invalidations = saved["snapshot_invalidations"]
    estimator.eq4_vector_batches = saved["eq4_vector_batches"]
    estimator.eq4_scalar_batches = saved["eq4_scalar_batches"]
    estimator.eq4_vector_rows = saved["eq4_vector_rows"]
    estimator.eq4_scalar_rows = saved["eq4_scalar_rows"]


def restore_window(controller, saved: dict, include_history: bool = True) -> None:
    """Overwrite a fresh controller with captured Figure-6 state.

    ``include_history=False`` restores only the controller's *position*
    (``T_est``, ``W_obs``, ``n_H``, ``n_HD``, step direction) without
    the lifetime totals and adjustment trace — what a campaign day
    carries over so the new day's statistics start clean.
    """
    from repro.core.window import WindowAdjustment

    controller.reference = saved["reference"]
    controller.observation_window = saved["observation_window"]
    controller.t_est = saved["t_est"]
    controller.handoffs = saved["handoffs"]
    controller.drops = saved["drops"]
    controller._consecutive = saved["consecutive"]
    controller._last_direction = saved["last_direction"]
    if include_history:
        controller.total_handoffs = saved["total_handoffs"]
        controller.total_drops = saved["total_drops"]
        controller.adjustments = [
            WindowAdjustment(time, new_window, increased, handoffs, drops)
            for time, new_window, increased, handoffs, drops in saved[
                "adjustments"
            ]
        ]


def _restore_metrics(metrics, saved: dict) -> None:
    for counters, values in zip(metrics.cells, saved["cells"]):
        (
            counters.new_requests,
            counters.blocked,
            counters.handoff_attempts,
            counters.handoff_drops,
            counters.completed,
            counters.exited,
        ) = values
    metrics.hourly = {
        hour: HourlyBucket(hour, requests, blocked, attempts, drops)
        for hour, requests, blocked, attempts, drops in saved["hourly"]
    }
    metrics.total_admission_tests = saved["total_admission_tests"]
    metrics.total_calculations = saved["total_calculations"]
    metrics.total_messages = saved["total_messages"]
    for cell_text, trace in saved["traces"].items():
        cell = int(cell_text)
        if cell not in metrics.tracked:
            continue
        metrics.t_est_traces[cell] = [
            TracePoint(time, value) for time, value in trace["t_est"]
        ]
        metrics.reservation_traces[cell] = [
            TracePoint(time, value) for time, value in trace["reservation"]
        ]
        metrics.phd_traces[cell] = [
            TracePoint(time, value) for time, value in trace["phd"]
        ]
        metrics._trace_attempts[cell] = trace["attempts"]
        metrics._trace_drops[cell] = trace["drops"]
    metrics._reservation_sum = saved["reservation_sum"]
    metrics._used_sum = saved["used_sum"]
    metrics._samples = saved["samples"]


def _restore_queue(
    sim: "CellularSimulator", runtime: dict, connections: dict
) -> None:
    """Re-schedule pending events and merge in the suppressed draws.

    Sort key ``(stamp, kind, tie)``: at an equal stamp a suppressed
    draw precedes the real event carrying that stamp — in the
    uninterrupted run the draw would have consumed the stamp first,
    pushing the real event one higher.  Suppressed draws still beyond
    the (possibly new) horizon stay suppressed, re-stamped to -1 so a
    later checkpoint keeps them ahead of everything newer.
    """
    engine = sim.engine
    duration = sim.config.duration
    merged = [
        (record["seq"], 1, 0, record) for record in runtime["queue"]
    ] + [
        (record["stamp"], 0, record["tie"], record)
        for record in runtime["suppressed"]
    ]
    merged.sort(key=lambda item: item[:3])
    sim._suppressed_arrivals = {}
    sim._suppressed_sample = None
    sim._suppressed_tiebreak = 0
    for _stamp, is_real, _tie, record in merged:
        kind = record["kind"]
        if not is_real:
            if record["time"] <= duration:
                # The new horizon admits the draw: it becomes the real
                # event it would have been in the uninterrupted run.
                if kind == "arrival":
                    engine.call_at(
                        record["time"],
                        sim._on_arrival,
                        record["cell"],
                        1,
                        priority=EventPriority.ARRIVAL,
                    )
                else:
                    engine.call_at(
                        record["time"],
                        sim._on_sample,
                        priority=EventPriority.MONITOR,
                    )
            else:
                tie = sim._suppressed_tiebreak
                sim._suppressed_tiebreak += 1
                if kind == "arrival":
                    sim._suppressed_arrivals[record["cell"]] = (
                        record["time"],
                        -1,
                        tie,
                    )
                else:
                    sim._suppressed_sample = (record["time"], -1, tie)
            continue
        if kind == "arrival":
            engine.call_at(
                record["time"],
                sim._on_arrival,
                record["cell"],
                record["attempt"],
                priority=EventPriority.ARRIVAL,
            )
        elif kind == "retry":
            engine.call_at(
                record["time"],
                sim._handle_request,
                record["cell"],
                record["attempt"],
                priority=EventPriority.ARRIVAL,
            )
        elif kind == "lifetime":
            connection = connections[record["conn"]]
            sim._end_events[record["conn"]] = engine.call_at(
                record["time"],
                sim._on_lifetime_end,
                connection,
                priority=EventPriority.DEPARTURE,
            )
        elif kind == "crossing":
            connection = connections[record["conn"]]
            transition = Transition(record["t_time"], record["t_next"])
            args = [connection, transition]
            if "soft" in record:
                args.append(record["soft"])
            sim._crossing_events[record["conn"]] = engine.call_at(
                record["time"],
                sim._on_crossing,
                *args,
                priority=EventPriority.HANDOFF,
            )
        elif kind == "sample":
            engine.call_at(
                record["time"],
                sim._on_sample,
                priority=EventPriority.MONITOR,
            )
        else:
            raise StateFormatError(f"unknown queued event kind {kind!r}")


def restore_simulator(path: str | Path, config) -> "CellularSimulator":
    """Rebuild a mid-run simulator from a checkpoint directory.

    ``config`` must describe the same scenario the checkpoint was taken
    under (fingerprint-checked); only the horizon (``duration``), label
    and observability settings may differ.  The returned simulator's
    :meth:`run` continues from the saved clock without re-running the
    initial scheduling, and produces the same ``metrics_key()`` as the
    uninterrupted run of the same horizon.
    """
    from repro.simulation.simulator import CellularSimulator

    telemetry = get_telemetry()
    started = wall_clock.perf_counter()
    path = Path(path)
    manifest = load_manifest(path)
    _check_fingerprint(manifest["config"], config)
    runtime = json.loads(
        read_entry(path, _entry_for(manifest, RUNTIME_NAME))
    )
    clock = runtime["clock"]
    if config.duration < clock:
        raise StateFormatError(
            f"cannot resume: checkpoint clock t={clock} is past the "
            f"configured duration {config.duration}"
        )
    if runtime["finished"]:
        _log.info(
            "restoring a finished run; the resumed horizon only adds "
            "virtual time beyond the saved run's end",
            extra={"path": str(path)},
        )
    sim = CellularSimulator(config)
    if sim.topology.num_cells != len(runtime["cells"]):
        raise StateFormatError(
            f"checkpoint has {len(runtime['cells'])} cells, "
            f"configuration builds {sim.topology.num_cells}"
        )
    engine = Engine(start_time=clock)
    engine.events_processed = runtime["events_processed"]
    counters = runtime["engine_counters"]
    engine.events_cancelled = counters["events_cancelled"]
    engine.heap_compactions = counters["heap_compactions"]
    engine.pool_hits = counters["pool_hits"]
    engine.pool_misses = counters["pool_misses"]
    sim.engine = engine
    for name, (version, internal, gauss) in runtime["rng"].items():
        sim.streams.get(name).setstate(
            (version, tuple(internal), gauss)
        )
    reset_connection_ids(runtime["next_connection_id"])
    reset_mobile_ids(runtime["next_mobile_id"])
    if sim.policy.name != runtime["policy"]["name"]:
        raise StateFormatError(
            f"checkpoint used policy {runtime['policy']['name']!r}, "
            f"configuration builds {sim.policy.name!r}"
        )
    if hasattr(sim.policy, "degradations"):
        sim.policy.degradations = runtime["policy"]["degradations"]
        sim.policy.upgrades = runtime["policy"]["upgrades"]
    connections: dict[int, Connection] = {}
    for record in runtime["connections"]:
        mobile = None
        if record["mobile"] is not None:
            saved_mobile = record["mobile"]
            mobile = Mobile(
                position_km=saved_mobile["pos"],
                speed_kmh=saved_mobile["speed"],
                direction=saved_mobile["dir"],
                cell_id=saved_mobile["cell"],
                position_time=saved_mobile["ptime"],
                mobile_id=saved_mobile["id"],
            )
        connections[record["id"]] = Connection(
            _TRAFFIC_CLASSES[record["class"]],
            start_time=record["start"],
            cell_id=record["cell"],
            mobile=mobile,
            prev_cell=record["prev"],
            cell_entry_time=record["entry"],
            connection_id=record["id"],
            handoff_count=record["handoffs"],
            allocated_bandwidth=record["alloc"],
        )
    for station in sim.network.stations:
        entry = _entry_for(manifest, cell_blob_name(station.cell_id))
        pairs, snapshots = unpack_cell_blob(read_entry(path, entry))
        saved_station = runtime["stations"][station.cell_id]
        _restore_estimator(
            station.estimator, pairs, snapshots, saved_station["estimator"]
        )
        restore_window(station.window, saved_station["window"])
        station.reservation_calculations = saved_station[
            "reservation_calculations"
        ]
        station.messages_sent = saved_station["messages_sent"]
        # (Older checkpoints also carry eq5_hits/eq5_misses from the
        # retired Eq. 5 memo; the counters no longer exist, so the
        # fields are simply ignored.)
    sim.network.recount_messages()
    for cell_id, member_ids in enumerate(runtime["cell_members"]):
        cell = sim.network.cell(cell_id)
        for connection_id in member_ids:
            cell.attach(connections[connection_id])
        saved_cell = runtime["cells"][cell_id]
        # Replayed attaches recompute an exact sum; the live counter is
        # an accumulated float with its own rounding history — restore
        # the drifted value so later arithmetic continues identically.
        cell.used_bandwidth = saved_cell["used"]
        cell.reserved_target = saved_cell["reserved"]
        cell.version = saved_cell["version"]
        cell._retired_rebuilds = saved_cell["rebuilds"] - sum(
            group.rebuilds for group in cell._by_prev.values()
        )
    saved_network = runtime["network"]
    sim.network.tick_flushes = saved_network["tick_flushes"]
    sim.network.tick_targets = saved_network["tick_targets"]
    sim.network.tick_grouped_suppliers = saved_network.get(
        "tick_grouped_suppliers", 0
    )
    sim.network.tick_fallback_suppliers = saved_network.get(
        "tick_fallback_suppliers", 0
    )
    _restore_metrics(sim.metrics, runtime["metrics"])
    sim.active_connections = {
        record["id"]: connections[record["id"]]
        for record in runtime["connections"]
    }
    _restore_queue(sim, runtime, connections)
    sim._resumed = True
    elapsed = wall_clock.perf_counter() - started
    if telemetry.enabled:
        timer = telemetry.timer("state.load")
        timer.seconds += elapsed
        timer.count += 1
        telemetry.counter("state.checkpoints", op="load").inc()
    _log.info(
        "checkpoint restored",
        extra={
            "path": str(path),
            "virtual_time": clock,
            "connections": len(connections),
            "pending_events": engine.pending,
            "wall_seconds": round(elapsed, 6),
        },
    )
    return sim


# ----------------------------------------------------------------------
# mid-run checkpointing
# ----------------------------------------------------------------------
class Checkpointer:
    """Heartbeat hook writing periodic checkpoints during a run.

    Piggybacks on the engine's heartbeat (like
    :class:`~repro.obs.progress.ProgressReporter`): it runs *between*
    events and schedules nothing, so a run with a checkpointer fires
    exactly the events it would without one.  Checkpoints land in
    ``directory`` as ``ckpt-<virtual time>`` and only the newest
    ``keep`` are retained.
    """

    def __init__(
        self,
        sim: "CellularSimulator",
        directory: str | Path,
        every: float,
        keep: int = 3,
    ) -> None:
        if every <= 0:
            raise ValueError("checkpoint interval must be positive")
        if keep < 1:
            raise ValueError("must keep at least one checkpoint")
        self.sim = sim
        self.directory = Path(directory)
        self.every = float(every)
        self.keep = keep
        self.written: list[Path] = []
        self._next = float(every)

    def beat(self) -> None:
        now = self.sim.engine.now
        if now < self._next:
            return
        while self._next <= now:
            self._next += self.every
        # Zero-padded so lexicographic order equals time order.
        target = self.directory / f"ckpt-{now:017.3f}"
        save_checkpoint(self.sim, target)
        if target in self.written:
            self.written.remove(target)
        self.written.append(target)
        while len(self.written) > self.keep:
            stale = self.written.pop(0)
            shutil.rmtree(stale, ignore_errors=True)
            _log.info(
                "checkpoint pruned",
                extra={"path": str(stale), "keep": self.keep},
            )

    @property
    def latest(self) -> Path | None:
        return self.written[-1] if self.written else None


# ----------------------------------------------------------------------
# warm-start (campaign hydration)
# ----------------------------------------------------------------------
class CheckpointWarmStart:
    """``config.warm_state`` handle: hydrate a fresh run from a checkpoint.

    Unlike :func:`restore_simulator` this does **not** resume the run —
    it seeds a *new* day with the previous day's learned state: every
    quadruplet cache (event times rebased by ``-rebase_seconds``, the
    same backwards shift ``SharedColumnStore`` applies to worker
    imports, so the paper's day-age windows see yesterday's entries one
    period in the past) and, optionally, the per-cell window-controller
    state so ``T_est`` keeps adapting across days instead of restarting
    at ``T_start``.

    Quadruplets older than the ``N_win`` horizon are dropped at load
    (finite ``T_int``) exactly as the cache's own windowed eviction
    would: expired days stop contributing, per paper Eq. 3.
    """

    def __init__(
        self,
        path: str | Path,
        rebase_seconds: float = 0.0,
        carry_windows: bool = True,
    ) -> None:
        self.path = Path(path)
        self.rebase_seconds = float(rebase_seconds)
        self.carry_windows = carry_windows

    def hydrate(self, network) -> None:
        manifest = load_manifest(self.path)
        runtime = json.loads(
            read_entry(self.path, _entry_for(manifest, RUNTIME_NAME))
        )
        loaded = 0
        for station in network.stations:
            entry = _entry_for(manifest, cell_blob_name(station.cell_id))
            pairs, _snapshots = unpack_cell_blob(
                read_entry(self.path, entry)
            )
            cache_config = station.estimator.cache.config
            horizon = None
            if cache_config.interval is not None:
                horizon = (
                    cache_config.window_days * cache_config.period
                    + cache_config.interval
                )
            rebased = {}
            for key, (times, sojourns) in pairs.items():
                shifted_times = []
                shifted_sojourns = []
                for event_time, sojourn in zip(times, sojourns):
                    shifted = event_time - self.rebase_seconds
                    # N_win expiry between days: entries beyond the
                    # window horizon can never participate again.
                    if horizon is not None and shifted < -horizon:
                        continue
                    shifted_times.append(shifted)
                    shifted_sojourns.append(sojourn)
                if shifted_times:
                    rebased[key] = (shifted_times, shifted_sojourns)
            station.estimator.preload(rebased)
            loaded += sum(len(times) for times, _ in rebased.values())
            if self.carry_windows:
                restore_window(
                    station.window,
                    runtime["stations"][station.cell_id]["window"],
                    include_history=False,
                )
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.counter("state.checkpoints", op="warm_start").inc()
        _log.info(
            "warm state hydrated",
            extra={
                "path": str(self.path),
                "quadruplets": loaded,
                "rebase_seconds": self.rebase_seconds,
                "carry_windows": self.carry_windows,
            },
        )
