"""Jitted Eq. 4/5 flush kernels (the optional ``numba`` backend).

Imported lazily by :mod:`repro._kernel` only when the ``numba`` kernel
is explicitly selected — importing numba costs seconds and must never
tax numpy/python runs.  The functions mirror the numpy flush-batch
arithmetic *op for op* (same subtract / divide / clip / scale sequence
on float64, no fastmath), so all three kernels produce bit-identical
contributions; what changes is dispatch: one compiled call replaces a
handful of numpy array ops per ``(block, request)`` part.

``cache=True`` persists the compiled machine code next to the package,
so only the very first run on a machine pays JIT compilation —
:func:`warm` is invoked at kernel selection time so even that cost
lands before the first simulated event.
"""

from __future__ import annotations

import numpy as np
from numba import njit


@njit(cache=True)
def searchsorted_right(sorted_values, queries):
    """``np.searchsorted(sorted_values, queries, side="right")``."""
    n = sorted_values.shape[0]
    out = np.empty(queries.shape[0], dtype=np.int64)
    for i in range(queries.shape[0]):
        query = queries[i]
        lo = 0
        hi = n
        while lo < hi:
            mid = (lo + hi) // 2
            if sorted_values[mid] <= query:
                lo = mid + 1
            else:
                hi = mid
        out[i] = lo
    return out


@njit(cache=True)
def unit_part_contributions(
    idx_u,
    union_len,
    target_sojourns,
    extants,
    extants_high,
    bases,
    out,
    offset,
):
    """Evaluate one ``(block, request)`` part of a coalesced flush.

    Unit-weight masses only: the cumulative weight of the first ``k``
    sojourns is exactly ``float(k)``, so both Eq. 4 masses are binary-
    search counts.  Writes each row's Eq. 5 contribution into
    ``out[offset + row]`` (0.0 when the row carries no mass).
    """
    m = target_sojourns.shape[0]
    for i in range(extants.shape[0]):
        extant = extants[i]
        # bisect_right over the target sojourn column, twice.
        lo = 0
        hi = m
        while lo < hi:
            mid = (lo + hi) // 2
            if target_sojourns[mid] <= extant:
                lo = mid + 1
            else:
                hi = mid
        idx_lo = lo
        high_q = extants_high[i]
        lo = idx_lo
        hi = m
        while lo < hi:
            mid = (lo + hi) // 2
            if target_sojourns[mid] <= high_q:
                lo = mid + 1
            else:
                hi = mid
        idx_hi = lo
        den_count = union_len - idx_u[i]
        num_count = idx_hi - idx_lo
        if den_count > 0 and num_count > 0:
            ratio = float(num_count) / float(den_count)
            if ratio > 1.0:
                ratio = 1.0
            out[offset + i] = bases[i] * ratio
        else:
            out[offset + i] = 0.0


def warm() -> None:
    """Trigger (or load the cache of) every jitted kernel."""
    sojourns = np.asarray([1.0, 2.0, 3.0], dtype=np.float64)
    queries = np.asarray([0.5, 2.5], dtype=np.float64)
    idx_u = searchsorted_right(sojourns, queries)
    out = np.zeros(2, dtype=np.float64)
    unit_part_contributions(
        idx_u,
        3,
        sojourns,
        queries,
        queries + 1.0,
        np.asarray([1.0, 1.0], dtype=np.float64),
        out,
        0,
    )
