"""Adaptive control of the mobility-estimation time window (paper §4.2).

:class:`EstimationWindowController` is a faithful transcription of the
pseudocode in Figure 6.  Per cell it maintains the estimation window
``T_est`` using three counters:

* ``w = ceil(1 / P_HD,target)`` — the reference window: one drop is
  allowed per ``w`` observed hand-offs;
* ``W_obs`` — the current observation window, grown by ``w`` every time
  the drop quota is exceeded;
* ``n_H`` / ``n_HD`` — hand-offs and hand-off drops observed so far in
  the current observation window.

On every hand-off *into* the cell: ``n_H`` increments; on a drop,
``n_HD`` increments and, once ``n_HD`` exceeds the quota
``W_obs / w``, the window is extended and ``T_est`` incremented (bounded
above by ``T_soj,max``, the largest sojourn seen by neighbouring
estimators).  When ``n_H`` exceeds ``W_obs`` with the quota respected,
``T_est`` is decremented (bounded below by 1 s) and the counters reset.

The paper reports experimenting with additive (1, 2, 3, ...) and
multiplicative (1, 2, 4, ...) step growth for consecutive adjustments
and finding they over-react; both are implemented here as
:class:`StepPolicy` options for the ablation benchmark.
"""

from __future__ import annotations

import enum
import logging
import math
from dataclasses import dataclass

_log = logging.getLogger("repro.window")


class StepPolicy(enum.Enum):
    """How the adjustment step evolves over consecutive same-direction moves."""

    UNIT = "unit"
    ADDITIVE = "additive"
    MULTIPLICATIVE = "multiplicative"


@dataclass
class WindowControllerConfig:
    """Tunables of the Figure-6 algorithm."""

    #: ``P_HD,target`` — target hand-off dropping probability.
    target_drop_probability: float = 0.01
    #: ``T_start`` — initial estimation window (seconds).
    initial_window: float = 1.0
    #: Lower bound on ``T_est`` (the paper fixes 1 s).
    min_window: float = 1.0
    #: Step-growth policy (paper keeps UNIT; others are the ablation).
    step_policy: StepPolicy = StepPolicy.UNIT
    #: Decrement uses ``n_HD <= W_obs / w`` per the prose of §4.2; set
    #: False for the strict ``<`` of the pseudocode listing.
    inclusive_decrement: bool = True

    def __post_init__(self) -> None:
        if not 0 < self.target_drop_probability < 1:
            raise ValueError("target drop probability must be in (0, 1)")
        if self.initial_window < self.min_window:
            raise ValueError("initial window below the minimum")

    @property
    def reference_window(self) -> int:
        """``w = ceil(1 / P_HD,target)``."""
        return math.ceil(1.0 / self.target_drop_probability)


@dataclass
class WindowAdjustment:
    """One recorded ``T_est`` change, for traces and tests."""

    time: float
    new_window: float
    increased: bool
    #: ``n_H`` / ``n_HD`` counter values at the moment of adaptation.
    handoffs: int = 0
    drops: int = 0


class EstimationWindowController:
    """Per-cell adaptive ``T_est`` controller (Figure 6)."""

    def __init__(self, config: WindowControllerConfig | None = None) -> None:
        self.config = config or WindowControllerConfig()
        self.reference = self.config.reference_window
        self.observation_window = self.reference  # W_obs
        self.t_est = float(self.config.initial_window)
        self.handoffs = 0  # n_H
        self.drops = 0  # n_HD
        self.total_handoffs = 0
        self.total_drops = 0
        self._consecutive = 0  # same-direction adjustments (variants)
        self._last_direction: bool | None = None
        self.adjustments: list[WindowAdjustment] = []

    # ------------------------------------------------------------------
    # Figure-6 main loop body
    # ------------------------------------------------------------------
    def on_handoff(
        self, dropped: bool, max_sojourn: float, now: float = 0.0
    ) -> None:
        """Process one hand-off into the cell (lines 04–17 of Figure 6).

        Parameters
        ----------
        dropped:
            Whether the hand-off was dropped for lack of bandwidth.
        max_sojourn:
            ``T_soj,max`` — largest sojourn in the neighbouring cells'
            estimation functions; upper bound for ``T_est``.
        now:
            Virtual time, recorded with the adjustment trace.
        """
        self.handoffs += 1
        self.total_handoffs += 1
        quota = self.observation_window / self.reference
        if dropped:
            self.drops += 1
            self.total_drops += 1
            if self.drops > quota:
                self.observation_window += self.reference
                if self.t_est < max_sojourn:
                    self._adjust(increase=True, bound=max_sojourn, now=now)
        elif self.handoffs > self.observation_window:
            allowed = (
                self.drops <= quota
                if self.config.inclusive_decrement
                else self.drops < quota
            )
            if allowed and self.t_est > self.config.min_window:
                self._adjust(increase=False, bound=max_sojourn, now=now)
            self.observation_window = self.reference
            self.handoffs = 0
            self.drops = 0

    def _adjust(self, increase: bool, bound: float, now: float) -> None:
        if self._last_direction is increase:
            self._consecutive += 1
        else:
            self._consecutive = 1
            self._last_direction = increase
        step = self._step_size()
        if increase:
            self.t_est = min(self.t_est + step, max(bound, self.config.min_window))
        else:
            self.t_est = max(self.t_est - step, self.config.min_window)
        self.adjustments.append(
            WindowAdjustment(
                now, self.t_est, increase, self.handoffs, self.drops
            )
        )
        if _log.isEnabledFor(logging.DEBUG):
            _log.debug(
                "T_est adjusted",
                extra={
                    "direction": "up" if increase else "down",
                    "t_est": self.t_est,
                    "n_h": self.handoffs,
                    "n_hd": self.drops,
                    "virtual_time": now,
                },
            )

    def _step_size(self) -> float:
        policy = self.config.step_policy
        if policy is StepPolicy.UNIT:
            return 1.0
        if policy is StepPolicy.ADDITIVE:
            return float(self._consecutive)
        return float(2 ** (self._consecutive - 1))

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def drop_ratio(self) -> float:
        """Lifetime ``P_HD`` seen by this controller (0 when no hand-offs)."""
        if self.total_handoffs == 0:
            return 0.0
        return self.total_drops / self.total_handoffs
