"""QoS adaptation layered over any admission policy (paper §1).

The paper observes that its reservation scheme composes with adaptive
QoS: a hand-off that does not fit at the connection's full rate can be
accepted *degraded* (down to the class's minimum), and freed bandwidth
can be used to *upgrade* degraded connections back toward their full
rate.  Reservation itself is computed on the minimum QoS basis (handled
by ``Connection.reservation_basis``).

:class:`AdaptiveQoSPolicy` wraps any :class:`AdmissionPolicy` and adds
exactly those two behaviours.  Rigid traffic classes are unaffected —
their floor equals their full rate.
"""

from __future__ import annotations

from repro.cellular.network import CellularNetwork
from repro.core.admission import AdmissionDecision, AdmissionPolicy


class AdaptiveQoSPolicy(AdmissionPolicy):
    """Degrade-instead-of-drop and upgrade-on-release, over any policy.

    Parameters
    ----------
    inner:
        The admission policy making new-connection decisions (Static,
        AC1, AC2 or AC3).
    upgrade_respects_reservation:
        If true (default), upgrades only consume bandwidth outside the
        reserved hand-off band — upgrading is a new-traffic-like use of
        capacity, so it must not eat into ``B_r``.
    """

    def __init__(
        self,
        inner: AdmissionPolicy,
        upgrade_respects_reservation: bool = True,
    ) -> None:
        self.inner = inner
        self.upgrade_respects_reservation = upgrade_respects_reservation
        self.name = f"adaptive-{inner.name}"
        self.degradations = 0
        self.upgrades = 0

    # ------------------------------------------------------------------
    # delegation
    # ------------------------------------------------------------------
    def install(self, network: CellularNetwork) -> None:
        self.inner.install(network)

    def admit_new(
        self,
        network: CellularNetwork,
        cell_id: int,
        bandwidth: float,
        now: float,
    ) -> AdmissionDecision:
        return self.inner.admit_new(network, cell_id, bandwidth, now)

    def admit_handoff(
        self, network: CellularNetwork, cell_id: int, bandwidth: float
    ) -> bool:
        return self.inner.admit_handoff(network, cell_id, bandwidth)

    # ------------------------------------------------------------------
    # adaptation
    # ------------------------------------------------------------------
    def handoff_allocation(
        self, network: CellularNetwork, cell_id: int, connection
    ) -> float | None:
        """Grant the largest feasible rate in [min, full], else drop."""
        cell = network.cell(cell_id)
        preferred = connection.full_bandwidth
        if cell.fits_handoff(preferred):
            return preferred
        floor = connection.min_bandwidth
        if floor < preferred and cell.fits_handoff(floor):
            # Degrade to whatever headroom the cell actually has.
            granted = max(min(cell.capacity - cell.used_bandwidth,
                              preferred), floor)
            self.degradations += 1
            return granted
        return None

    def on_release(
        self, network: CellularNetwork, cell_id: int, now: float
    ) -> None:
        """Upgrade degraded connections with the freed bandwidth."""
        cell = network.cell(cell_id)
        if self.upgrade_respects_reservation:
            budget = cell.capacity - cell.reserved_target - cell.used_bandwidth
        else:
            budget = cell.capacity - cell.used_bandwidth
        if budget <= 1e-9:
            return
        # Oldest-degraded-first keeps the policy simple and fair enough.
        for connection in sorted(
            cell.connections(), key=lambda item: item.connection_id
        ):
            if budget <= 1e-9:
                break
            if not connection.is_degraded:
                continue
            headroom = connection.full_bandwidth - connection.bandwidth
            grant = min(headroom, budget)
            cell.adjust_bandwidth(
                connection, connection.bandwidth + grant
            )
            budget -= grant
            self.upgrades += 1
