"""Related-work comparator: Naghshineh–Schwartz distributed CAC.

The paper's §6 positions its scheme against the distributed call
admission control of Naghshineh & Schwartz (IEEE JSAC, May 1996 —
reference [10]): every estimation period, a cell estimates the
bandwidth it will need for its own calls *and* the hand-offs its
neighbours may send within a window ``T``, assuming exponentially
distributed channel-holding and cell-residence times, and admits new
calls only while the overload probability stays below a target.  The
companion paper ([4]) compares the two schemes quantitatively; this
module lets this repository do the same.

Model (per their paper, simplified to the symmetric 1-D case):

* a call in cell ``k`` is still in ``k`` at ``t + T`` with probability
  ``p_stay = exp(-T/lifetime) * exp(-T/dwell)`` (neither finished nor
  moved away);
* a call in a neighbour ``m`` has entered ``k`` by ``t + T`` with
  probability ``p_in = exp(-T/lifetime) * (1 - exp(-T/dwell)) / deg(m)``
  (moved, still alive, direction uniform over ``m``'s neighbours);
* the cell's bandwidth at ``t + T`` is the sum of independent scaled
  Bernoullis; a new call is admitted iff, with it included,
  ``P(B_k(t+T) > C_k) <= overload_target`` in the requesting cell and
  in every neighbour.

The paper's §6 criticisms are visible in the implementation: the
exponential-residence assumption is wired in (our mobiles actually
cross cells near-deterministically), and the dwell time must be *given*
(no mechanism predicts it), whereas the paper's estimator learns both
from the hand-off history.
"""

from __future__ import annotations

import math

from repro.cellular.network import CellularNetwork
from repro.core.admission import AdmissionDecision, AdmissionPolicy


def convolve_bernoulli(
    distribution: list[float], probability: float, bandwidth: int
) -> list[float]:
    """Convolve a bandwidth pmf with one scaled Bernoulli arrival.

    ``distribution[b]`` is ``P(total = b)``; the new term adds
    ``bandwidth`` BUs with ``probability``.
    """
    if not 0.0 <= probability <= 1.0:
        raise ValueError(f"probability {probability} outside [0, 1]")
    if bandwidth < 0:
        raise ValueError("bandwidth cannot be negative")
    if probability == 0.0 or bandwidth == 0:
        return list(distribution)
    size = len(distribution) + bandwidth
    result = [0.0] * size
    miss = 1.0 - probability
    for value, mass in enumerate(distribution):
        if mass == 0.0:
            continue
        result[value] += mass * miss
        result[value + bandwidth] += mass * probability
    return result


def overload_probability(
    distribution: list[float], capacity: float
) -> float:
    """``P(total > capacity)`` for an integer-support pmf."""
    threshold = math.floor(capacity + 1e-9)
    return sum(distribution[threshold + 1:])


class NaghshinehSchwartzPolicy(AdmissionPolicy):
    """Distributed CAC of reference [10], as an :class:`AdmissionPolicy`.

    Parameters
    ----------
    window:
        Estimation window ``T`` (seconds) — fixed, not adaptive.
    overload_target:
        Maximum tolerated ``P(B_k(t+T) > C_k)``; plays the role the
        paper's ``P_HD,target`` plays (their paper relates the two).
    dwell_time:
        *Assumed* mean cell-residence time (seconds).  The scheme has no
        way to learn it; give it the true value for a best-case
        comparison (e.g. ``36`` for 100 km/h across 1 km).
    mean_lifetime:
        Mean call duration (A5: 120 s).
    """

    name = "NS"

    def __init__(
        self,
        window: float = 10.0,
        overload_target: float = 0.01,
        dwell_time: float = 36.0,
        mean_lifetime: float = 120.0,
    ) -> None:
        if window <= 0 or dwell_time <= 0 or mean_lifetime <= 0:
            raise ValueError("window, dwell and lifetime must be positive")
        if not 0 < overload_target < 1:
            raise ValueError("overload target must be in (0, 1)")
        self.window = float(window)
        self.overload_target = float(overload_target)
        self.dwell_time = float(dwell_time)
        self.mean_lifetime = float(mean_lifetime)
        alive = math.exp(-self.window / self.mean_lifetime)
        moved = 1.0 - math.exp(-self.window / self.dwell_time)
        #: P(call still in its cell at t+T).
        self.p_stay = alive * (1.0 - moved)
        #: P(call alive and departed its cell by t+T) — split uniformly
        #: over the departure cell's neighbours.
        self.p_depart = alive * moved
        #: Distribution evaluations performed (complexity metric).
        self.evaluations = 0

    # ------------------------------------------------------------------
    # the distributed admission test
    # ------------------------------------------------------------------
    def _cell_distribution(
        self,
        network: CellularNetwork,
        cell_id: int,
        extra_bandwidth: int = 0,
    ) -> list[float]:
        """pmf of cell ``cell_id``'s bandwidth at ``t + T``."""
        self.evaluations += 1
        distribution = [1.0]
        if extra_bandwidth:
            # The candidate call: admitted now, still present w.p. stay.
            distribution = convolve_bernoulli(
                distribution, self.p_stay, extra_bandwidth
            )
        for connection in network.cell(cell_id).connections():
            distribution = convolve_bernoulli(
                distribution, self.p_stay, int(round(connection.bandwidth))
            )
        for neighbor in network.neighbors(cell_id):
            degree = len(network.neighbors(neighbor))
            if degree == 0:
                continue
            p_in = self.p_depart / degree
            for connection in network.cell(neighbor).connections():
                distribution = convolve_bernoulli(
                    distribution, p_in, int(round(connection.bandwidth))
                )
        return distribution

    def admit_new(
        self,
        network: CellularNetwork,
        cell_id: int,
        bandwidth: float,
        now: float,
    ) -> AdmissionDecision:
        cell = network.cell(cell_id)
        # NS reserves no explicit band; the overload test is the guard.
        cell.reserved_target = 0.0
        if not cell.fits_handoff(bandwidth):
            return AdmissionDecision(False, calculations=0, messages=0)
        evaluations_before = self.evaluations
        admitted = True
        own = self._cell_distribution(
            network, cell_id, extra_bandwidth=int(round(bandwidth))
        )
        if overload_probability(own, cell.capacity) > self.overload_target:
            admitted = False
        else:
            for neighbor in network.neighbors(cell_id):
                neighbor_distribution = self._cell_distribution(
                    network, neighbor
                )
                if (
                    overload_probability(
                        neighbor_distribution,
                        network.cell(neighbor).capacity,
                    )
                    > self.overload_target
                ):
                    admitted = False
                    break
        performed = self.evaluations - evaluations_before
        # Each evaluation needs the neighbours' occupancy: 2 messages per
        # adjacent cell, mirroring the B_r protocol's accounting.
        return AdmissionDecision(
            admitted,
            calculations=performed,
            messages=2 * performed * len(network.neighbors(cell_id)),
        )
