"""Target reservation bandwidth computation (paper Eqs. 5–6).

For a target cell ``0`` with estimation window ``T_est,0``:

* Eq. 5 — each adjacent cell ``i`` computes, over its own connections,
  the expected hand-off bandwidth toward the target::

      B_{i,0} = sum_j b(C_{i,j}) * p_h(C_{i,j} -> 0)

  where ``p_h`` comes from cell ``i``'s estimator (Eq. 4) evaluated with
  the *target* cell's ``T_est``.

* Eq. 6 — the target's reservation bandwidth aggregates its neighbours::

      B_{r,0} = sum_{i in A_0} B_{i,0}

These are pure functions over duck-typed inputs (anything with
``bandwidth``, ``prev_cell`` and ``cell_entry_time`` counts as a
connection) so they are usable outside the bundled simulator.
"""

from __future__ import annotations

from typing import Iterable, Protocol

from repro.estimation.estimator import MobilityEstimator


class ReservableConnection(Protocol):
    """What Eq. 5 needs to know about a connection."""

    bandwidth: float
    prev_cell: int | None
    cell_entry_time: float


def expected_handoff_bandwidth(
    estimator: MobilityEstimator,
    now: float,
    connections: Iterable[ReservableConnection],
    target_cell: int,
    t_est: float,
    groups: dict | None = None,
) -> float:
    """Eq. 5: expected hand-off bandwidth from one cell toward ``target_cell``.

    Parameters
    ----------
    estimator:
        The *source* cell's mobility estimator.
    now:
        Current virtual time (seconds).
    connections:
        Connections currently carried by the source cell.
    target_cell:
        Global id of the cell computing its reservation.
    t_est:
        The target cell's estimation window ``T_est`` (seconds).
    groups:
        Optional incremental ``prev -> {key: (entry_time, basis)}``
        buckets of the same connections (see
        :meth:`repro.cellular.cell.Cell.reservation_groups`); lets the
        estimator batch its snapshot queries.
    """
    if groups is None:
        # Keep the positional call so duck-typed estimators that predate
        # the ``groups`` parameter keep working.
        return estimator.expected_bandwidth(
            now, connections, target_cell, t_est
        )
    return estimator.expected_bandwidth(
        now, connections, target_cell, t_est, groups=groups
    )


def aggregate_reservation(per_neighbor: Iterable[float]) -> float:
    """Eq. 6: the target reservation bandwidth ``B_r`` of a cell."""
    return sum(per_neighbor)
