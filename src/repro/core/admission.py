"""Admission control schemes: Static, AC1, AC2 and AC3 (paper §4.3).

All schemes share the same *hand-off* rule — a hand-off is admitted
whenever the new cell has any spare capacity, reserved band included —
and differ in how a *new* connection request is tested:

* :class:`StaticReservationPolicy` — the Hong–Rappaport guard-channel
  baseline: a constant ``G`` BUs is permanently set aside; Eq. 1 with
  ``B_r = G`` and no prediction at all.
* :class:`AC1` — recompute ``B_r`` in the requesting cell only, then
  Eq. 1 there.
* :class:`AC2` — additionally every adjacent cell recomputes its own
  ``B_r`` and must be able to actually reserve it
  (``sum b <= C - B_r``).
* :class:`AC3` — the hybrid: only *suspect* neighbours participate —
  those whose previously computed target no longer fits
  (``sum b + B_r^prev > C``).

Every policy reports ``N_calc`` (number of Eq. 6 evaluations triggered
by the test — the Figure 13 complexity metric) and the logical message
count in its :class:`AdmissionDecision`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.cellular.network import CellularNetwork


@dataclass(frozen=True, slots=True)
class AdmissionDecision:
    """Outcome of a new-connection admission test."""

    admitted: bool
    #: Number of ``B_r`` (Eq. 6) computations performed for this test.
    calculations: int
    #: Logical inter-BS messages exchanged for this test.
    messages: int


class AdmissionPolicy(abc.ABC):
    """Interface shared by the static baseline and AC1/AC2/AC3."""

    #: Human-readable scheme name used in reports.
    name: str = "base"

    @abc.abstractmethod
    def admit_new(
        self,
        network: CellularNetwork,
        cell_id: int,
        bandwidth: float,
        now: float,
    ) -> AdmissionDecision:
        """Decide a new connection request of ``bandwidth`` BUs."""

    def admit_handoff(
        self, network: CellularNetwork, cell_id: int, bandwidth: float
    ) -> bool:
        """Hand-offs may use reserved bandwidth: only capacity matters."""
        return network.cell(cell_id).fits_handoff(bandwidth)

    def handoff_allocation(
        self, network: CellularNetwork, cell_id: int, connection
    ) -> float | None:
        """Bandwidth to grant an incoming hand-off, or ``None`` to drop.

        The base behaviour is all-or-nothing at the connection's current
        rate; :class:`repro.core.qos.AdaptiveQoSPolicy` overrides this to
        degrade instead of dropping.
        """
        if self.admit_handoff(network, cell_id, connection.bandwidth):
            return connection.bandwidth
        return None

    def on_release(
        self, network: CellularNetwork, cell_id: int, now: float
    ) -> None:
        """Hook: bandwidth was freed in ``cell_id`` (QoS upgrades etc.)."""

    def install(self, network: CellularNetwork) -> None:
        """Hook: one-time setup when attached to a network."""


def _use_coalesced_tick(
    network: CellularNetwork, station, neighbors=None
) -> bool:
    """Whether an admission test may batch its ``B_r`` updates.

    Requires the network to opt in *and* the participating target set
    (the station plus, when given, its neighbours) to be duplicate-free:
    with duplicated targets (only possible with hand-rolled topologies
    whose ``neighbors`` repeats a cell) the sequential path re-checks
    state between the two updates of the same cell, which a single
    batched flush cannot reproduce.  Duplicate-freeness is a property
    of the immutable topology, so it is checked once per cell and
    memoized on the network.
    """
    if not getattr(network, "coalesced_tick", False):
        return False
    if neighbors is None:
        return True  # a single target cannot duplicate
    cache = getattr(network, "_coalesced_tick_ok", None)
    if cache is None:
        cache = network._coalesced_tick_ok = {}
    ok = cache.get(station.cell_id)
    if ok is None:
        cell_ids = [station.cell_id]
        cell_ids.extend(neighbor.cell_id for neighbor in neighbors)
        ok = cache[station.cell_id] = len(set(cell_ids)) == len(cell_ids)
    return ok


class StaticReservationPolicy(AdmissionPolicy):
    """Permanently reserve ``G`` BUs per cell for hand-offs (mid-80s way).

    Parameters
    ----------
    guard_bandwidth:
        ``G`` — BUs permanently excluded from new-connection admission
        (the paper's reference configuration uses 10).
    """

    name = "static"

    def __init__(self, guard_bandwidth: float = 10.0) -> None:
        if guard_bandwidth < 0:
            raise ValueError("guard bandwidth cannot be negative")
        self.guard_bandwidth = float(guard_bandwidth)

    def install(self, network: CellularNetwork) -> None:
        for cell in network.cells:
            cell.reserved_target = self.guard_bandwidth

    def admit_new(
        self,
        network: CellularNetwork,
        cell_id: int,
        bandwidth: float,
        now: float,
    ) -> AdmissionDecision:
        cell = network.cell(cell_id)
        cell.reserved_target = self.guard_bandwidth
        return AdmissionDecision(
            admitted=cell.fits_new_connection(bandwidth),
            calculations=0,
            messages=0,
        )


class AC1(AdmissionPolicy):
    """Predictive reservation checked in the requesting cell only."""

    name = "AC1"

    def admit_new(
        self,
        network: CellularNetwork,
        cell_id: int,
        bandwidth: float,
        now: float,
    ) -> AdmissionDecision:
        station = network.station(cell_id)
        messages_before = network.total_messages()
        if _use_coalesced_tick(network, station):
            network.mark_reservation_dirty(cell_id)
            network.flush_reservation_tick(now)
        else:
            station.update_target_reservation(now)
        admitted = station.cell.fits_new_connection(bandwidth)
        return AdmissionDecision(
            admitted=admitted,
            calculations=1,
            messages=network.total_messages() - messages_before,
        )


class AC2(AdmissionPolicy):
    """Predictive reservation checked in the cell *and* every neighbour."""

    name = "AC2"

    def admit_new(
        self,
        network: CellularNetwork,
        cell_id: int,
        bandwidth: float,
        now: float,
    ) -> AdmissionDecision:
        station = network.station(cell_id)
        messages_before = network.total_messages()
        calculations = 0
        admitted = True
        neighbors = station.neighbor_stations()
        if _use_coalesced_tick(network, station, neighbors):
            # One batched estimation tick.  Bit-identical to the
            # sequential loop below: within a single test at fixed
            # ``now`` the Eq. 5 inputs are frozen, and installing one
            # cell's ``reserved_target`` never feeds another's ``B_r``.
            for neighbor in neighbors:
                network.mark_reservation_dirty(neighbor.cell_id)
            network.mark_reservation_dirty(cell_id)
            network.flush_reservation_tick(now)
            calculations = len(neighbors) + 1
            for neighbor in neighbors:
                if not neighbor.cell.can_reserve_target():
                    admitted = False
        else:
            for neighbor in neighbors:
                neighbor.update_target_reservation(now)
                calculations += 1
                if not neighbor.cell.can_reserve_target():
                    admitted = False
            station.update_target_reservation(now)
            calculations += 1
        if not station.cell.fits_new_connection(bandwidth):
            admitted = False
        return AdmissionDecision(
            admitted=admitted,
            calculations=calculations,
            messages=network.total_messages() - messages_before,
        )


class AC3(AdmissionPolicy):
    """Hybrid: only suspect neighbours re-check their reservations.

    A neighbour is *suspect* when its previously computed target is not
    fully reservable any more (``sum b + B_r^prev > C``, §4.3).
    """

    name = "AC3"

    def admit_new(
        self,
        network: CellularNetwork,
        cell_id: int,
        bandwidth: float,
        now: float,
    ) -> AdmissionDecision:
        station = network.station(cell_id)
        messages_before = network.total_messages()
        calculations = 0
        admitted = True
        neighbors = station.neighbor_stations()
        if _use_coalesced_tick(network, station, neighbors):
            # Suspectness can be read up front: a neighbour's suspect
            # bit depends only on its own state, which the other
            # updates of this test never touch.  The batched flush then
            # refreshes suspects + self in one estimation tick.
            suspects = [
                neighbor
                for neighbor in neighbors
                if neighbor.cell.is_suspect
            ]
            for suspect in suspects:
                network.mark_reservation_dirty(suspect.cell_id)
            network.mark_reservation_dirty(cell_id)
            network.flush_reservation_tick(now)
            calculations = len(suspects) + 1
            for suspect in suspects:
                if suspect.cell.is_suspect:
                    admitted = False
        else:
            for neighbor in neighbors:
                if neighbor.cell.can_reserve_target():
                    continue  # target fits; stays out of the test
                neighbor.update_target_reservation(now)
                calculations += 1
                if not neighbor.cell.can_reserve_target():
                    admitted = False
            station.update_target_reservation(now)
            calculations += 1
        if not station.cell.fits_new_connection(bandwidth):
            admitted = False
        return AdmissionDecision(
            admitted=admitted,
            calculations=calculations,
            messages=network.total_messages() - messages_before,
        )


def make_policy(name: str, **kwargs: float) -> AdmissionPolicy:
    """Factory by scheme name: ``static``, ``AC1``, ``AC2`` or ``AC3``."""
    table: dict[str, type[AdmissionPolicy]] = {
        "static": StaticReservationPolicy,
        "ac1": AC1,
        "ac2": AC2,
        "ac3": AC3,
    }
    try:
        policy_class = table[name.lower()]
    except KeyError:
        raise ValueError(f"unknown admission scheme {name!r}") from None
    return policy_class(**kwargs)  # type: ignore[arg-type]
