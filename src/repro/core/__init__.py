"""The paper's primary contribution (S6 + S7).

* :mod:`repro.core.reservation` — Eqs. 5–6 target reservation bandwidth.
* :mod:`repro.core.window` — the Figure-6 adaptive ``T_est`` controller.
* :mod:`repro.core.admission` — Static / AC1 / AC2 / AC3 policies.
"""

from repro.core.admission import (
    AC1,
    AC2,
    AC3,
    AdmissionDecision,
    AdmissionPolicy,
    StaticReservationPolicy,
    make_policy,
)
from repro.core.qos import AdaptiveQoSPolicy
from repro.core.related import NaghshinehSchwartzPolicy
from repro.core.reservation import (
    aggregate_reservation,
    expected_handoff_bandwidth,
)
from repro.core.window import (
    EstimationWindowController,
    StepPolicy,
    WindowAdjustment,
    WindowControllerConfig,
)

__all__ = [
    "AC1",
    "AC2",
    "AC3",
    "AdaptiveQoSPolicy",
    "AdmissionDecision",
    "AdmissionPolicy",
    "EstimationWindowController",
    "NaghshinehSchwartzPolicy",
    "StaticReservationPolicy",
    "StepPolicy",
    "WindowAdjustment",
    "WindowControllerConfig",
    "aggregate_reservation",
    "expected_handoff_bandwidth",
    "make_policy",
]
