"""repro — Predictive and adaptive bandwidth reservation for hand-offs.

A from-scratch reproduction of Choi & Shin, *"Predictive and Adaptive
Bandwidth Reservation for Hand-Offs in QoS-Sensitive Cellular
Networks"*, ACM SIGCOMM 1998.

Quickstart
----------
>>> from repro import simulate, stationary
>>> result = simulate(stationary("AC3", offered_load=150, duration=300))
>>> 0.0 <= result.dropping_probability <= 1.0
True

Packages
--------
* :mod:`repro.des` — discrete-event simulation kernel.
* :mod:`repro.cellular` — cells, topologies, base stations.
* :mod:`repro.mobility` — mobiles and movement models.
* :mod:`repro.traffic` — arrivals, traffic classes, day profiles.
* :mod:`repro.estimation` — the paper's mobility estimation (§3).
* :mod:`repro.core` — reservation (Eqs. 5–6), window control (Fig. 6),
  admission schemes (Static / AC1 / AC2 / AC3).
* :mod:`repro.simulation` — the evaluation harness.
* :mod:`repro.experiments` — one runner per paper table/figure.
"""

from repro.core import (
    AC1,
    AC2,
    AC3,
    AdmissionPolicy,
    EstimationWindowController,
    StaticReservationPolicy,
    WindowControllerConfig,
    make_policy,
)
from repro.estimation import CacheConfig, MobilityEstimator
from repro.simulation import (
    CellularSimulator,
    SimulationConfig,
    SimulationResult,
    one_directional,
    simulate,
    stationary,
    sweep_offered_load,
    time_varying,
)

__version__ = "1.0.0"

__all__ = [
    "AC1",
    "AC2",
    "AC3",
    "AdmissionPolicy",
    "CacheConfig",
    "CellularSimulator",
    "EstimationWindowController",
    "MobilityEstimator",
    "SimulationConfig",
    "SimulationResult",
    "StaticReservationPolicy",
    "WindowControllerConfig",
    "__version__",
    "make_policy",
    "one_directional",
    "simulate",
    "stationary",
    "sweep_offered_load",
    "time_varying",
]
