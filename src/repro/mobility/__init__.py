"""Mobility substrate (S3): mobiles, movement models, speed samplers."""

from repro.mobility.mobile import Mobile, reset_mobile_ids
from repro.mobility.models import (
    DEFAULT_HEX_POPULATION,
    HexMobilityModel,
    LinearMobilityModel,
    MobilityModel,
    PopulationClass,
    Transition,
    TravelDirections,
)
from repro.mobility.planar import (
    UNIT_CELL_RADIUS,
    HexGeometry,
    PlanarHexModel,
)
from repro.mobility.speed import (
    HIGH_MOBILITY,
    LOW_MOBILITY,
    ConstantSpeedSampler,
    ProfileSpeedSampler,
    SpeedSampler,
    UniformSpeedSampler,
)

__all__ = [
    "DEFAULT_HEX_POPULATION",
    "HIGH_MOBILITY",
    "LOW_MOBILITY",
    "ConstantSpeedSampler",
    "HexGeometry",
    "HexMobilityModel",
    "LinearMobilityModel",
    "Mobile",
    "MobilityModel",
    "PopulationClass",
    "PlanarHexModel",
    "ProfileSpeedSampler",
    "SpeedSampler",
    "Transition",
    "UNIT_CELL_RADIUS",
    "TravelDirections",
    "UniformSpeedSampler",
    "reset_mobile_ids",
]
