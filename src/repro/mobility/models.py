"""Mobility models: where mobiles appear and when they change cells.

A mobility model answers two questions for the simulator:

* :meth:`MobilityModel.spawn` — create the mobile for a new connection
  appearing in a given cell (uniform position within the cell, A2);
* :meth:`MobilityModel.next_transition` — when, and into which cell,
  the mobile will next cross a boundary (``None`` if never).

Implementations:

* :class:`LinearMobilityModel` — the paper's straight road (A1/A4):
  constant speed, fixed direction, deterministic 1-km traversals.
  Supports two-way traffic, one-way traffic (Table 3) and a fraction of
  stationary users.
* :class:`HexMobilityModel` — 2-D extension (§7 future work): mixed
  stationary/pedestrian/vehicular population on a hex grid with heading
  persistence, so the aggregate history has learnable structure.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Protocol

from repro.cellular.base_station import EXIT_CELL
from repro.cellular.topology import HexTopology, LinearTopology
from repro.mobility.mobile import Mobile
from repro.mobility.speed import SpeedSampler


@dataclass(frozen=True, slots=True)
class Transition:
    """A future boundary crossing: at ``time``, into ``next_cell``.

    ``next_cell`` is :data:`~repro.cellular.base_station.EXIT_CELL` when
    the mobile drives off an open road's end.
    """

    time: float
    next_cell: int


class MobilityModel(Protocol):
    """What the simulator needs from a mobility model."""

    def spawn(self, cell_id: int, now: float, rng: random.Random) -> Mobile:
        ...

    def next_transition(
        self, mobile: Mobile, now: float, rng: random.Random
    ) -> Transition | None:
        ...


class TravelDirections(enum.Enum):
    """Direction mix on the 1-D road."""

    TWO_WAY = "two_way"      # A4: either direction with equal probability
    ONE_WAY = "one_way"      # Table 3: everyone drives cell 0 -> cell n-1


class LinearMobilityModel:
    """Constant-velocity mobiles on the paper's straight road.

    Parameters
    ----------
    topology:
        The road (provides geometry and ring/line behaviour).
    speed_sampler:
        Creation-time speed distribution.
    directions:
        Two-way (default, A4) or one-way (Table 3 scenario).
    stationary_fraction:
        Probability that a new mobile never moves (0 in the paper's 1-D
        runs; used by mixed-population scenarios).
    """

    def __init__(
        self,
        topology: LinearTopology,
        speed_sampler: SpeedSampler,
        directions: TravelDirections = TravelDirections.TWO_WAY,
        stationary_fraction: float = 0.0,
    ) -> None:
        if not 0.0 <= stationary_fraction <= 1.0:
            raise ValueError("stationary fraction must be in [0, 1]")
        self.topology = topology
        self.speed_sampler = speed_sampler
        self.directions = directions
        self.stationary_fraction = stationary_fraction

    def spawn(self, cell_id: int, now: float, rng: random.Random) -> Mobile:
        low, high = self.topology.cell_span_km(cell_id)
        position = rng.uniform(low, high)
        if (
            self.stationary_fraction > 0.0
            and rng.random() < self.stationary_fraction
        ):
            return Mobile(position, 0.0, 0, cell_id, position_time=now)
        if self.directions is TravelDirections.ONE_WAY:
            direction = 1
        else:
            direction = 1 if rng.random() < 0.5 else -1
        speed = self.speed_sampler.sample(now, rng)
        return Mobile(position, speed, direction, cell_id, position_time=now)

    def next_transition(
        self, mobile: Mobile, now: float, rng: random.Random | None = None
    ) -> Transition | None:
        if not mobile.is_moving:
            return None
        low, high = self.topology.cell_span_km(mobile.cell_id)
        if mobile.direction > 0:
            distance = high - mobile.position_km
        else:
            distance = mobile.position_km - low
        # A mobile pinned exactly on the boundary it just crossed must
        # traverse the full cell.
        if distance <= 0.0:
            distance = self.topology.cell_diameter_km
        delay = distance / mobile.speed_km_per_s
        next_cell = self._next_cell(mobile.cell_id, mobile.direction)
        return Transition(now + delay, next_cell)

    def crossing_position(self, mobile: Mobile) -> float:
        """Road coordinate of the boundary the mobile will cross next."""
        low, high = self.topology.cell_span_km(mobile.cell_id)
        boundary = high if mobile.direction > 0 else low
        return self.topology.wrap_position(boundary)

    def _next_cell(self, cell_id: int, direction: int) -> int:
        candidate = cell_id + direction
        if self.topology.ring:
            return candidate % self.topology.num_cells
        if 0 <= candidate < self.topology.num_cells:
            return candidate
        return EXIT_CELL


@dataclass(frozen=True, slots=True)
class PopulationClass:
    """One class of users on the hex grid (§7 mixed populations)."""

    name: str
    fraction: float
    mean_sojourn: float  # seconds per cell; <= 0 means stationary
    heading_persistence: float = 0.7  # P(keep going the same way)


DEFAULT_HEX_POPULATION = (
    PopulationClass("vehicular", 0.3, 45.0, heading_persistence=0.85),
    PopulationClass("pedestrian", 0.5, 400.0, heading_persistence=0.6),
    PopulationClass("stationary", 0.2, 0.0),
)


class HexMobilityModel:
    """Heading-persistent movement on a hexagonal grid.

    Sojourn times are exponential around the class mean; the next cell
    keeps the previous heading with probability ``heading_persistence``
    and otherwise deviates to one of the two adjacent headings — giving
    the (prev, next) correlation the estimator is designed to learn.
    """

    #: Minimum hand-off notice in seconds: sojourns are clamped so a
    #: mobile entering a cell never crosses again sooner than this.
    #: The spatial sharding layer relies on it as conservative
    #: lookahead — its epoch barrier interval must not exceed it.
    MIN_NOTICE = 1.0

    def __init__(
        self,
        topology: HexTopology,
        population: tuple[PopulationClass, ...] = DEFAULT_HEX_POPULATION,
    ) -> None:
        total = sum(member.fraction for member in population)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"population fractions sum to {total}, not 1")
        self.topology = topology
        self.population = population
        self._class_of: dict[int, PopulationClass] = {}

    def spawn(self, cell_id: int, now: float, rng: random.Random) -> Mobile:
        draw = rng.random()
        cumulative = 0.0
        chosen = self.population[-1]
        for member in self.population:
            cumulative += member.fraction
            if draw < cumulative:
                chosen = member
                break
        if chosen.mean_sojourn <= 0:
            mobile = Mobile(0.0, 0.0, 0, cell_id, position_time=now)
        else:
            heading = rng.randrange(6)
            # Encode "speed" so is_moving holds; sojourns are sampled
            # directly, so only positivity matters.
            mobile = Mobile(0.0, 1.0, heading, cell_id, position_time=now)
        self._class_of[mobile.mobile_id] = chosen
        return mobile

    def next_transition(
        self, mobile: Mobile, now: float, rng: random.Random | None = None
    ) -> Transition | None:
        member = self._class_of.get(mobile.mobile_id)
        if member is None or member.mean_sojourn <= 0:
            return None
        neighbors = self.topology.neighbors(mobile.cell_id)
        if not neighbors:
            return None
        if rng is None:
            rng = random.Random(
                hash((mobile.mobile_id, round(now * 1000)))
            )
        sojourn = rng.expovariate(1.0 / member.mean_sojourn)
        heading = mobile.direction % 6
        if rng.random() < member.heading_persistence:
            index = heading
        else:
            index = (heading + rng.choice((-1, 1))) % 6
        mobile.direction = index
        next_cell = neighbors[index % len(neighbors)]
        return Transition(now + max(sojourn, self.MIN_NOTICE), next_cell)

    def forget(self, mobile: Mobile) -> None:
        """Release per-mobile state once its connection ends."""
        self._class_of.pop(mobile.mobile_id, None)
