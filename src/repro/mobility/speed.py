"""Speed samplers for newly created mobiles.

Paper A4 draws each mobile's speed uniformly from ``[SP_min, SP_max]``
once, at creation.  The time-varying experiment (§5.3) instead centres
the range on a time-of-day profile: ``[S(t) - 20, S(t) + 20]`` km/h.
"""

from __future__ import annotations

import random
from typing import Protocol

from repro.traffic.profiles import DayProfile

#: The paper's high-mobility speed range (km/h).
HIGH_MOBILITY = (80.0, 120.0)
#: The paper's low-mobility speed range (km/h).
LOW_MOBILITY = (40.0, 60.0)


class SpeedSampler(Protocol):
    """Draws a creation-time speed in km/h."""

    def sample(self, now: float, rng: random.Random) -> float: ...


class UniformSpeedSampler:
    """Uniform over a fixed ``[minimum, maximum]`` km/h range (A4)."""

    def __init__(self, minimum: float, maximum: float) -> None:
        if minimum < 0 or maximum < minimum:
            raise ValueError(
                f"invalid speed range [{minimum}, {maximum}]"
            )
        self.minimum = float(minimum)
        self.maximum = float(maximum)

    def sample(self, now: float, rng: random.Random) -> float:
        return rng.uniform(self.minimum, self.maximum)

    @property
    def mean(self) -> float:
        return 0.5 * (self.minimum + self.maximum)


class ProfileSpeedSampler:
    """Uniform over ``[S(t) - half_width, S(t) + half_width]`` (§5.3)."""

    def __init__(
        self, profile: DayProfile, half_width: float = 20.0
    ) -> None:
        if half_width < 0:
            raise ValueError("half width cannot be negative")
        self.profile = profile
        self.half_width = float(half_width)

    def sample(self, now: float, rng: random.Random) -> float:
        center = self.profile.value_at(now)
        low = max(center - self.half_width, 0.0)
        high = center + self.half_width
        return rng.uniform(low, high)


class ConstantSpeedSampler:
    """Every mobile travels at exactly ``speed`` km/h (tests, examples)."""

    def __init__(self, speed: float) -> None:
        if speed < 0:
            raise ValueError("speed cannot be negative")
        self.speed = float(speed)

    def sample(self, now: float, rng: random.Random) -> float:
        return self.speed
