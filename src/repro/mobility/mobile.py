"""The mobile terminal: position and velocity state.

Positions are road coordinates in km for the 1-D model; the 2-D hex
model tracks only the current cell and a heading.  A mobile's kinematic
state is set at creation and, per paper assumption A4, never changes
(constant speed, never turns around).
"""

from __future__ import annotations

from dataclasses import dataclass, field


class _IdCounter:
    """``itertools.count`` with a readable/settable position (see
    :class:`repro.traffic.connection._IdCounter`)."""

    __slots__ = ("value",)

    def __init__(self, start: int = 0) -> None:
        self.value = start

    def __next__(self) -> int:
        value = self.value
        self.value = value + 1
        return value


_mobile_ids = _IdCounter()


def reset_mobile_ids(start: int = 0) -> None:
    """Restart the global id sequence (test isolation / state restore)."""
    _mobile_ids.value = start


def peek_mobile_ids() -> int:
    """Next mobile id to be issued, without consuming it."""
    return _mobile_ids.value


@dataclass(slots=True)
class Mobile:
    """One mobile terminal (slotted — one live instance per connection).

    Attributes
    ----------
    position_km:
        Road coordinate (1-D model) at ``position_time``; unused by the
        hex model.
    speed_kmh:
        Travel speed; 0 for stationary users.
    direction:
        +1 / -1 along the road (1-D), or a hex heading index 0–5 (2-D);
        ignored when stationary.
    cell_id:
        Cell currently containing the mobile (kept explicitly so exact
        boundary positions are unambiguous).
    """

    position_km: float
    speed_kmh: float
    direction: int
    cell_id: int
    position_time: float = 0.0
    mobile_id: int = field(default_factory=lambda: next(_mobile_ids))

    def __post_init__(self) -> None:
        if self.speed_kmh < 0:
            raise ValueError(f"speed cannot be negative: {self.speed_kmh}")

    @property
    def speed_km_per_s(self) -> float:
        """Speed converted to km/second."""
        return self.speed_kmh / 3600.0

    @property
    def is_moving(self) -> bool:
        return self.speed_kmh > 0.0

    def place(self, position_km: float, cell_id: int, now: float) -> None:
        """Pin the mobile at an exact position (e.g. a cell boundary)."""
        self.position_km = position_km
        self.cell_id = cell_id
        self.position_time = now
