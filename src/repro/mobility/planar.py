"""Planar 2-D mobility on a hexagonally tiled plane (paper §7).

Unlike :class:`~repro.mobility.models.HexMobilityModel` (which samples
sojourns abstractly), this model gives mobiles real coordinates: each
travels in a straight line at constant speed (the planar analogue of
assumption A4), and cell boundaries are the Voronoi edges between hex
cell centers.  Crossings are computed in closed form — the first
perpendicular-bisector crossing toward any neighbour — so the hand-off
geometry is exact.

Straight-line travel creates exactly the (prev, next) structure §3's
estimator is built to learn: a mobile that entered from the west almost
surely leaves to the east.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.cellular.base_station import EXIT_CELL
from repro.cellular.topology import HexTopology
from repro.mobility.mobile import Mobile
from repro.mobility.models import Transition
from repro.mobility.speed import SpeedSampler

#: Circumradius giving hexagons 1 km across flats (neighbour centers
#: sqrt(3)*R = 1 km apart), matching the paper's 1 km cell diameter.
UNIT_CELL_RADIUS = 1.0 / math.sqrt(3.0)


class HexGeometry:
    """Pointy-top hexagonal lattice matching a :class:`HexTopology`.

    Parameters
    ----------
    topology:
        The grid (must be non-wrapped: a torus has no planar embedding
        with straight-line travel).
    cell_radius_km:
        Hexagon circumradius ``R``; neighbour centers sit
        ``sqrt(3) * R`` apart.
    """

    def __init__(
        self,
        topology: HexTopology,
        cell_radius_km: float = UNIT_CELL_RADIUS,
    ) -> None:
        if topology.wrap:
            raise ValueError("planar geometry needs a non-wrapped grid")
        if cell_radius_km <= 0:
            raise ValueError("cell radius must be positive")
        self.topology = topology
        self.radius = float(cell_radius_km)
        self._centers: list[tuple[float, float]] = []
        for cell_id in range(topology.num_cells):
            row, col = topology.coordinates(cell_id)
            x = (col + 0.5 * (row % 2)) * math.sqrt(3.0) * self.radius
            y = row * 1.5 * self.radius
            self._centers.append((x, y))

    def center(self, cell_id: int) -> tuple[float, float]:
        """Cartesian center of a cell (km)."""
        return self._centers[cell_id]

    def cell_of(self, x: float, y: float) -> int:
        """Cell whose center is nearest to ``(x, y)`` (Voronoi rule)."""
        best, best_distance = 0, float("inf")
        for cell_id, (cx, cy) in enumerate(self._centers):
            distance = (x - cx) ** 2 + (y - cy) ** 2
            if distance < best_distance:
                best, best_distance = cell_id, distance
        return best

    def neighbor_distance(self) -> float:
        """Distance between adjacent cell centers (km)."""
        return math.sqrt(3.0) * self.radius


@dataclass
class _Trajectory:
    """Birth state of a straight-line mobile; position is derived."""

    x0: float
    y0: float
    t0: float
    vx: float  # km/s
    vy: float

    def position(self, time: float) -> tuple[float, float]:
        dt = time - self.t0
        return self.x0 + self.vx * dt, self.y0 + self.vy * dt


class PlanarHexModel:
    """Straight-line mobiles on the hex plane.

    Parameters
    ----------
    geometry:
        The lattice (topology + cell size).
    speed_sampler:
        Creation-time speed distribution (km/h).
    stationary_fraction:
        Probability a new mobile never moves.
    """

    def __init__(
        self,
        geometry: HexGeometry,
        speed_sampler: SpeedSampler,
        stationary_fraction: float = 0.0,
    ) -> None:
        if not 0.0 <= stationary_fraction <= 1.0:
            raise ValueError("stationary fraction must be in [0, 1]")
        self.geometry = geometry
        self.topology = geometry.topology
        self.speed_sampler = speed_sampler
        self.stationary_fraction = stationary_fraction
        self._trajectories: dict[int, _Trajectory] = {}

    # ------------------------------------------------------------------
    # MobilityModel interface
    # ------------------------------------------------------------------
    def spawn(self, cell_id: int, now: float, rng: random.Random) -> Mobile:
        x, y = self._sample_point_in_cell(cell_id, rng)
        if (
            self.stationary_fraction > 0.0
            and rng.random() < self.stationary_fraction
        ):
            mobile = Mobile(0.0, 0.0, 0, cell_id, position_time=now)
            self._trajectories[mobile.mobile_id] = _Trajectory(
                x, y, now, 0.0, 0.0
            )
            return mobile
        speed_kmh = self.speed_sampler.sample(now, rng)
        angle = rng.uniform(0.0, 2.0 * math.pi)
        speed = speed_kmh / 3600.0
        mobile = Mobile(0.0, speed_kmh, 0, cell_id, position_time=now)
        self._trajectories[mobile.mobile_id] = _Trajectory(
            x, y, now, speed * math.cos(angle), speed * math.sin(angle)
        )
        return mobile

    def next_transition(
        self, mobile: Mobile, now: float, rng: random.Random | None = None
    ) -> Transition | None:
        trajectory = self._trajectories.get(mobile.mobile_id)
        if trajectory is None or not mobile.is_moving:
            return None
        x, y = trajectory.position(now)
        cx, cy = self.geometry.center(mobile.cell_id)
        best_time, best_cell = None, EXIT_CELL
        for neighbor in self.topology.neighbors(mobile.cell_id):
            nx, ny = self.geometry.center(neighbor)
            dx, dy = nx - cx, ny - cy
            approach = trajectory.vx * dx + trajectory.vy * dy
            if approach <= 1e-15:
                continue  # moving parallel to or away from this border
            mx, my = (cx + nx) / 2.0, (cy + ny) / 2.0
            t = ((mx - x) * dx + (my - y) * dy) / approach
            if t <= 1e-9:
                continue
            if best_time is None or t < best_time:
                best_time, best_cell = t, neighbor
        if best_time is None:
            # Heading out of the lattice: report the exit when the
            # mobile is clearly beyond its own cell.
            exit_time = self._time_to_leave_cell(trajectory, now, (cx, cy))
            if exit_time is None:
                return None
            return Transition(now + exit_time, EXIT_CELL)
        return Transition(now + best_time, best_cell)

    def forget(self, mobile: Mobile) -> None:
        """Release a finished mobile's trajectory."""
        self._trajectories.pop(mobile.mobile_id, None)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def position_of(self, mobile: Mobile, now: float) -> tuple[float, float]:
        """Current coordinates of a tracked mobile (km)."""
        trajectory = self._trajectories[mobile.mobile_id]
        return trajectory.position(now)

    def _sample_point_in_cell(
        self, cell_id: int, rng: random.Random
    ) -> tuple[float, float]:
        """Uniform point in the cell's Voronoi hexagon (rejection)."""
        cx, cy = self.geometry.center(cell_id)
        radius = self.geometry.radius
        for _ in range(200):
            x = cx + rng.uniform(-radius, radius)
            y = cy + rng.uniform(-radius, radius)
            if self.geometry.cell_of(x, y) == cell_id:
                return x, y
        return cx, cy  # pathological RNG: fall back to the center

    def _time_to_leave_cell(
        self,
        trajectory: _Trajectory,
        now: float,
        center: tuple[float, float],
    ) -> float | None:
        """Seconds until the mobile is ``2R`` from its cell center."""
        speed = math.hypot(trajectory.vx, trajectory.vy)
        if speed <= 0.0:
            return None
        x, y = trajectory.position(now)
        cx, cy = center
        # Solve |p + t v - c| = 2R for the positive root.
        px, py = x - cx, y - cy
        target = 2.0 * self.geometry.radius
        a = speed * speed
        b = 2.0 * (px * trajectory.vx + py * trajectory.vy)
        c = px * px + py * py - target * target
        discriminant = b * b - 4.0 * a * c
        if discriminant < 0.0:
            return None
        t = (-b + math.sqrt(discriminant)) / (2.0 * a)
        return t if t > 1e-9 else None
