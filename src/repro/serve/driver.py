"""The synchronous streaming core: DES decisions from external events.

A :class:`StreamDriver` builds the exact substrate a
:class:`~repro.simulation.simulator.CellularSimulator` would build —
same network, same admission policy, same coalesced-tick flush path,
same metrics collector, same (optional) warm start — but never runs the
simulator's random processes.  Instead, timestamped
:class:`~repro.serve.events.StreamEvent`\\ s are injected into the DES
heap with the priorities their simulated counterparts carry
(``DEPARTURE < HANDOFF < ARRIVAL < ... < MONITOR``) and the engine is
advanced to each frontier (:meth:`~repro.des.Engine.advance_to`).
Internal events — the periodic monitor samples — therefore interleave
with the stream in exactly the order a virtual-time run fires them,
which is what makes replay parity *exact* rather than approximate: the
handler bodies below mirror the simulator's, minus every RNG draw (the
stream supplies what the RNG used to decide).
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

from repro.cellular.base_station import EXIT_CELL
from repro.des.events import EventPriority
from repro.serve.clock import StreamClock, VirtualClock
from repro.serve.events import ARRIVAL, COMPLETE, EXIT, HANDOFF, StreamEvent
from repro.traffic.classes import VOICE
from repro.traffic.connection import Connection, ConnectionState

__all__ = ["Decision", "DecisionSlot", "StreamDriver", "comparable_counters", "warm_start"]


@dataclass(frozen=True, slots=True)
class Decision:
    """Outcome of one streamed admission/hand-off query.

    ``reserved``/``used`` snapshot the decided cell *after* the
    decision was applied — the live answer to "how much is set aside
    for hand-offs here right now".
    """

    t: float
    kind: str
    cell: int
    admitted: bool
    conn: int | None
    reserved: float
    used: float

    def to_json(self) -> dict:
        return {
            "t": round(self.t, 6),
            "kind": self.kind,
            "cell": self.cell,
            "admitted": self.admitted,
            "conn": self.conn,
            "reserved": round(self.reserved, 6),
            "used": round(self.used, 6),
        }


class DecisionSlot:
    """Filled when the submitted event fires (after :meth:`flush`)."""

    __slots__ = ("decision",)

    def __init__(self) -> None:
        self.decision: Decision | None = None


#: Heap priority of each stream event kind — identical to the priority
#: the simulator schedules the corresponding internal event with, so
#: same-timestamp ties resolve the same way on both paths.
_PRIORITY = {
    ARRIVAL: EventPriority.ARRIVAL,
    HANDOFF: EventPriority.HANDOFF,
    COMPLETE: EventPriority.DEPARTURE,
    EXIT: EventPriority.HANDOFF,
}


class StreamDriver:
    """Applies a timestamped event stream to a live admission core.

    Parameters
    ----------
    config:
        The scenario (capacity, scheme, estimator windows, warm state).
        ``retry_enabled`` and ``soft_handoff_window`` must be off: both
        are DES-internal random processes with no stream counterpart.
    clock:
        Time source (default: a strict :class:`VirtualClock` — replay
        mode).  Live services pass a :class:`~repro.serve.clock.WallClock`,
        which stamps unstamped events and folds racing timestamps
        forward instead of erroring.
    horizon:
        Monitor-sampling horizon in stream seconds.  Defaults to
        ``config.duration`` (replay parity); pass ``None`` for an
        open-ended live service.
    """

    def __init__(
        self,
        config,
        *,
        clock: StreamClock | None = None,
        horizon: float | object = "config",
    ) -> None:
        if config.retry_enabled:
            raise ValueError(
                "streaming mode cannot replay retry draws; disable"
                " retry_enabled (blocked clients re-query instead)"
            )
        if config.soft_handoff_window > 0:
            raise ValueError(
                "streaming mode resolves hand-offs at their event time;"
                " soft_handoff_window must be 0"
            )
        from repro.simulation.simulator import CellularSimulator

        # Construction only: the simulator wires kernel selection,
        # telemetry, network, policy, metrics and warm-state hydration
        # exactly as a DES run would.  Its random processes are never
        # started — run() is not called.
        self.sim = CellularSimulator(config)
        self.config = config
        self.engine = self.sim.engine
        self.network = self.sim.network
        self.policy = self.sim.policy
        self.metrics = self.sim.metrics
        self.clock = clock if clock is not None else VirtualClock(self.engine)
        self.horizon = config.duration if horizon == "config" else horizon
        self._traffic = {VOICE.name: VOICE}
        video = self.sim.mix.video_class
        self._traffic[video.name] = video
        #: Live connections keyed by *stream* id (decoupled from the
        #: process-global connection-id counter).
        self._connections: dict[int, Connection] = {}
        self._next_conn = 0
        self._frontier = self.engine.now
        self._sample_event = None
        self._started = perf_counter()
        self.decisions = 0
        #: Events naming an unknown/finished connection (live clients
        #: race departures; replay streams never hit this).
        self.ignored = 0
        self._dispatch = {
            ARRIVAL: self._fire_arrival,
            HANDOFF: self._fire_handoff,
            COMPLETE: self._fire_complete,
            EXIT: self._fire_exit,
        }
        if config.sample_interval > 0:
            self._sample_event = self.engine.call_at(
                config.sample_interval,
                self._on_sample,
                priority=EventPriority.MONITOR,
            )

    # -- stream ingestion ----------------------------------------------
    def submit(self, event: StreamEvent) -> DecisionSlot:
        """Queue one event; its decision lands in the returned slot
        when :meth:`flush` advances the engine past it."""
        if event.kind == ARRIVAL:
            if event.traffic not in self._traffic:
                raise ValueError(
                    f"unknown traffic class {event.traffic!r}"
                    f" (have: {', '.join(sorted(self._traffic))})"
                )
            if not 0 <= event.cell < self.network.topology.num_cells:
                raise ValueError(f"no such cell {event.cell}")
        elif event.kind == HANDOFF:
            if not 0 <= event.cell < self.network.topology.num_cells:
                raise ValueError(f"no such cell {event.cell}")
        t = self.clock.monotonic(self.clock.stamp(event.t), self.engine.now)
        slot = DecisionSlot()
        self.engine.call_at(
            t, self._dispatch[event.kind], event, slot,
            priority=_PRIORITY[event.kind],
        )
        if t > self._frontier:
            self._frontier = t
        return slot

    def flush(self) -> int:
        """Advance the engine to the submitted frontier, firing every
        queued event (stream and internal) in heap order.  Returns the
        number of events fired."""
        return self.engine.advance_to(self._frontier)

    def apply(self, event: StreamEvent) -> Decision | None:
        """Submit + flush one event (replay convenience)."""
        slot = self.submit(event)
        self.flush()
        return slot.decision

    def replay(self, events) -> list[Decision]:
        """Apply a recorded stream; returns the decision per query
        event (arrivals and hand-offs, in stream order)."""
        out = []
        for event in events:
            decision = self.apply(event)
            if event.kind in (ARRIVAL, HANDOFF):
                out.append(decision)
        return out

    def finish(self) -> None:
        """Advance to the horizon (fires trailing monitor samples)."""
        if self.horizon is not None and self.horizon > self.engine.now:
            self.engine.advance_to(self.horizon)

    # -- event handlers (exact simulator call order, RNG-free) ---------
    def _decision(self, kind, now, cell_id, admitted, conn):
        cell = self.network.cell(cell_id)
        self.decisions += 1
        return Decision(
            t=now,
            kind=kind,
            cell=cell_id,
            admitted=admitted,
            conn=conn,
            reserved=cell.reserved_target,
            used=cell.used_bandwidth,
        )

    def _fire_arrival(self, event: StreamEvent, slot: DecisionSlot) -> None:
        now = self.engine.now
        cell_id = event.cell
        traffic_class = self._traffic[event.traffic]
        decision = self.policy.admit_new(
            self.network, cell_id, traffic_class.bandwidth, now
        )
        self.metrics.record_admission_test(
            decision.calculations, decision.messages
        )
        admitted = decision.admitted
        self.metrics.record_request(cell_id, now, blocked=not admitted)
        conn_id = None
        if admitted:
            connection = Connection(
                traffic_class,
                start_time=now,
                cell_id=cell_id,
                mobile=None,
                prev_cell=None,
                cell_entry_time=now,
            )
            self.network.cell(cell_id).attach(connection)
            if event.conn >= 0:
                conn_id = event.conn
            else:
                conn_id = self._next_conn
            self._next_conn = max(self._next_conn, conn_id) + 1
            self._connections[conn_id] = connection
            # Mirrored so checkpoints capture the live population.
            self.sim.active_connections[connection.connection_id] = connection
        slot.decision = self._decision(ARRIVAL, now, cell_id, admitted, conn_id)

    def _fire_handoff(self, event: StreamEvent, slot: DecisionSlot) -> None:
        connection = self._connections.get(event.conn)
        if connection is None or not connection.is_active:
            self.ignored += 1
            return
        now = self.engine.now
        old_cell = connection.cell_id
        new_cell = event.cell
        allocation = self.policy.handoff_allocation(
            self.network, new_cell, connection
        )
        admitted = allocation is not None
        self.network.station(old_cell).record_departure(
            now, connection.prev_cell, new_cell, connection.cell_entry_time
        )
        self.network.cell(old_cell).detach(connection)
        self.network.station(new_cell).on_handoff_arrival(
            dropped=not admitted, now=now
        )
        self.metrics.record_handoff(new_cell, now, dropped=not admitted)
        self.policy.on_release(self.network, old_cell, now)
        if not admitted:
            connection.finish(ConnectionState.DROPPED, now)
            self._forget(event.conn, connection)
        else:
            connection.allocated_bandwidth = allocation
            connection.move_to(new_cell, now)
            self.network.cell(new_cell).attach(connection)
        slot.decision = self._decision(
            HANDOFF, now, new_cell, admitted, event.conn
        )

    def _fire_exit(self, event: StreamEvent, slot: DecisionSlot) -> None:
        connection = self._connections.get(event.conn)
        if connection is None or not connection.is_active:
            self.ignored += 1
            return
        now = self.engine.now
        old_cell = connection.cell_id
        self.network.station(old_cell).record_departure(
            now, connection.prev_cell, EXIT_CELL, connection.cell_entry_time
        )
        self.network.cell(old_cell).detach(connection)
        connection.finish(ConnectionState.EXITED, now)
        self.metrics.record_exit(old_cell, now)
        self.policy.on_release(self.network, old_cell, now)
        self._forget(event.conn, connection)

    def _fire_complete(self, event: StreamEvent, slot: DecisionSlot) -> None:
        connection = self._connections.get(event.conn)
        if connection is None or not connection.is_active:
            self.ignored += 1
            return
        now = self.engine.now
        cell_id = connection.cell_id
        self.network.cell(cell_id).detach(connection)
        connection.finish(ConnectionState.COMPLETED, now)
        self.metrics.record_completion(cell_id, now)
        self.policy.on_release(self.network, cell_id, now)
        self._forget(event.conn, connection)

    def _forget(self, conn_id: int, connection: Connection) -> None:
        self._connections.pop(conn_id, None)
        self.sim.active_connections.pop(connection.connection_id, None)

    def _on_sample(self) -> None:
        now = self.engine.now
        for station in self.network.stations:
            self.metrics.sample_cell(
                station.cell_id,
                now,
                station.cell.reserved_target,
                station.cell.used_bandwidth,
                station.t_est,
            )
        next_time = now + self.config.sample_interval
        if self.horizon is None or next_time <= self.horizon:
            self._sample_event = self.engine.call_at(
                next_time, self._on_sample, priority=EventPriority.MONITOR
            )
        else:
            self._sample_event = None

    # -- state & results -----------------------------------------------
    @property
    def active_connections(self) -> int:
        return len(self._connections)

    @property
    def traffic_classes(self) -> tuple[str, ...]:
        """Admissible traffic-class names for this scenario's mix."""
        return tuple(self._traffic)

    def result(self):
        """The run's :class:`SimulationResult`, built the simulator's way."""
        self.sim._finished = True
        return self.sim._build_result(perf_counter() - self._started)

    def save_state(self, path):
        """Write a durable checkpoint of the live state.

        The pending monitor sample is the driver's own (not a
        simulator method), so it is parked during capture — the state
        schema only serializes simulator-owned events — and re-armed at
        the same timestamp afterwards.
        """
        from repro.state import save_checkpoint

        pending = self._sample_event
        resume_at = None
        if pending is not None and not pending.cancelled:
            resume_at = pending.time
            pending.cancel()
            self._sample_event = None
        try:
            return save_checkpoint(self.sim, path)
        finally:
            if resume_at is not None:
                self._sample_event = self.engine.call_at(
                    resume_at, self._on_sample, priority=EventPriority.MONITOR
                )


def comparable_counters(result) -> dict:
    """A :meth:`metrics_key`-comparable view of a run's counters.

    ``events_processed`` is dropped: the DES path fires its random
    processes (Poisson renewals, lifetime draws, crossings) as engine
    events while the streaming path receives them from outside, so the
    raw event count is mode-dependent even when every decision and
    counter matches.
    """
    key = result.metrics_key()
    key.pop("events_processed", None)
    return key


def warm_start(path, carry_windows: bool = True):
    """Warm-start handle for ``repro serve --load-state``.

    Rebases the checkpoint's estimator history by its own final clock,
    so a service starting its stream at ``t = 0`` sees the learned
    quadruplets just in the past — the same shift the multi-day
    campaign applies between simulated days.
    """
    from repro.state import CheckpointWarmStart
    from repro.state.format import load_manifest

    clock = float(load_manifest(path).get("clock", 0.0))
    return CheckpointWarmStart(
        path, rebase_seconds=clock, carry_windows=carry_windows
    )
