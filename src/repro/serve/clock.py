"""The clock abstraction: one engine core, two time sources.

The DES engine's clock only ever moves when someone tells it to — in
virtual-time mode the heap's next event does, in streaming mode the
outside world does (``Engine.advance_to``).  A :class:`StreamClock`
names that contract:

* :meth:`StreamClock.stamp` — assign a stream timestamp to an event
  that arrived without one;
* :meth:`StreamClock.monotonic` — clamp/validate an externally
  supplied timestamp against the stream's high-water mark.

:class:`VirtualClock` is the degenerate DES case (time is whatever the
engine says; external stamps are refused — virtual runs own their
timeline).  :class:`WallClock` maps ``perf_counter`` onto stream
seconds, optionally scaled (``time_scale=60`` replays a simulated
minute per wall second) and offset (warm starts resume mid-timeline).
"""

from __future__ import annotations

from time import perf_counter

__all__ = ["StreamClock", "VirtualClock", "WallClock"]


class StreamClock:
    """Base contract: where do event timestamps come from?"""

    def now(self) -> float:
        """Current stream time in seconds."""
        raise NotImplementedError

    def stamp(self, t: float | None) -> float:
        """Timestamp for an event (``t=None`` means "stamp it for me")."""
        raise NotImplementedError

    def monotonic(self, t: float, floor: float) -> float:
        """Reconcile an external timestamp with the stream's high-water
        mark ``floor`` (the engine's current time)."""
        raise NotImplementedError


class VirtualClock(StreamClock):
    """DES mode: the event heap is the only legitimate time source.

    Replay (the parity path) uses this clock: every event carries its
    recorded timestamp and a regression below the engine's clock is an
    error, never silently repaired — the replayed decision stream must
    match the DES run event for event.
    """

    def __init__(self, engine) -> None:
        self.engine = engine

    def now(self) -> float:
        return self.engine.now

    def stamp(self, t: float | None) -> float:
        if t is None:
            raise ValueError(
                "virtual-clock events must carry explicit timestamps"
            )
        return float(t)

    def monotonic(self, t: float, floor: float) -> float:
        if t < floor:
            raise ValueError(
                f"event timestamp {t} precedes stream time {floor}"
            )
        return t


class WallClock(StreamClock):
    """Live mode: stream seconds derived from ``perf_counter``.

    Parameters
    ----------
    time_scale:
        Stream seconds per wall second (1.0 = real time; larger values
        replay faster — useful when driving the service from a recorded
        trace at speed).
    origin:
        Stream time at construction (warm restarts resume where the
        checkpointed timeline left off).
    """

    def __init__(self, time_scale: float = 1.0, origin: float = 0.0) -> None:
        if time_scale <= 0:
            raise ValueError(f"time_scale must be positive, got {time_scale}")
        self.time_scale = float(time_scale)
        self.origin = float(origin)
        self._started = perf_counter()

    def now(self) -> float:
        return self.origin + (perf_counter() - self._started) * self.time_scale

    def stamp(self, t: float | None) -> float:
        return self.now() if t is None else float(t)

    def monotonic(self, t: float, floor: float) -> float:
        # Live clients race: a query stamped before an already-applied
        # event is folded forward to the stream's high-water mark (the
        # decision is made against current state — the only state a
        # live service has).
        return t if t >= floor else floor
