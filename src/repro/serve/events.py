"""The replayable event-stream format and the DES-side recorder.

A live admission service and a virtual-time simulation are "the same
run" exactly when they see the same *semantic* event stream: new
connection requests, hand-off resolutions, completions and road exits,
each with a timestamp.  :class:`StreamEvent` is that wire format (one
JSON object per line when serialized); :class:`RunRecorder` hooks into
:class:`~repro.simulation.simulator.CellularSimulator` and captures the
stream a DES run *would have sent* to a service — including the
decision the simulator actually made, so a replay can be checked
decision-for-decision (the parity proof in ``tests/serve``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import TextIO

__all__ = [
    "ARRIVAL",
    "COMPLETE",
    "EXIT",
    "HANDOFF",
    "RunRecorder",
    "StreamEvent",
    "decode_event",
    "encode_event",
    "read_events",
    "record_run",
    "write_events",
]

ARRIVAL = "arrival"
HANDOFF = "handoff"
COMPLETE = "complete"
EXIT = "exit"

_KINDS = frozenset({ARRIVAL, HANDOFF, COMPLETE, EXIT})


@dataclass(frozen=True, slots=True)
class StreamEvent:
    """One timestamped event of a live (or recorded) session stream.

    Attributes
    ----------
    t:
        Stream timestamp in seconds (``None`` on live queries means
        "stamp it on arrival" — see :mod:`repro.serve.clock`).
    kind:
        ``arrival`` (a new connection request in ``cell``),
        ``handoff`` (connection ``conn`` reached the boundary into
        ``cell``), ``complete`` (lifetime expired) or ``exit`` (the
        mobile left the network).
    cell:
        Birth cell for arrivals, target cell for hand-offs; unused
        (``-1``) otherwise.
    conn:
        Stream connection id.  For arrivals this is the id the sender
        wants the admitted connection filed under (``-1`` lets the
        driver allocate one); for the other kinds it names the
        connection the event belongs to.
    traffic:
        Traffic class name for arrivals (``voice``/``video``/...).
    admitted:
        The *recorded* decision, carried only by recorder output so a
        replay can be compared against it.  Never an input: the replay
        makes its own decision.
    """

    t: float | None
    kind: str
    cell: int = -1
    conn: int = -1
    traffic: str = "voice"
    admitted: bool | None = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown stream event kind {self.kind!r}")


def encode_event(event: StreamEvent) -> str:
    """Serialize one event as a compact JSON object."""
    payload: dict = {"t": event.t, "kind": event.kind}
    if event.kind in (ARRIVAL, HANDOFF):
        payload["cell"] = event.cell
    if event.conn >= 0:
        payload["conn"] = event.conn
    if event.kind == ARRIVAL:
        payload["traffic"] = event.traffic
    if event.admitted is not None:
        payload["admitted"] = event.admitted
    return json.dumps(payload, sort_keys=True)


def decode_event(text: str | dict) -> StreamEvent:
    """Parse one event from JSON text (or an already-parsed object)."""
    raw = json.loads(text) if isinstance(text, str) else text
    if not isinstance(raw, dict):
        raise ValueError(f"stream event must be a JSON object, got {raw!r}")
    try:
        kind = raw["kind"]
    except KeyError:
        raise ValueError(f"stream event without a kind: {raw!r}") from None
    return StreamEvent(
        t=raw.get("t"),
        kind=kind,
        cell=int(raw.get("cell", -1)),
        conn=int(raw.get("conn", -1)),
        traffic=raw.get("traffic", "voice"),
        admitted=raw.get("admitted"),
    )


def write_events(handle: TextIO, events) -> int:
    """Write events as JSON lines; returns the number written."""
    count = 0
    for event in events:
        handle.write(encode_event(event) + "\n")
        count += 1
    return count


def read_events(handle: TextIO) -> list[StreamEvent]:
    """Read a JSONL event stream (blank lines skipped)."""
    events = []
    for line in handle:
        line = line.strip()
        if line:
            events.append(decode_event(line))
    return events


class RunRecorder:
    """Captures a DES run's semantic event stream for later replay.

    Attach via ``simulator.recorder = RunRecorder()`` before calling
    :meth:`~repro.simulation.simulator.CellularSimulator.run`.  Pure
    observation: the simulator invokes the hooks *after* each decision
    or departure is fully applied, so recording can never perturb the
    run.
    """

    def __init__(self) -> None:
        self.events: list[StreamEvent] = []

    def on_arrival(
        self,
        t: float,
        cell: int,
        traffic: str,
        admitted: bool,
        conn: int | None,
    ) -> None:
        self.events.append(
            StreamEvent(
                t=t,
                kind=ARRIVAL,
                cell=cell,
                conn=-1 if conn is None else conn,
                traffic=traffic,
                admitted=admitted,
            )
        )

    def on_handoff(self, t: float, conn: int, cell: int, admitted: bool) -> None:
        self.events.append(
            StreamEvent(t=t, kind=HANDOFF, cell=cell, conn=conn, admitted=admitted)
        )

    def on_complete(self, t: float, conn: int) -> None:
        self.events.append(StreamEvent(t=t, kind=COMPLETE, conn=conn))

    def on_exit(self, t: float, conn: int) -> None:
        self.events.append(StreamEvent(t=t, kind=EXIT, conn=conn))


def record_run(config, **simulator_kwargs):
    """Run a DES simulation while recording its event stream.

    Returns ``(events, result)``: the replayable stream and the run's
    :class:`~repro.simulation.metrics.SimulationResult`.
    """
    from repro.simulation.simulator import CellularSimulator

    simulator = CellularSimulator(config, **simulator_kwargs)
    recorder = RunRecorder()
    simulator.recorder = recorder
    result = simulator.run()
    return recorder.events, result
