"""Live admission-control serving: the paper's loop as an online service.

The DES reproduction exercises the estimator/reservation/admission core
(Eq. 4/5/6, AC1–AC3) in virtual time.  This package runs the *same*
core — same :class:`~repro.cellular.network.CellularNetwork`, same
policies, same coalesced-tick flush path — against externally supplied
timestamped events:

* :mod:`repro.serve.clock` — the clock abstraction: virtual (heap
  driven, today's DES) vs wall (stream seconds mapped from
  ``perf_counter``).
* :mod:`repro.serve.events` — the replayable event-stream format plus
  the simulator-side recorder that captures one (parity proof).
* :mod:`repro.serve.driver` — :class:`StreamDriver`, the synchronous
  core: apply arrival/hand-off/departure events in timestamp order and
  get back the exact decisions the DES simulator would have made.
* :mod:`repro.serve.service` — :class:`AdmissionService`, the asyncio
  façade: queued queries, batched decisions under a latency budget,
  periodic checkpoints, telemetry.
* :mod:`repro.serve.ws` — a stdlib RFC 6455 WebSocket server/client
  streaming the same JSONL time-series rows ``repro dash`` tails.
* :mod:`repro.serve.loadgen` — scenario-driven load generator and the
  ``repro serve-bench`` measurement loop.
"""

from repro.serve.clock import StreamClock, VirtualClock, WallClock
from repro.serve.driver import (
    Decision,
    StreamDriver,
    comparable_counters,
    warm_start,
)
from repro.serve.events import (
    RunRecorder,
    StreamEvent,
    decode_event,
    encode_event,
    record_run,
)
from repro.serve.service import AdmissionService, BroadcastStream

__all__ = [
    "AdmissionService",
    "BroadcastStream",
    "Decision",
    "RunRecorder",
    "StreamClock",
    "StreamDriver",
    "StreamEvent",
    "VirtualClock",
    "WallClock",
    "comparable_counters",
    "decode_event",
    "encode_event",
    "record_run",
    "warm_start",
]
