"""A dependency-free RFC 6455 WebSocket endpoint for the service.

No framework: the handshake is ~20 lines of HTTP and the frame codec a
page of struct-free byte twiddling, which keeps the live service inside
the repo's no-new-dependencies rule.  The server speaks a small JSON
protocol:

* ``{"op": "admit", "cell": 3, "traffic": "voice"}`` →
  ``{"op": "decision", "admitted": true, "reserved": ..., ...}``
* ``{"op": "event", "kind": "handoff"|"complete"|"exit", ...}`` →
  a decision for hand-offs, ``{"op": "ok"}`` otherwise
* ``{"op": "subscribe"}`` → the sampler's JSONL rows stream as text
  frames (identical bytes to a ``--series-out`` file, so
  ``repro dash ws://host:port`` renders them unchanged)
* ``{"op": "stats"}`` → service counters (decisions/s, P50/P99, depth)

:class:`SyncWsClient` is the bundled blocking client — what
``repro dash`` and the smoke script use from outside the service
process; :class:`AsyncWsClient` is its asyncio twin for in-loop tests.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import os
import socket
from urllib.parse import urlsplit

from repro.serve.events import COMPLETE, EXIT, HANDOFF, StreamEvent

__all__ = [
    "AsyncWsClient",
    "SyncWsClient",
    "WebSocketGateway",
    "encode_frame",
    "handshake_accept",
]

_WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

OP_TEXT = 0x1
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA


def handshake_accept(key: str) -> str:
    """``Sec-WebSocket-Accept`` for a client's ``Sec-WebSocket-Key``."""
    digest = hashlib.sha1((key + _WS_GUID).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


def encode_frame(payload: bytes, opcode: int = OP_TEXT, mask: bool = False) -> bytes:
    """One final (unfragmented) frame.  Clients must mask, servers must
    not — RFC 6455 §5.3."""
    header = bytearray([0x80 | opcode])
    length = len(payload)
    mask_bit = 0x80 if mask else 0
    if length < 126:
        header.append(mask_bit | length)
    elif length < 1 << 16:
        header.append(mask_bit | 126)
        header += length.to_bytes(2, "big")
    else:
        header.append(mask_bit | 127)
        header += length.to_bytes(8, "big")
    if mask:
        key = os.urandom(4)
        header += key
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return bytes(header) + payload


def _unmask(payload: bytes, key: bytes) -> bytes:
    return bytes(b ^ key[i % 4] for i, b in enumerate(payload))


async def _read_frame(reader: asyncio.StreamReader) -> tuple[int, bytes]:
    head = await reader.readexactly(2)
    if not head[0] & 0x80:
        raise ConnectionError("fragmented frames are not supported")
    opcode = head[0] & 0x0F
    masked = bool(head[1] & 0x80)
    length = head[1] & 0x7F
    if length == 126:
        length = int.from_bytes(await reader.readexactly(2), "big")
    elif length == 127:
        length = int.from_bytes(await reader.readexactly(8), "big")
    key = await reader.readexactly(4) if masked else b""
    payload = await reader.readexactly(length) if length else b""
    if key:
        payload = _unmask(payload, key)
    return opcode, payload


class WebSocketGateway:
    """Serves the admission protocol + state stream over WebSocket."""

    def __init__(self, service, host: str = "127.0.0.1", port: int = 0) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._clients: set[asyncio.Task] = set()
        self.connections_served = 0

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._clients):
            task.cancel()
        if self._clients:
            await asyncio.gather(*self._clients, return_exceptions=True)
        self._clients.clear()

    @property
    def url(self) -> str:
        return f"ws://{self.host}:{self.port}/"

    # -- connection handling -------------------------------------------
    async def _handle(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._clients.add(task)
        try:
            if not await self._handshake(reader, writer):
                return
            self.connections_served += 1
            await self._session(reader, writer)
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            asyncio.CancelledError,
        ):
            pass
        finally:
            self._clients.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handshake(self, reader, writer) -> bool:
        request = await reader.readuntil(b"\r\n\r\n")
        lines = request.decode("latin-1").split("\r\n")
        headers = {}
        for line in lines[1:]:
            name, _, value = line.partition(":")
            if value:
                headers[name.strip().lower()] = value.strip()
        key = headers.get("sec-websocket-key")
        if (
            key is None
            or "websocket" not in headers.get("upgrade", "").lower()
        ):
            writer.write(
                b"HTTP/1.1 400 Bad Request\r\n"
                b"Content-Type: text/plain\r\n\r\n"
                b"this endpoint speaks WebSocket (RFC 6455) only\n"
            )
            await writer.drain()
            return False
        writer.write(
            (
                "HTTP/1.1 101 Switching Protocols\r\n"
                "Upgrade: websocket\r\n"
                "Connection: Upgrade\r\n"
                f"Sec-WebSocket-Accept: {handshake_accept(key)}\r\n\r\n"
            ).encode("ascii")
        )
        await writer.drain()
        return True

    async def _session(self, reader, writer) -> None:
        # All outbound frames (replies and broadcast rows) funnel
        # through one queue so concurrent tasks never interleave bytes
        # on the socket.
        outbound: asyncio.Queue = asyncio.Queue()
        broadcast = self.service.broadcast
        subscribed = False

        def on_row(line: str) -> None:
            outbound.put_nowait(line)

        async def sender() -> None:
            while True:
                item = await outbound.get()
                if item is None:
                    break
                writer.write(encode_frame(item.encode("utf-8")))
                await writer.drain()

        send_task = asyncio.create_task(sender())
        try:
            while True:
                opcode, payload = await _read_frame(reader)
                if opcode == OP_CLOSE:
                    writer.write(encode_frame(payload, opcode=OP_CLOSE))
                    await writer.drain()
                    break
                if opcode == OP_PING:
                    writer.write(encode_frame(payload, opcode=OP_PONG))
                    await writer.drain()
                    continue
                if opcode != OP_TEXT:
                    continue
                reply = await self._dispatch(payload, on_row)
                if reply is _SUBSCRIBED:
                    if not subscribed:
                        subscribed = True
                        for line in list(broadcast.backlog):
                            outbound.put_nowait(line)
                        broadcast.subscribe(on_row)
                elif reply is not None:
                    outbound.put_nowait(json.dumps(reply, sort_keys=True))
        finally:
            if subscribed:
                broadcast.unsubscribe(on_row)
            outbound.put_nowait(None)
            await send_task

    async def _dispatch(self, payload: bytes, on_row) -> dict | object | None:
        try:
            message = json.loads(payload.decode("utf-8"))
            if not isinstance(message, dict):
                raise ValueError("request must be a JSON object")
            op = message.get("op")
            if op == "admit":
                decision = await self.service.admit(
                    cell=int(message["cell"]),
                    traffic=message.get("traffic", "voice"),
                    t=message.get("t"),
                    conn=int(message.get("conn", -1)),
                )
                reply = {"op": "decision", **decision.to_json()}
            elif op == "event":
                kind = message.get("kind")
                if kind not in (HANDOFF, COMPLETE, EXIT):
                    raise ValueError(f"unknown event kind {kind!r}")
                decision = await self.service.submit(
                    StreamEvent(
                        t=message.get("t"),
                        kind=kind,
                        cell=int(message.get("cell", -1)),
                        conn=int(message.get("conn", -1)),
                    )
                )
                if decision is None:
                    reply = {"op": "ok"}
                else:
                    reply = {"op": "decision", **decision.to_json()}
            elif op == "subscribe":
                return _SUBSCRIBED
            elif op == "stats":
                reply = {"op": "stats", **self.service.stats()}
            else:
                raise ValueError(f"unknown op {op!r}")
        except (KeyError, TypeError, ValueError) as error:
            reply = {"op": "error", "error": str(error)}
        if "id" in (message if isinstance(message, dict) else {}):
            reply["id"] = message["id"]
        return reply


_SUBSCRIBED = object()  # sentinel: _dispatch asks the session to subscribe


# ----------------------------------------------------------------------
# clients
# ----------------------------------------------------------------------
def _client_handshake_bytes(host: str, port: int, path: str, key: str) -> bytes:
    return (
        f"GET {path or '/'} HTTP/1.1\r\n"
        f"Host: {host}:{port}\r\n"
        "Upgrade: websocket\r\n"
        "Connection: Upgrade\r\n"
        f"Sec-WebSocket-Key: {key}\r\n"
        "Sec-WebSocket-Version: 13\r\n\r\n"
    ).encode("ascii")


def _parse_ws_url(url: str) -> tuple[str, int, str]:
    parts = urlsplit(url)
    if parts.scheme not in ("ws", "http"):
        raise ValueError(f"expected a ws:// URL, got {url!r}")
    if parts.hostname is None:
        raise ValueError(f"URL {url!r} has no host")
    return parts.hostname, parts.port or 80, parts.path or "/"


class SyncWsClient:
    """Blocking WebSocket client (stdlib socket) — the bundled client.

    ``repro dash ws://host:port`` and ``scripts/serve_smoke.py`` run in
    a different process from the service, where blocking reads are the
    simplest correct thing.
    """

    def __init__(self, url: str, timeout: float | None = 10.0) -> None:
        host, port, path = _parse_ws_url(url)
        key = base64.b64encode(os.urandom(16)).decode("ascii")
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._buffer = b""
        self._sock.sendall(_client_handshake_bytes(host, port, path, key))
        response = self._read_until(b"\r\n\r\n")
        status = response.split(b"\r\n", 1)[0].decode("latin-1")
        if "101" not in status:
            raise ConnectionError(f"handshake refused: {status}")
        expected = handshake_accept(key).encode("ascii")
        if expected not in response:
            raise ConnectionError("bad Sec-WebSocket-Accept in handshake")

    def _read_until(self, marker: bytes) -> bytes:
        while marker not in self._buffer:
            chunk = self._sock.recv(4096)
            if not chunk:
                raise ConnectionError("connection closed during handshake")
            self._buffer += chunk
        index = self._buffer.index(marker) + len(marker)
        head, self._buffer = self._buffer[:index], self._buffer[index:]
        return head

    def _read_exactly(self, count: int) -> bytes:
        while len(self._buffer) < count:
            chunk = self._sock.recv(4096)
            if not chunk:
                raise ConnectionError("connection closed mid-frame")
            self._buffer += chunk
        data, self._buffer = self._buffer[:count], self._buffer[count:]
        return data

    def send_json(self, message: dict) -> None:
        payload = json.dumps(message, sort_keys=True).encode("utf-8")
        self._sock.sendall(encode_frame(payload, mask=True))

    def recv_text(self) -> str | None:
        """Next text frame; answers pings; ``None`` on close."""
        while True:
            head = self._read_exactly(2)
            opcode = head[0] & 0x0F
            length = head[1] & 0x7F
            if length == 126:
                length = int.from_bytes(self._read_exactly(2), "big")
            elif length == 127:
                length = int.from_bytes(self._read_exactly(8), "big")
            payload = self._read_exactly(length) if length else b""
            if opcode == OP_CLOSE:
                return None
            if opcode == OP_PING:
                self._sock.sendall(
                    encode_frame(payload, opcode=OP_PONG, mask=True)
                )
                continue
            if opcode == OP_TEXT:
                return payload.decode("utf-8")

    def recv_json(self) -> dict | None:
        text = self.recv_text()
        return None if text is None else json.loads(text)

    def request(self, message: dict) -> dict | None:
        self.send_json(message)
        return self.recv_json()

    def close(self) -> None:
        try:
            self._sock.sendall(encode_frame(b"", opcode=OP_CLOSE, mask=True))
        except OSError:
            pass
        self._sock.close()

    def __enter__(self) -> "SyncWsClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __iter__(self):
        while True:
            text = self.recv_text()
            if text is None:
                return
            yield text


class AsyncWsClient:
    """Asyncio WebSocket client — in-loop tests against the gateway."""

    def __init__(self, reader, writer) -> None:
        self._reader = reader
        self._writer = writer

    @classmethod
    async def connect(cls, url: str) -> "AsyncWsClient":
        host, port, path = _parse_ws_url(url)
        reader, writer = await asyncio.open_connection(host, port)
        key = base64.b64encode(os.urandom(16)).decode("ascii")
        writer.write(_client_handshake_bytes(host, port, path, key))
        await writer.drain()
        response = await reader.readuntil(b"\r\n\r\n")
        if b"101" not in response.split(b"\r\n", 1)[0]:
            raise ConnectionError("handshake refused")
        if handshake_accept(key).encode("ascii") not in response:
            raise ConnectionError("bad Sec-WebSocket-Accept in handshake")
        return cls(reader, writer)

    async def send_json(self, message: dict) -> None:
        payload = json.dumps(message, sort_keys=True).encode("utf-8")
        self._writer.write(encode_frame(payload, mask=True))
        await self._writer.drain()

    async def recv_text(self) -> str | None:
        while True:
            opcode, payload = await _read_frame(self._reader)
            if opcode == OP_CLOSE:
                return None
            if opcode == OP_PING:
                self._writer.write(
                    encode_frame(payload, opcode=OP_PONG, mask=True)
                )
                await self._writer.drain()
                continue
            if opcode == OP_TEXT:
                return payload.decode("utf-8")

    async def recv_json(self) -> dict | None:
        text = await self.recv_text()
        return None if text is None else json.loads(text)

    async def request(self, message: dict) -> dict | None:
        await self.send_json(message)
        return await self.recv_json()

    async def close(self) -> None:
        self._writer.write(encode_frame(b"", opcode=OP_CLOSE, mask=True))
        try:
            await self._writer.drain()
        except ConnectionError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass
