""":class:`AdmissionService` — the asyncio façade over the stream core.

Queries (``admit``) and notifications (hand-off / completion / exit)
land on one :class:`asyncio.Queue`.  A single worker coroutine drains
whatever has accumulated, injects the batch into the DES heap and
advances the engine once — so concurrent queries ride the same
coalesced reservation tick the simulator batches same-timestamp
admission tests through, and per-decision cost amortizes exactly like
the DES hot loop.  Every decision's wall latency feeds a telemetry
histogram (``serve.decision_latency_ms``) next to a queue-depth gauge,
so ``--prom-out`` and the JSON telemetry export work for the service
with no new plumbing.

State streaming reuses :class:`~repro.obs.timeseries.TimeSeriesSampler`
verbatim: the sampler's ``stream`` duck-type (anything with ``write``)
is satisfied by :class:`BroadcastStream`, which fans each JSONL row out
to subscribed WebSocket clients — the rows are byte-identical to what
``repro run --series-out`` writes, which is why ``repro dash`` works
against a live service unchanged.
"""

from __future__ import annotations

import asyncio
import shutil
from collections import deque
from pathlib import Path
from time import perf_counter

from repro.obs.timeseries import TimeSeriesSampler
from repro.serve.clock import WallClock
from repro.serve.driver import Decision, StreamDriver
from repro.serve.events import ARRIVAL, StreamEvent

__all__ = ["AdmissionService", "BroadcastStream"]

#: Decision-latency histogram edges in milliseconds.  Batched decisions
#: land well under a millisecond; the tail buckets catch checkpoint or
#: GC pauses.
LATENCY_BUCKETS_MS = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0
)


class BroadcastStream:
    """A write-only "file" that fans rows out to live subscribers.

    Passed as the sampler's ``stream``; each subscriber is a plain
    callable receiving the JSONL line (no trailing newline handling —
    lines arrive exactly as written).  Subscribers are called on the
    event loop thread; WebSocket clients enqueue and send from their
    own tasks.
    """

    def __init__(self, backlog: int = 64) -> None:
        self._subscribers: list = []
        #: Recent rows kept so a late subscriber can catch up.
        self.backlog: deque[str] = deque(maxlen=backlog)

    def write(self, text: str) -> int:
        line = text.rstrip("\n")
        if line:
            self.backlog.append(line)
            for subscriber in list(self._subscribers):
                subscriber(line)
        return len(text)

    def flush(self) -> None:  # sampler protocol
        pass

    def subscribe(self, callback) -> None:
        self._subscribers.append(callback)

    def unsubscribe(self, callback) -> None:
        try:
            self._subscribers.remove(callback)
        except ValueError:
            pass

    @property
    def subscribers(self) -> int:
        return len(self._subscribers)


class _Pending:
    """One queue entry: a group of events resolved by a single future.

    Interactive clients submit groups of one; pipelining clients
    (the load generator, batched WebSocket ops) submit many per group
    so the per-decision task wake-up amortizes away.
    """

    __slots__ = ("events", "future", "submitted")

    def __init__(self, events, future, submitted) -> None:
        self.events = events
        self.future = future
        self.submitted = submitted


class AdmissionService:
    """Live admission control over one :class:`StreamDriver`.

    Parameters
    ----------
    config:
        Scenario config (pass ``warm_state=repro.serve.warm_start(path)``
        to resume a checkpointed estimator history).
    clock:
        Stream time source; default :class:`WallClock` (real time).
    budget_ms:
        Per-decision wall-latency budget; decisions over it count into
        ``serve.budget_miss`` (the SLO is observable, not enforced —
        an admission answer is useful even when late).
    max_batch:
        Cap on queries drained per engine advance.
    checkpoint_every:
        Wall seconds between periodic checkpoints (0 disables).
    checkpoint_dir / checkpoint_keep:
        Where periodic checkpoints land and how many to retain.
    series_interval / series_wall_interval:
        Sampling cadences (stream seconds / wall seconds) of the
        broadcast time series.
    """

    def __init__(
        self,
        config,
        *,
        clock=None,
        budget_ms: float = 5.0,
        max_batch: int = 512,
        checkpoint_every: float = 0.0,
        checkpoint_dir: str | Path = "serve-state",
        checkpoint_keep: int = 2,
        series_interval: float = 0.0,
        series_wall_interval: float = 1.0,
    ) -> None:
        if budget_ms <= 0:
            raise ValueError(f"budget_ms must be positive, got {budget_ms}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.driver = StreamDriver(
            config, clock=clock if clock is not None else WallClock(),
            horizon=None,
        )
        self.config = config
        self.budget_ms = float(budget_ms)
        self.max_batch = int(max_batch)
        self.broadcast = BroadcastStream()
        self.sampler = None
        if series_interval > 0 or series_wall_interval > 0:
            self.sampler = TimeSeriesSampler(
                self.driver.engine,
                metrics=self.driver.metrics,
                stations=self.driver.network.stations,
                capacity=config.capacity,
                interval=series_interval,
                wall_interval=series_wall_interval,
                stream=self.broadcast,
                run_id=self.driver.sim.run_id,
                label=config.label or f"serve:{config.scheme}",
                telemetry=self.driver.sim.telemetry,
            )
        self.checkpoint_every = float(checkpoint_every)
        self.checkpoint_dir = Path(checkpoint_dir)
        self.checkpoint_keep = max(1, int(checkpoint_keep))
        self.checkpoints_written = 0
        self._last_checkpoint = perf_counter()
        telemetry = self.driver.sim.telemetry
        self._hist = telemetry.histogram(
            "serve.decision_latency_ms", buckets=LATENCY_BUCKETS_MS
        )
        self._depth = telemetry.gauge("serve.queue_depth")
        self._budget_misses = telemetry.counter("serve.budget_miss")
        self._decision_counter = telemetry.counter
        self._queue: asyncio.Queue = asyncio.Queue()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._task: asyncio.Task | None = None
        self._running = False
        self._started = perf_counter()
        self.decisions = 0
        #: Exact recent latencies (ms) for the stats percentiles; the
        #: histogram keeps the full-run distribution.
        self._latencies: deque[float] = deque(maxlen=65536)

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        if self._running:
            raise RuntimeError("service already started")
        self._running = True
        self._started = perf_counter()
        self._last_checkpoint = self._started
        self._task = asyncio.create_task(self._worker(), name="serve-worker")

    async def stop(self) -> None:
        if not self._running:
            return
        self._running = False
        await self._queue.put(None)
        if self._task is not None:
            await self._task
            self._task = None
        if self.sampler is not None:
            self.sampler.sample(final=True)

    # -- client API ----------------------------------------------------
    async def submit(self, event: StreamEvent) -> Decision | None:
        """Queue one stream event; resolves with its decision (``None``
        for notifications that carry no decision)."""
        results = await self.submit_many((event,))
        result = results[0]
        if isinstance(result, Exception):
            raise result
        return result

    async def submit_many(self, events) -> list[Decision | None]:
        """Pipelined ingestion: queue a group of events, resolve once.

        The whole group rides one engine advance and one task wake-up,
        so a client pipelining K events pays 1/K of the per-decision
        asyncio overhead.  Results align with ``events``: a
        :class:`~repro.serve.driver.Decision` per query, ``None`` for
        notifications, and the :class:`ValueError` *instance* for a
        malformed event (the valid rest of the group is still applied).
        """
        if not self._running:
            raise RuntimeError("service is not running")
        if self._loop is None:
            self._loop = asyncio.get_running_loop()
        future = self._loop.create_future()
        self._queue.put_nowait(_Pending(tuple(events), future, perf_counter()))
        return await future

    async def admit(
        self,
        cell: int,
        traffic: str = "voice",
        t: float | None = None,
        conn: int = -1,
    ) -> Decision:
        """Admission query: may connection ``traffic`` enter ``cell``?"""
        decision = await self.submit(
            StreamEvent(t=t, kind=ARRIVAL, cell=cell, conn=conn, traffic=traffic)
        )
        assert decision is not None  # arrivals always decide
        return decision

    def stats(self) -> dict:
        """Service-side counters: decisions/s and latency percentiles."""
        elapsed = perf_counter() - self._started
        latencies = sorted(self._latencies)

        def pct(fraction: float) -> float:
            if not latencies:
                return 0.0
            index = min(
                len(latencies) - 1, int(fraction * (len(latencies) - 1))
            )
            return latencies[index]

        return {
            "decisions": self.decisions,
            "decisions_per_s": self.decisions / elapsed if elapsed > 0 else 0.0,
            "p50_ms": round(pct(0.50), 4),
            "p99_ms": round(pct(0.99), 4),
            "queue_depth": self._queue.qsize(),
            "active_connections": self.driver.active_connections,
            "ignored_events": self.driver.ignored,
            "stream_t": round(self.driver.engine.now, 6),
            "checkpoints": self.checkpoints_written,
        }

    # -- worker --------------------------------------------------------
    async def _worker(self) -> None:
        queue = self._queue
        driver = self.driver
        while True:
            item = await queue.get()
            if item is None:
                break
            batch = [item]
            while len(batch) < self.max_batch:
                try:
                    extra = queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if extra is None:
                    queue.put_nowait(None)  # re-deliver the stop signal
                    break
                batch.append(extra)
            self._depth.set(queue.qsize())
            groups = []
            for pending in batch:
                slots = []
                for event in pending.events:
                    try:
                        slots.append(driver.submit(event))
                    except ValueError as error:
                        slots.append(error)
                groups.append((pending, slots))
            driver.flush()
            done = perf_counter()
            for pending, slots in groups:
                latency_ms = (done - pending.submitted) * 1000.0
                results = []
                for slot in slots:
                    if isinstance(slot, Exception):
                        results.append(slot)
                        continue
                    decision = slot.decision
                    results.append(decision)
                    if decision is None:
                        continue
                    self.decisions += 1
                    self._latencies.append(latency_ms)
                    self._hist.observe(latency_ms)
                    if latency_ms > self.budget_ms:
                        self._budget_misses.inc()
                    self._decision_counter(
                        "serve.decisions",
                        kind=decision.kind,
                        outcome="accepted" if decision.admitted else "rejected",
                    ).inc()
                if not pending.future.done():
                    pending.future.set_result(results)
            sampler = self.sampler
            if sampler is not None and sampler.due():
                sampler.sample(
                    queue_depth=queue.qsize(), decisions=self.decisions
                )
            if self.checkpoint_every > 0 and (
                done - self._last_checkpoint >= self.checkpoint_every
            ):
                self._checkpoint()
                self._last_checkpoint = perf_counter()
            # One scheduling point per batch: lets producers refill the
            # queue (and WebSocket tasks send replies) between engine
            # advances without a per-decision context switch.
            await asyncio.sleep(0)

    def _checkpoint(self) -> None:
        index = self.checkpoints_written
        path = self.checkpoint_dir / f"serve_{index:06d}"
        self.driver.save_state(path)
        self.checkpoints_written = index + 1
        stale = sorted(self.checkpoint_dir.glob("serve_*"))
        for old in stale[: -self.checkpoint_keep]:
            shutil.rmtree(old, ignore_errors=True)
