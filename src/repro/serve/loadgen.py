"""Closed-loop load generator for the live admission service.

A pool of asyncio workers keeps a configurable number of requests in
flight against one :class:`~repro.serve.service.AdmissionService`.
Each worker plays a caller population: it admits new connections,
hands live ones off to random cells, and completes them, with the mix
controlled by weights — so the service sees the same event shapes a
real client would send (including racing hand-offs against completes,
which the driver absorbs as ignored events).

This is a *benchmark* workload: throughput-shaped, not paper-shaped.
The scenario's offered load and mobility live in the DES; here the
only goal is to saturate the decision path and measure it
(``repro serve-bench``, the ``serve_latency`` repro-bench section, and
``scripts/serve_smoke.py`` all drive through :func:`run_load`).
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from time import perf_counter

from repro.serve.events import ARRIVAL, COMPLETE, HANDOFF, StreamEvent

__all__ = ["LoadReport", "run_load"]


@dataclass(frozen=True, slots=True)
class LoadReport:
    """What the generator observed across one run."""

    decisions: int
    elapsed_s: float
    decisions_per_s: float
    admitted: int
    rejected: int
    handoffs: int
    completes: int
    ignored: int
    p50_ms: float
    p99_ms: float

    @property
    def admitted_fraction(self) -> float:
        queries = self.admitted + self.rejected
        return self.admitted / queries if queries else 0.0

    def to_json(self) -> dict:
        return {
            "decisions": self.decisions,
            "elapsed_s": round(self.elapsed_s, 4),
            "decisions_per_s": round(self.decisions_per_s, 1),
            "admitted": self.admitted,
            "rejected": self.rejected,
            "admitted_fraction": round(self.admitted_fraction, 4),
            "handoffs": self.handoffs,
            "completes": self.completes,
            "ignored": self.ignored,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
        }


async def run_load(
    service,
    *,
    decisions: int = 10_000,
    concurrency: int = 64,
    pipeline: int = 32,
    seed: int = 7,
    handoff_weight: float = 0.3,
    complete_weight: float = 0.3,
    video_fraction: float = 0.2,
) -> LoadReport:
    """Drive ``decisions`` admission decisions through ``service``.

    ``concurrency`` workers each keep ``pipeline`` events in flight
    through :meth:`~repro.serve.service.AdmissionService.submit_many`,
    so per-decision asyncio overhead amortizes across the pipeline
    (set ``pipeline=1`` for a strict request/response workload).
    ``handoff_weight``/``complete_weight`` set the probability that a
    worker's next move touches one of its live connections instead of
    admitting a new one (hand-offs count as decisions; completes do
    not — they are notifications).  Returns a :class:`LoadReport`;
    latency percentiles come from the service's own measurement.
    """
    if decisions < 1:
        raise ValueError(f"decisions must be >= 1, got {decisions}")
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    if pipeline < 1:
        raise ValueError(f"pipeline must be >= 1, got {pipeline}")
    num_cells = service.driver.network.topology.num_cells
    traffic = service.driver.traffic_classes
    video = [name for name in traffic if name != "voice"]
    counters = {
        "decided": 0,
        "admitted": 0,
        "rejected": 0,
        "handoffs": 0,
        "completes": 0,
        "ignored": 0,
    }

    async def worker(worker_id: int) -> None:
        rng = random.Random((seed << 8) ^ worker_id)
        # Worker-local population: each worker only hands off /
        # completes connections it admitted, so the workload stays
        # race-free without cross-task locking (swap-pop keeps the
        # random removals O(1)).
        live: list[int] = []
        while counters["decided"] < decisions:
            batch = []
            pending_handoffs = {}
            for slot in range(pipeline):
                roll = rng.random()
                if live and roll < handoff_weight:
                    conn = live[rng.randrange(len(live))]
                    pending_handoffs[len(batch)] = conn
                    batch.append(
                        StreamEvent(
                            t=None,
                            kind=HANDOFF,
                            cell=rng.randrange(num_cells),
                            conn=conn,
                        )
                    )
                elif live and roll < handoff_weight + complete_weight:
                    index = rng.randrange(len(live))
                    conn = live[index]
                    live[index] = live[-1]
                    live.pop()
                    batch.append(StreamEvent(t=None, kind=COMPLETE, conn=conn))
                else:
                    name = (
                        rng.choice(video)
                        if video and rng.random() < video_fraction
                        else "voice"
                    )
                    batch.append(
                        StreamEvent(
                            t=None,
                            kind=ARRIVAL,
                            cell=rng.randrange(num_cells),
                            traffic=name,
                        )
                    )
            results = await service.submit_many(batch)
            dead = set()
            for position, (event, decision) in enumerate(zip(batch, results)):
                if event.kind == ARRIVAL:
                    counters["decided"] += 1
                    if decision.admitted:
                        counters["admitted"] += 1
                        live.append(decision.conn)
                    else:
                        counters["rejected"] += 1
                elif event.kind == HANDOFF:
                    if decision is None:
                        counters["ignored"] += 1
                        dead.add(pending_handoffs[position])
                    else:
                        counters["decided"] += 1
                        counters["handoffs"] += 1
                        if not decision.admitted:
                            dead.add(pending_handoffs[position])
                else:
                    counters["completes"] += 1
            if dead:  # connections dropped at hand-off this batch
                live[:] = [conn for conn in live if conn not in dead]

    started = perf_counter()
    await asyncio.gather(
        *(worker(index) for index in range(concurrency))
    )
    elapsed = perf_counter() - started
    stats = service.stats()
    total = counters["decided"]
    return LoadReport(
        decisions=total,
        elapsed_s=elapsed,
        decisions_per_s=total / elapsed if elapsed > 0 else 0.0,
        admitted=counters["admitted"],
        rejected=counters["rejected"],
        handoffs=counters["handoffs"],
        completes=counters["completes"],
        ignored=counters["ignored"],
        p50_ms=stats["p50_ms"],
        p99_ms=stats["p99_ms"],
    )
