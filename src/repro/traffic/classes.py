"""Traffic classes and the voice/video bandwidth mix (paper A3).

The paper's unit of bandwidth is the **BU** — the bandwidth of one
voice connection.  Connections are voice (1 BU) with probability
``R_vo`` and video (4 BUs) otherwise.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

#: Bandwidth of a voice connection — the definition of one BU.
VOICE_BU = 1.0
#: Bandwidth of a video connection (paper A3).
VIDEO_BU = 4.0


@dataclass(frozen=True, slots=True)
class TrafficClass:
    """A connection type with a fixed bandwidth requirement."""

    name: str
    bandwidth: float

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth}")


VOICE = TrafficClass("voice", VOICE_BU)
VIDEO = TrafficClass("video", VIDEO_BU)


@dataclass(frozen=True, slots=True)
class AdaptiveTrafficClass(TrafficClass):
    """A connection type whose QoS can degrade down to a minimum.

    The paper (§1) notes the reservation scheme composes with adaptive
    QoS: hand-offs may be accepted at a degraded rate instead of being
    dropped, and *bandwidth reservation is made on the basis of the
    minimum QoS of each connection*.

    ``bandwidth`` is the full (preferred) rate; ``min_bandwidth`` is the
    floor below which the connection would rather drop.
    """

    min_bandwidth: float = 0.0

    def __post_init__(self) -> None:
        # Explicit parent call: slots=True dataclasses replace the class
        # object, which breaks zero-argument super().
        TrafficClass.__post_init__(self)
        if not 0 < self.min_bandwidth <= self.bandwidth:
            raise ValueError(
                f"min bandwidth must be in (0, {self.bandwidth}],"
                f" got {self.min_bandwidth}"
            )


#: Layered video: 4 BUs preferred, degradable down to 1 BU (base layer).
ADAPTIVE_VIDEO = AdaptiveTrafficClass(
    "adaptive-video", VIDEO_BU, min_bandwidth=VOICE_BU
)


class TrafficMix:
    """Samples traffic classes: voice w.p. ``R_vo``, video otherwise.

    Parameters
    ----------
    voice_ratio:
        ``R_vo`` in [0, 1].  The paper sweeps 1.0, 0.8 and 0.5.
    video_class:
        The non-voice class; swap in :data:`ADAPTIVE_VIDEO` to model
        QoS-degradable video (paper §1 integration).
    """

    def __init__(
        self,
        voice_ratio: float = 1.0,
        video_class: TrafficClass = VIDEO,
    ) -> None:
        if not 0.0 <= voice_ratio <= 1.0:
            raise ValueError(f"voice ratio must be in [0, 1], got {voice_ratio}")
        self.voice_ratio = float(voice_ratio)
        self.video_class = video_class

    def sample(self, rng: random.Random) -> TrafficClass:
        """Draw one connection's traffic class."""
        if rng.random() < self.voice_ratio:
            return VOICE
        return self.video_class

    @property
    def mean_bandwidth(self) -> float:
        """``E[b]`` — average BUs per connection (at full rate)."""
        return (
            self.voice_ratio * VOICE.bandwidth
            + (1.0 - self.voice_ratio) * self.video_class.bandwidth
        )

    def arrival_rate_for_load(
        self, offered_load: float, mean_lifetime: float = 120.0
    ) -> float:
        """Invert Eq. 7: per-cell Poisson rate for an offered load ``L``.

        ``L = lambda * E[b] * mean_lifetime`` (BUs), so
        ``lambda = L / (E[b] * mean_lifetime)`` in connections/second/cell.
        """
        if offered_load < 0:
            raise ValueError("offered load cannot be negative")
        if mean_lifetime <= 0:
            raise ValueError("mean lifetime must be positive")
        return offered_load / (self.mean_bandwidth * mean_lifetime)

    def offered_load(
        self, arrival_rate: float, mean_lifetime: float = 120.0
    ) -> float:
        """Eq. 7: ``L = lambda * E[b] * mean_lifetime``."""
        return arrival_rate * self.mean_bandwidth * mean_lifetime
