"""Connection state: one mobile's communication session.

The paper assumes one connection per active mobile (§2), so the
connection record doubles as the mobile's session state: which cell it
is in, which cell it came from (``prev``), and when it entered — the
inputs of the Bayes estimator (Eq. 4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.traffic.classes import TrafficClass

if TYPE_CHECKING:  # pragma: no cover
    from repro.mobility.mobile import Mobile


class ConnectionState(enum.Enum):
    """Lifecycle of a connection."""

    ACTIVE = "active"
    COMPLETED = "completed"  # lifetime expired normally
    DROPPED = "dropped"      # hand-off failed for lack of bandwidth
    EXITED = "exited"        # mobile drove off an open road's end


class _IdCounter:
    """``itertools.count`` with a readable/settable position.

    The checkpoint store (``repro.state``) must capture the next id to
    be issued without consuming it, and restore it in a fresh process so
    resumed runs keep allocating non-colliding, bit-identical ids.
    """

    __slots__ = ("value",)

    def __init__(self, start: int = 0) -> None:
        self.value = start

    def __next__(self) -> int:
        value = self.value
        self.value = value + 1
        return value


_connection_ids = _IdCounter()


def reset_connection_ids(start: int = 0) -> None:
    """Restart the global id sequence (test isolation / state restore)."""
    _connection_ids.value = start


def peek_connection_ids() -> int:
    """Next connection id to be issued, without consuming it."""
    return _connection_ids.value


@dataclass(slots=True)
class Connection:
    """One admitted connection and its per-cell session state.

    Slotted: a loaded run carries thousands of live connections and the
    Eq. 5 kernels read their fields in tight loops.

    Attributes
    ----------
    traffic_class:
        Voice or video (fixed bandwidth).
    start_time:
        Admission time of the connection.
    cell_id:
        Cell currently carrying the connection.
    prev_cell:
        Cell the mobile resided in before the current one; ``None``
        while the connection is still in its birth cell (the paper's
        ``prev = 0``).
    cell_entry_time:
        When the mobile entered the current cell — start time for the
        birth cell, last hand-off time afterwards.
    mobile:
        The moving terminal (``None`` for strictly stationary users).
    """

    traffic_class: TrafficClass
    start_time: float
    cell_id: int
    mobile: "Mobile | None" = None
    prev_cell: int | None = None
    cell_entry_time: float = 0.0
    connection_id: int = field(default_factory=lambda: next(_connection_ids))
    state: ConnectionState = ConnectionState.ACTIVE
    end_time: float | None = None
    handoff_count: int = 0
    #: Currently allocated bandwidth; ``None`` means the class's full
    #: rate.  Only adaptive classes ever deviate (QoS degradation).
    allocated_bandwidth: float | None = None

    @property
    def bandwidth(self) -> float:
        """Bandwidth currently allocated to the connection, in BUs."""
        if self.allocated_bandwidth is not None:
            return self.allocated_bandwidth
        return self.traffic_class.bandwidth

    @property
    def full_bandwidth(self) -> float:
        """The class's preferred (undegraded) rate."""
        return self.traffic_class.bandwidth

    @property
    def min_bandwidth(self) -> float:
        """Degradation floor (equals the full rate for rigid classes)."""
        return getattr(
            self.traffic_class, "min_bandwidth", self.traffic_class.bandwidth
        )

    @property
    def reservation_basis(self) -> float:
        """Bandwidth Eq. 5 should reserve for this connection's hand-off.

        Paper §1: with adaptive QoS, reservation is made on the basis of
        the *minimum* QoS; rigid connections reserve their full rate.
        """
        return self.min_bandwidth

    @property
    def is_degraded(self) -> bool:
        return self.bandwidth < self.full_bandwidth

    @property
    def is_active(self) -> bool:
        return self.state is ConnectionState.ACTIVE

    def extant_sojourn(self, now: float) -> float:
        """``T_ext-soj`` — seconds spent in the current cell so far."""
        return now - self.cell_entry_time

    def move_to(self, new_cell: int, now: float) -> None:
        """Update session state after a successful hand-off."""
        self.prev_cell = self.cell_id
        self.cell_id = new_cell
        self.cell_entry_time = now
        self.handoff_count += 1

    def finish(self, state: ConnectionState, now: float) -> None:
        """Terminate the connection (idempotence is an error)."""
        if not self.is_active:
            raise RuntimeError(
                f"connection {self.connection_id} already {self.state.value}"
            )
        self.state = state
        self.end_time = now
