"""Time-of-day profiles for load and speed (paper §5.3, Figure 14a).

A :class:`DayProfile` is a piecewise-linear, 24-hour-cyclic function of
time.  The paper drives the two-day time-varying experiment with an
offered-load profile that peaks during rush hours (around 9 am, 1 pm
and 5–6 pm) while the average speed simultaneously dips — cars crawl in
rush-hour traffic.  :func:`paper_load_profile` and
:func:`paper_speed_profile` encode those shapes (values read off
Figure 14a; exact magnitudes are not published, shapes are).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Sequence

HOUR_SECONDS = 3600.0
DAY_HOURS = 24.0


class DayProfile:
    """A piecewise-linear daily cycle.

    Parameters
    ----------
    breakpoints:
        ``(hour, value)`` pairs with hours in [0, 24); linear
        interpolation in between, wrapping midnight.
    day_seconds:
        Wall length of one profile cycle.  86 400 by default; smaller
        values *time-compress* the scenario (a whole "day" plays out in
        fewer simulated seconds) while keeping the same shape.
    """

    def __init__(
        self,
        breakpoints: Sequence[tuple[float, float]],
        day_seconds: float = 24 * HOUR_SECONDS,
    ) -> None:
        if day_seconds <= 0:
            raise ValueError("day_seconds must be positive")
        self.day_seconds = float(day_seconds)
        if not breakpoints:
            raise ValueError("a profile needs at least one breakpoint")
        ordered = sorted(breakpoints)
        hours = [hour for hour, _value in ordered]
        if any(not 0 <= hour < DAY_HOURS for hour in hours):
            raise ValueError("breakpoint hours must lie in [0, 24)")
        if len(set(hours)) != len(hours):
            raise ValueError("duplicate breakpoint hours")
        self._hours = hours
        self._values = [value for _hour, value in ordered]

    def value_at_hour(self, hour: float) -> float:
        """Profile value at ``hour`` (any float; wraps modulo 24)."""
        hour %= DAY_HOURS
        if len(self._hours) == 1:
            return self._values[0]
        index = bisect_right(self._hours, hour) - 1
        if index < 0:
            # Before the first breakpoint: interpolate across midnight.
            left_hour = self._hours[-1] - DAY_HOURS
            left_value = self._values[-1]
            right_hour, right_value = self._hours[0], self._values[0]
        else:
            left_hour, left_value = self._hours[index], self._values[index]
            if index + 1 < len(self._hours):
                right_hour = self._hours[index + 1]
                right_value = self._values[index + 1]
            else:
                right_hour = self._hours[0] + DAY_HOURS
                right_value = self._values[0]
        if right_hour == left_hour:
            return left_value
        fraction = (hour - left_hour) / (right_hour - left_hour)
        return left_value + fraction * (right_value - left_value)

    def value_at(self, time_seconds: float) -> float:
        """Profile value at an absolute virtual time in seconds."""
        return self.value_at_hour(time_seconds / (self.day_seconds / DAY_HOURS))

    def maximum(self, samples: int = 480) -> float:
        """Upper bound of the profile (sampled; used for thinning)."""
        return max(
            self.value_at_hour(index * DAY_HOURS / samples)
            for index in range(samples)
        )


def constant_profile(value: float) -> DayProfile:
    """A degenerate profile that always returns ``value``."""
    return DayProfile([(0.0, value)])


def paper_load_profile(
    peak: float = 180.0,
    base: float = 20.0,
    day_seconds: float = 24 * HOUR_SECONDS,
) -> DayProfile:
    """Original offered load ``L_o`` vs time-of-day, Figure 14(a) shape.

    Quiet at night, rush-hour peaks around 9 am and 5–6 pm with a lunch
    bump around 1 pm.
    """
    mid = base + 0.67 * (peak - base)
    return DayProfile(
        day_seconds=day_seconds,
        breakpoints=[
            (0.0, base),
            (6.0, base),
            (8.0, 0.8 * peak),
            (9.0, peak),
            (10.5, mid * 0.55),
            (12.0, mid * 0.7),
            (13.0, mid),
            (14.5, mid * 0.55),
            (16.0, 0.8 * peak),
            (17.0, peak),
            (18.0, peak),
            (19.5, mid * 0.5),
            (21.0, base * 1.5),
            (23.0, base),
        ]
    )


def paper_speed_profile(
    fast: float = 100.0,
    slow: float = 40.0,
    day_seconds: float = 24 * HOUR_SECONDS,
) -> DayProfile:
    """Average mobile speed ``S`` vs time-of-day, Figure 14(a) shape.

    Mirrors the load profile: free-flow speed off-peak, congestion
    speeds during the rush hours.  The instantaneous speed range used
    by the mobility model is ``[S - 20, S + 20]`` km/h (paper §5.3).
    """
    mid = slow + 0.4 * (fast - slow)
    return DayProfile(
        day_seconds=day_seconds,
        breakpoints=[
            (0.0, fast),
            (6.0, fast),
            (8.0, mid),
            (9.0, slow),
            (10.5, fast * 0.85),
            (12.0, mid * 1.2),
            (13.0, mid),
            (14.5, fast * 0.85),
            (16.0, mid),
            (17.0, slow),
            (18.0, slow),
            (19.5, fast * 0.85),
            (21.0, fast),
        ]
    )
