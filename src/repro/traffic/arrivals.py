"""Connection arrival processes and the retry model.

New connection requests are Poisson per cell (paper A2), either
homogeneous (stationary runs) or modulated by a
:class:`~repro.traffic.profiles.DayProfile` (the two-day experiment of
§5.3).  The non-homogeneous process is sampled exactly by thinning.

The retry model follows §5.3: a blocked request is re-issued after 5
seconds with probability ``1 - 0.1 * N_ret`` where ``N_ret`` counts the
attempts made so far — this is the *positive feedback* that amplifies
the actual offered load ``L_a`` above the original ``L_o`` when
blocking is high.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.traffic.profiles import DayProfile


class PoissonArrivals:
    """Homogeneous Poisson arrivals with a fixed per-cell rate.

    Parameters
    ----------
    rate:
        Connections per second (per cell).  A zero rate yields no
        arrivals (``next_arrival`` returns ``None``).
    """

    def __init__(self, rate: float) -> None:
        if rate < 0:
            raise ValueError(f"rate cannot be negative, got {rate}")
        self.rate = float(rate)

    def next_arrival(self, now: float, rng: random.Random) -> float | None:
        """Time of the next arrival after ``now``."""
        if self.rate == 0.0:
            return None
        return now + rng.expovariate(self.rate)


class ModulatedPoissonArrivals:
    """Non-homogeneous Poisson arrivals driven by a load profile.

    The profile gives the *offered load* over time; it is converted to
    an instantaneous rate via ``rate = load / (E[b] * mean lifetime)``
    (Eq. 7 inverted) and sampled exactly with Lewis–Shedler thinning.

    Parameters
    ----------
    load_profile:
        Offered load ``L_o(t)`` in BUs.
    mean_bandwidth:
        ``E[b]`` of the traffic mix.
    mean_lifetime:
        Average connection lifetime in seconds (A5: 120).
    weight:
        Per-cell load multiplier (hot-spot scenarios): the profile is
        network-shaped, the weight scales this cell's share of it.  A
        zero weight yields no arrivals.
    """

    def __init__(
        self,
        load_profile: DayProfile,
        mean_bandwidth: float,
        mean_lifetime: float = 120.0,
        weight: float = 1.0,
    ) -> None:
        if mean_bandwidth <= 0 or mean_lifetime <= 0:
            raise ValueError("mean bandwidth and lifetime must be positive")
        if weight < 0:
            raise ValueError(f"weight cannot be negative, got {weight}")
        self.load_profile = load_profile
        self.scale = weight / (mean_bandwidth * mean_lifetime)
        self.max_rate = load_profile.maximum() * self.scale
        if self.max_rate <= 0 and weight > 0:
            raise ValueError("profile must have positive load somewhere")

    def rate_at(self, time_seconds: float) -> float:
        """Instantaneous arrival rate at ``time_seconds``."""
        return max(self.load_profile.value_at(time_seconds), 0.0) * self.scale

    def next_arrival(self, now: float, rng: random.Random) -> float | None:
        """Exact next-arrival sampling via thinning."""
        if self.max_rate <= 0:
            return None
        time = now
        while True:
            time += rng.expovariate(self.max_rate)
            if rng.random() * self.max_rate <= self.rate_at(time):
                return time


@dataclass
class RetryPolicy:
    """Blocked-request retry behaviour (paper §5.3).

    Attributes
    ----------
    delay:
        Seconds a blocked user waits before retrying (paper: 5 s).
    giveup_step:
        The retry probability after the ``N``-th failed attempt is
        ``1 - giveup_step * N`` (paper: 0.1 — nobody retries past 10
        attempts).
    enabled:
        Stationary runs disable retries entirely.
    """

    delay: float = 5.0
    giveup_step: float = 0.1
    enabled: bool = True

    def should_retry(self, attempts: int, rng: random.Random) -> bool:
        """Whether a user blocked on their ``attempts``-th try re-requests."""
        if not self.enabled:
            return False
        if attempts < 1:
            raise ValueError("attempts must count the failed tries (>= 1)")
        probability = 1.0 - self.giveup_step * attempts
        if probability <= 0.0:
            return False
        return rng.random() < probability


#: Retry behaviour for stationary experiments: blocked means gone.
NO_RETRY = RetryPolicy(enabled=False)
