"""Traffic substrate (S4): classes, connections, arrivals, profiles."""

from repro.traffic.arrivals import (
    NO_RETRY,
    ModulatedPoissonArrivals,
    PoissonArrivals,
    RetryPolicy,
)
from repro.traffic.classes import (
    ADAPTIVE_VIDEO,
    VIDEO,
    VIDEO_BU,
    VOICE,
    VOICE_BU,
    AdaptiveTrafficClass,
    TrafficClass,
    TrafficMix,
)
from repro.traffic.connection import (
    Connection,
    ConnectionState,
    reset_connection_ids,
)
from repro.traffic.profiles import (
    DayProfile,
    constant_profile,
    paper_load_profile,
    paper_speed_profile,
)

__all__ = [
    "ADAPTIVE_VIDEO",
    "AdaptiveTrafficClass",
    "NO_RETRY",
    "VIDEO",
    "VIDEO_BU",
    "VOICE",
    "VOICE_BU",
    "Connection",
    "ConnectionState",
    "DayProfile",
    "ModulatedPoissonArrivals",
    "PoissonArrivals",
    "RetryPolicy",
    "TrafficClass",
    "TrafficMix",
    "constant_profile",
    "paper_load_profile",
    "paper_speed_profile",
    "reset_connection_ids",
]
