"""Generator-based processes on top of the event engine.

This provides a small simpy-flavoured coroutine layer: a process is a
generator that yields :class:`Timeout` or :class:`Waitable` instances.
The cellular simulator itself uses raw event scheduling for speed, but
processes are convenient for writing workloads and examples.

Example
-------
>>> from repro.des import Engine
>>> from repro.des.process import ProcessRunner, Timeout
>>> eng = Engine()
>>> runner = ProcessRunner(eng)
>>> log = []
>>> def worker():
...     yield Timeout(2.0)
...     log.append(eng.now)
...     yield Timeout(3.0)
...     log.append(eng.now)
>>> _ = runner.start(worker())
>>> eng.run()
>>> log
[2.0, 5.0]
"""

from __future__ import annotations

from typing import Any, Generator, Iterable

from repro.des.engine import Engine
from repro.des.events import EventPriority


class Timeout:
    """Suspend the yielding process for ``delay`` virtual seconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout {delay}")
        self.delay = float(delay)


class Waitable:
    """A one-shot condition processes can wait on and code can trigger."""

    __slots__ = ("_engine", "_waiters", "triggered", "value")

    def __init__(self, engine: Engine) -> None:
        self._engine = engine
        self._waiters: list[Process] = []
        self.triggered = False
        self.value: Any = None

    def succeed(self, value: Any = None) -> None:
        """Trigger the condition, resuming all waiting processes."""
        if self.triggered:
            raise RuntimeError("Waitable already triggered")
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            self._engine.call_in(
                0.0, process._resume, value, priority=EventPriority.CONTROL
            )

    def _add_waiter(self, process: "Process") -> None:
        self._waiters.append(process)


class Process:
    """A running generator, advanced by the engine."""

    def __init__(self, engine: Engine, generator: Generator[Any, Any, Any]):
        self._engine = engine
        self._generator = generator
        self.alive = True
        self.done = Waitable(engine)

    def _resume(self, sent_value: Any = None) -> None:
        if not self.alive:
            return
        try:
            yielded = self._generator.send(sent_value)
        except StopIteration as stop:
            self.alive = False
            self.done.succeed(stop.value)
            return
        if isinstance(yielded, Timeout):
            self._engine.call_in(
                yielded.delay, self._resume, None, priority=EventPriority.CONTROL
            )
        elif isinstance(yielded, Waitable):
            if yielded.triggered:
                self._engine.call_in(
                    0.0, self._resume, yielded.value,
                    priority=EventPriority.CONTROL,
                )
            else:
                yielded._add_waiter(self)
        elif isinstance(yielded, Process):
            if yielded.done.triggered:
                self._engine.call_in(
                    0.0, self._resume, yielded.done.value,
                    priority=EventPriority.CONTROL,
                )
            else:
                yielded.done._add_waiter(self)
        else:
            self.alive = False
            raise TypeError(f"process yielded unsupported value {yielded!r}")

    def interrupt(self) -> None:
        """Kill the process; it will never be resumed again."""
        self.alive = False
        self._generator.close()


class ProcessRunner:
    """Starts generator processes on an :class:`Engine`."""

    def __init__(self, engine: Engine) -> None:
        self.engine = engine

    def start(self, generator: Generator[Any, Any, Any]) -> Process:
        """Register ``generator`` and schedule its first step at ``now``."""
        process = Process(self.engine, generator)
        self.engine.call_in(
            0.0, process._resume, None, priority=EventPriority.CONTROL
        )
        return process

    def start_all(
        self, generators: Iterable[Generator[Any, Any, Any]]
    ) -> list[Process]:
        """Start several processes at once."""
        return [self.start(generator) for generator in generators]
