"""The discrete-event simulation engine.

The engine owns a binary-heap event queue and a virtual clock.  It is
deliberately minimal: callbacks scheduled at absolute or relative times,
lazy cancellation, and stop conditions (horizon time, event budget, or an
explicit :meth:`Engine.stop`).  Generator-based processes are layered on
top in :mod:`repro.des.process`.

Example
-------
>>> from repro.des import Engine
>>> eng = Engine()
>>> fired = []
>>> eng.call_at(3.0, lambda: fired.append(eng.now))
>>> eng.call_in(1.0, lambda: fired.append(eng.now))
>>> eng.run()
>>> fired
[1.0, 3.0]
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.des.events import Event, EventPriority


class SimulationError(RuntimeError):
    """Raised on engine misuse (e.g. scheduling in the past)."""


#: Cancelled heap entries tolerated before a compaction is considered.
_COMPACT_MIN = 256

#: Maximum number of fired events kept on the engine's free list.
_POOL_MAX = 512


class Engine:
    """A single-threaded discrete-event simulation engine.

    Parameters
    ----------
    start_time:
        Initial value of the virtual clock (seconds).
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        #: Binary heap of ``(time, priority, sequence, event)`` entries.
        #: Tuples keep every heap comparison in C — sequence is unique,
        #: so a comparison never reaches the event object itself (which
        #: would fall back to a Python-level ``__lt__``).
        self._queue: list[tuple[float, int, int, Event]] = []
        self._sequence = 0
        self._running = False
        self._stopped = False
        self._cancelled_pending = 0
        #: Free list of fired events awaiting reuse.  A long run fires
        #: millions of events; recycling them makes the steady-state
        #: hot loop allocation-free (heap push/pop of reused objects).
        self._pool: list[Event] = []
        self.events_processed = 0
        # Observability counters (plain ints: harvested into the
        # telemetry registry at end of run, ~free on the hot path).
        #: Scheduled events served from the free list vs freshly built.
        self.pool_hits = 0
        self.pool_misses = 0
        #: Queued events cancelled before firing.
        self.events_cancelled = 0
        #: Lazy-deletion heap compactions performed.
        self.heap_compactions = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def sequence(self) -> int:
        """Next scheduling order stamp to be issued.

        Stamps are monotonic per engine and break (time, priority) ties,
        so the checkpoint store records each pending event's stamp and
        re-schedules in stamp order on restore — relative order (and
        therefore the exact firing sequence) is preserved even though
        the absolute numbering restarts.
        """
        return self._sequence

    @property
    def pending(self) -> int:
        """Number of live (uncancelled) events still in the queue.

        Cancelled entries awaiting lazy deletion are not counted; the
        engine tracks them separately and compacts the heap when they
        start to dominate.
        """
        return len(self._queue) - self._cancelled_pending

    @property
    def queue_len(self) -> int:
        """Raw heap length, cancelled corpses included (a telemetry gauge)."""
        return len(self._queue)

    def _note_cancellation(self) -> None:
        """Called (via the event's cancel hook) when a queued event dies.

        Long runs cancel events en masse (every completed connection
        cancels its crossing event and vice versa); without compaction
        the heap would keep every corpse until its firing time, growing
        the queue — and every push/pop — without bound.
        """
        self._cancelled_pending += 1
        self.events_cancelled += 1
        if (
            self._cancelled_pending > _COMPACT_MIN
            and self._cancelled_pending * 2 > len(self._queue)
        ):
            self._queue = [
                entry for entry in self._queue if not entry[3].cancelled
            ]
            heapq.heapify(self._queue)
            self._cancelled_pending = 0
            self.heap_compactions += 1

    def call_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = EventPriority.DEFAULT,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        pool = self._pool
        sequence = self._sequence
        priority = int(priority)
        if pool:
            self.pool_hits += 1
            event = pool.pop()
            event._reset(
                time,
                priority,
                sequence,
                callback,
                args,
                self._note_cancellation,
            )
        else:
            self.pool_misses += 1
            event = Event(
                time,
                priority,
                sequence,
                callback,
                args,
                _cancel_hook=self._note_cancellation,
            )
        self._sequence = sequence + 1
        heapq.heappush(self._queue, (time, priority, sequence, event))
        return event

    def call_in(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = EventPriority.DEFAULT,
    ) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.call_at(self._now + delay, callback, *args, priority=priority)

    def stop(self) -> None:
        """Stop the run loop after the current event returns."""
        self._stopped = True

    def peek(self) -> float | None:
        """Time of the next live event, or ``None`` if the queue is drained."""
        while self._queue and self._queue[0][3].cancelled:
            heapq.heappop(self._queue)
            self._cancelled_pending -= 1
        if not self._queue:
            return None
        return self._queue[0][0]

    def queued_events(self):
        """The queued :class:`Event` objects, heap order, corpses included.

        Checkpoint capture filters cancelled entries itself; nothing
        else should rely on the raw heap layout.
        """
        for entry in self._queue:
            yield entry[3]

    def step(self) -> bool:
        """Fire the next live event.  Returns ``False`` if none remained."""
        while self._queue:
            time, _, _, event = heapq.heappop(self._queue)
            if event.cancelled:
                self._cancelled_pending -= 1
                continue
            if time < self._now:
                raise SimulationError("event queue corrupted: time went backwards")
            # The event left the heap: a late cancel() must not count it
            # as a dead heap entry.
            event._cancel_hook = None
            self._now = time
            self.events_processed += 1
            event.fire()
            self._recycle(event)
            return True
        return False

    def _recycle(self, event: Event) -> None:
        """Return a fired event to the free list.

        The instance is wiped (no callback/args leak) and marked
        cancelled, so a holder's late ``cancel()`` stays the no-op it
        always was for fired events.  Holders must not cancel a fired
        event after scheduling anything new — the instance may by then
        be carrying the newer event (standard free-list aliasing; the
        bundled simulator drops its event references at fire time).
        """
        event.cancelled = True
        event.callback = None  # type: ignore[assignment]
        event.args = ()
        event._cancel_hook = None
        pool = self._pool
        if len(pool) < _POOL_MAX:
            pool.append(event)

    def advance_to(self, time: float) -> int:
        """Drive the clock to ``time`` from an *external* source.

        This is the streaming-mode entry point (:mod:`repro.serve`): a
        wall-clock driver injects timestamped events with
        :meth:`call_at` and then advances the engine to each event's
        timestamp, firing everything due on the way — internal events
        (monitor samples, retries) interleave with the injected ones in
        exactly the order a virtual-time :meth:`run` would have fired
        them, because both paths drain the same heap with the same
        ``(time, priority, sequence)`` ordering.  Returns the number of
        events fired.

        Unlike :meth:`run`, a ``time`` in the past is an error rather
        than a no-op: an external clock must be monotonic, and silently
        reordering its timestamps would desynchronise the streamed
        decisions from their DES replay.
        """
        if time < self._now:
            raise SimulationError(
                f"external clock went backwards: t={time} < now={self._now}"
            )
        before = self.events_processed
        self.run(until=time)
        return self.events_processed - before

    def run(
        self,
        until: float | None = None,
        max_events: int | None = None,
        heartbeat: Callable[[], None] | None = None,
        heartbeat_events: int = 4096,
        observer: Callable[[], None] | None = None,
        observer_events: int = 512,
    ) -> None:
        """Run until the queue drains, ``until`` is reached, or ``stop()``.

        Parameters
        ----------
        until:
            Horizon in virtual seconds.  Events scheduled strictly after
            the horizon are left in the queue and the clock is advanced
            to exactly ``until``.
        max_events:
            Safety budget on the number of events fired in this call.
        heartbeat:
            Optional hook invoked every ``heartbeat_events`` fired
            events (progress reporting).  The hook observes the engine;
            it must not schedule or cancel events, so a run with a
            heartbeat fires exactly the events it would without one.
        heartbeat_events:
            Firing cadence of ``heartbeat`` (the hook throttles itself
            further on wall time; this only bounds hook-call overhead).
        observer:
            Optional finer-cadence hook invoked every ``observer_events``
            fired events (time-series sampling).  Same contract as
            ``heartbeat`` — pure observation, must not schedule or
            cancel events.
        observer_events:
            Firing cadence of ``observer`` (the sampler throttles
            itself further on virtual/wall intervals; this only bounds
            hook-call overhead).
        """
        if self._running:
            raise SimulationError("engine is not reentrant")
        if heartbeat_events < 1:
            raise SimulationError("heartbeat_events must be >= 1")
        if observer_events < 1:
            raise SimulationError("observer_events must be >= 1")
        self._running = True
        self._stopped = False
        fired = 0
        next_beat = heartbeat_events if heartbeat is not None else None
        next_obs = observer_events if observer is not None else None
        heappop = heapq.heappop
        recycle = self._recycle
        try:
            # Inlined peek()+step(): one heap access per event instead of
            # a peek/pop pair.  ``self._queue`` must be re-read after
            # every fire — firing an event can cancel others and trigger
            # a compaction, which REBINDS the queue to a new list.
            #
            # Events are dispatched in same-timestamp *runs*: the outer
            # loop advances the clock and checks the horizon once per
            # distinct timestamp, the inner loop then drains every live
            # event at exactly that time (coalesced admission tests
            # schedule bursts of equal-time events, so runs of 2+ are
            # the common case, not the exception).  Events scheduled
            # *during* the run at the same time join it — the inner
            # loop re-reads the heap head after each fire, preserving
            # the exact one-at-a-time firing order.
            while not self._stopped:
                queue = self._queue
                while queue and queue[0][3].cancelled:
                    heappop(queue)
                    self._cancelled_pending -= 1
                if not queue:
                    break
                head = queue[0][3]
                time = head.time
                if until is not None and time > until:
                    break
                if max_events is not None and fired >= max_events:
                    break
                if time < self._now:
                    raise SimulationError(
                        "event queue corrupted: time went backwards"
                    )
                self._now = time
                while True:
                    heappop(queue)
                    head._cancel_hook = None
                    self.events_processed += 1
                    head.fire()
                    recycle(head)
                    fired += 1
                    if next_obs is not None and fired >= next_obs:
                        observer()
                        next_obs = fired + observer_events
                    if next_beat is not None and fired >= next_beat:
                        heartbeat()
                        next_beat = fired + heartbeat_events
                    if self._stopped:
                        break
                    if max_events is not None and fired >= max_events:
                        break
                    queue = self._queue
                    while queue and queue[0][3].cancelled:
                        heappop(queue)
                        self._cancelled_pending -= 1
                    if not queue:
                        break
                    if queue[0][0] != time:
                        break
                    head = queue[0][3]
            if until is not None and not self._stopped and self._now < until:
                self._now = until
        finally:
            self._running = False
