"""Named, independently seeded random streams.

Stochastic simulations need *reproducible* and *decoupled* randomness:
changing how many random numbers the mobility model draws must not
perturb the arrival process.  :class:`RandomStreams` derives one
:class:`random.Random` per named purpose from a master seed, so each
subsystem draws from its own stream.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator


class RandomStreams:
    """A factory of named, deterministic random streams.

    Example
    -------
    >>> streams = RandomStreams(seed=42)
    >>> arrivals = streams.get("arrivals")
    >>> mobility = streams.get("mobility")
    >>> streams.get("arrivals") is arrivals   # memoised
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, random.Random] = {}

    def get(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            # Derive a child seed that depends on both the master seed
            # and the stream name, independent of creation order.  A
            # stable hash (not builtin hash(), which is salted per
            # process) keeps runs reproducible across processes.
            digest = hashlib.sha256(
                f"{self.seed}:{name}".encode()
            ).digest()
            child_seed = int.from_bytes(digest[:8], "big")
            stream = random.Random(child_seed)
            self._streams[name] = stream
        return stream

    def spawn(self, index: int) -> "RandomStreams":
        """Derive an independent child factory (e.g. per replication).

        The child's master seed comes from the same stable-hash
        construction as :meth:`get` — sha256 over the parent seed and a
        spawn tag — so children are deterministic across processes,
        independent of the parent's named streams (the tag namespace
        cannot collide with a stream name), and free of the collision
        structure of an affine seed map, where ``spawn(seed, i)`` and
        ``spawn(seed + 1, i - K)`` would coincide.
        """
        digest = hashlib.sha256(
            f"{self.seed}/spawn:{index}".encode()
        ).digest()
        return RandomStreams(seed=int.from_bytes(digest[:8], "big"))

    def names(self) -> Iterator[str]:
        """Names of streams created so far."""
        return iter(self._streams)


def exponential(rng: random.Random, mean: float) -> float:
    """Draw from Exp(mean); guards against a zero uniform draw."""
    if mean <= 0:
        raise ValueError(f"mean must be positive, got {mean}")
    return rng.expovariate(1.0 / mean)
