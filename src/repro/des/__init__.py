"""Discrete-event simulation kernel (substrate S1).

Public surface:

* :class:`Engine` — heap-based event loop with virtual time.
* :class:`Event` / :class:`EventPriority` — schedulable, cancellable events.
* :class:`RandomStreams` — named deterministic random streams.
* :mod:`repro.des.process` — optional generator-process layer.
"""

from repro.des.engine import Engine, SimulationError
from repro.des.events import Event, EventPriority
from repro.des.random import RandomStreams, exponential
from repro.des.resources import Container, Resource, Store

__all__ = [
    "Container",
    "Engine",
    "Event",
    "EventPriority",
    "RandomStreams",
    "Resource",
    "SimulationError",
    "Store",
    "exponential",
]
