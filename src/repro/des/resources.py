"""Queueing primitives for the process layer: Resource, Container, Store.

These complete the simpy-flavoured toolkit so workload models beyond
the bundled cellular simulator (signalling servers, finite trunk pools,
message queues) can be expressed as processes:

* :class:`Resource` — ``n`` identical servers with a FIFO queue;
* :class:`Container` — a continuous quantity (e.g. bandwidth pool);
* :class:`Store` — a FIFO buffer of discrete items.

All blocking operations return a :class:`~repro.des.process.Waitable`
to ``yield`` on.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque

from repro.des.engine import Engine
from repro.des.process import Waitable


class Resource:
    """``capacity`` identical servers with FIFO waiting.

    Usage (inside a process)::

        grant = yield resource.request()
        ...                      # hold one server
        resource.release()
    """

    def __init__(self, engine: Engine, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.engine = engine
        self.capacity = capacity
        self.in_use = 0
        self._waiters: Deque[Waitable] = deque()

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    def request(self) -> Waitable:
        """A waitable that triggers when a server is granted."""
        grant = Waitable(self.engine)
        if self.in_use < self.capacity:
            self.in_use += 1
            grant.succeed()
        else:
            self._waiters.append(grant)
        return grant

    def release(self) -> None:
        """Return one server; the oldest waiter (if any) gets it."""
        if self.in_use <= 0:
            raise RuntimeError("release without a matching request")
        if self._waiters:
            # Hand the server straight to the next waiter.
            self._waiters.popleft().succeed()
        else:
            self.in_use -= 1


class Container:
    """A continuous quantity with blocking ``get`` and immediate ``put``."""

    def __init__(
        self,
        engine: Engine,
        capacity: float,
        initial: float = 0.0,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0.0 <= initial <= capacity:
            raise ValueError("initial level outside [0, capacity]")
        self.engine = engine
        self.capacity = float(capacity)
        self.level = float(initial)
        self._getters: Deque[tuple[float, Waitable]] = deque()

    def put(self, amount: float) -> None:
        """Add ``amount`` (clamped at capacity) and serve blocked getters."""
        if amount < 0:
            raise ValueError("amount cannot be negative")
        self.level = min(self.level + amount, self.capacity)
        self._drain()

    def get(self, amount: float) -> Waitable:
        """A waitable that triggers once ``amount`` has been taken."""
        if amount < 0:
            raise ValueError("amount cannot be negative")
        if amount > self.capacity:
            raise ValueError("amount exceeds the container capacity")
        waitable = Waitable(self.engine)
        self._getters.append((amount, waitable))
        self._drain()
        return waitable

    def _drain(self) -> None:
        while self._getters:
            amount, waitable = self._getters[0]
            if amount > self.level:
                break
            self.level -= amount
            self._getters.popleft()
            waitable.succeed(amount)


class Store:
    """A FIFO buffer of items with blocking ``get``.

    ``put`` never blocks (unbounded by default; bounded stores raise on
    overflow so misuse fails loudly instead of silently dropping).
    """

    def __init__(self, engine: Engine, capacity: int | None = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 or None")
        self.engine = engine
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[Waitable] = deque()

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
            return
        if self.capacity is not None and len(self.items) >= self.capacity:
            raise OverflowError("store is full")
        self.items.append(item)

    def get(self) -> Waitable:
        """A waitable resolving to the oldest item."""
        waitable = Waitable(self.engine)
        if self.items:
            waitable.succeed(self.items.popleft())
        else:
            self._getters.append(waitable)
        return waitable

    def __len__(self) -> int:
        return len(self.items)
