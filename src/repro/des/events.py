"""Event primitives for the discrete-event simulation kernel.

An :class:`Event` couples a firing time with a callback.  Events are
totally ordered by ``(time, priority, sequence)`` so that simultaneous
events fire in a deterministic order: first by explicit priority, then
by scheduling order.  Events may be cancelled; cancelled events stay in
the heap but are skipped by the engine (lazy deletion).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable


class EventPriority(enum.IntEnum):
    """Tie-break priority for events scheduled at the same instant.

    Lower values fire first.  Departures are processed before arrivals
    at the same instant so that bandwidth freed by an ending connection
    is visible to an admission test occurring at the same time.
    """

    DEPARTURE = 0
    HANDOFF = 1
    ARRIVAL = 2
    CONTROL = 3
    DEFAULT = 5
    MONITOR = 9


@dataclass(order=True)
class Event:
    """A scheduled callback in virtual time.

    Instances are created via :meth:`repro.des.engine.Engine.schedule`;
    user code normally only keeps them around to :meth:`cancel` them.
    """

    time: float
    priority: int
    sequence: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple[Any, ...] = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)
    #: Owner notification (engine bookkeeping of dead heap entries);
    #: invoked at most once, on the first :meth:`cancel`.
    _cancel_hook: Callable[[], None] | None = field(
        compare=False, default=None, repr=False
    )

    def cancel(self) -> None:
        """Prevent this event from firing.

        Cancelling an already-fired or already-cancelled event is a
        harmless no-op; the engine skips cancelled entries lazily.
        """
        if self.cancelled:
            return
        self.cancelled = True
        hook = self._cancel_hook
        if hook is not None:
            self._cancel_hook = None
            hook()

    def fire(self) -> None:
        """Invoke the callback (engine use only)."""
        self.callback(*self.args)
