"""Event primitives for the discrete-event simulation kernel.

An :class:`Event` couples a firing time with a callback.  Events are
totally ordered by ``(time, priority, sequence)`` so that simultaneous
events fire in a deterministic order: first by explicit priority, then
by scheduling order.  Events may be cancelled; cancelled events stay in
the heap but are skipped by the engine (lazy deletion).

``Event`` is the single most-allocated object of a simulation run, so
it is a hand-rolled ``__slots__`` class: no instance ``__dict__``, a
plain ``__init__`` (no dataclass machinery), and a ``__lt__`` that
compares only the ordering triple instead of a generated full-field
tuple comparison.  The engine additionally recycles fired instances
through a free list (:class:`repro.des.engine.Engine`), which
:meth:`_reset` supports.
"""

from __future__ import annotations

import enum
from typing import Any, Callable


class EventPriority(enum.IntEnum):
    """Tie-break priority for events scheduled at the same instant.

    Lower values fire first.  Departures are processed before arrivals
    at the same instant so that bandwidth freed by an ending connection
    is visible to an admission test occurring at the same time.
    """

    DEPARTURE = 0
    HANDOFF = 1
    ARRIVAL = 2
    CONTROL = 3
    DEFAULT = 5
    MONITOR = 9


class Event:
    """A scheduled callback in virtual time.

    Instances are created via :meth:`repro.des.engine.Engine.call_at`;
    user code normally only keeps them around to :meth:`cancel` them.
    """

    __slots__ = (
        "time",
        "priority",
        "sequence",
        "callback",
        "args",
        "cancelled",
        "_cancel_hook",
    )

    def __init__(
        self,
        time: float,
        priority: int,
        sequence: int,
        callback: Callable[..., None],
        args: tuple[Any, ...] = (),
        cancelled: bool = False,
        _cancel_hook: Callable[[], None] | None = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.sequence = sequence
        self.callback = callback
        self.args = args
        self.cancelled = cancelled
        #: Owner notification (engine bookkeeping of dead heap entries);
        #: invoked at most once, on the first :meth:`cancel`.
        self._cancel_hook = _cancel_hook

    def _reset(
        self,
        time: float,
        priority: int,
        sequence: int,
        callback: Callable[..., None],
        args: tuple[Any, ...],
        cancel_hook: Callable[[], None] | None,
    ) -> None:
        """Re-initialise a recycled instance (engine free-list use only)."""
        self.time = time
        self.priority = priority
        self.sequence = sequence
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._cancel_hook = cancel_hook

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.sequence < other.sequence

    def cancel(self) -> None:
        """Prevent this event from firing.

        Cancelling an already-fired or already-cancelled event is a
        harmless no-op; the engine skips cancelled entries lazily.
        """
        if self.cancelled:
            return
        self.cancelled = True
        hook = self._cancel_hook
        if hook is not None:
            self._cancel_hook = None
            hook()

    def fire(self) -> None:
        """Invoke the callback (engine use only)."""
        self.callback(*self.args)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Event(time={self.time!r}, priority={self.priority!r},"
            f" sequence={self.sequence!r}, cancelled={self.cancelled!r})"
        )
