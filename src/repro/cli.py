"""Command-line interface: run scenarios and paper experiments.

Examples
--------
::

    python -m repro run --scheme AC3 --load 200 --rvo 0.8
    python -m repro run --scheme static --guard 10 --low-mobility
    python -m repro sweep --scheme AC3 --loads 60,150,300
    python -m repro experiment table3
    python -m repro list-experiments
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.report import Table
from repro.mobility.models import TravelDirections
from repro.simulation.runner import run_sweep
from repro.simulation.scenarios import stationary
from repro.simulation.simulator import CellularSimulator


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Predictive and adaptive bandwidth reservation for hand-offs"
            " (Choi & Shin, SIGCOMM 1998)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run_parser = commands.add_parser(
        "run", help="run one scenario and print the per-cell report"
    )
    _add_scenario_arguments(run_parser)

    sweep_parser = commands.add_parser(
        "sweep", help="sweep the offered load and print P_CB / P_HD"
    )
    _add_scenario_arguments(sweep_parser)
    sweep_parser.add_argument(
        "--loads",
        default="60,100,150,200,250,300",
        help="comma-separated offered loads (BUs per cell)",
    )
    sweep_parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="run the sweep on a process pool of N workers"
        " (results are identical to the sequential run)",
    )

    experiment_parser = commands.add_parser(
        "experiment", help="regenerate one of the paper's tables/figures"
    )
    experiment_parser.add_argument("name", help="experiment id, e.g. fig8+9")
    experiment_parser.add_argument(
        "--duration", type=float, default=None,
        help="override the simulated horizon (seconds)",
    )

    commands.add_parser(
        "list-experiments", help="list the registered experiment ids"
    )
    return parser


def _add_scenario_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scheme", default="AC3",
                        choices=["static", "AC1", "AC2", "AC3"])
    parser.add_argument("--load", type=float, default=200.0,
                        help="offered load in BUs per cell (Eq. 7)")
    parser.add_argument("--rvo", type=float, default=1.0,
                        help="voice ratio R_vo in [0, 1]")
    parser.add_argument("--duration", type=float, default=1000.0,
                        help="simulated seconds")
    parser.add_argument("--warmup", type=float, default=0.0,
                        help="seconds excluded from the statistics")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--cells", type=int, default=10)
    parser.add_argument("--guard", type=float, default=10.0,
                        help="static guard band G in BUs")
    parser.add_argument("--low-mobility", action="store_true",
                        help="speeds U[40,60] km/h instead of U[80,120]")
    parser.add_argument("--one-way", action="store_true",
                        help="all mobiles drive one direction, open road")
    parser.add_argument("--adaptive-qos", action="store_true",
                        help="degradable video + min-QoS reservation (§1)")
    parser.add_argument("--soft-handoff", type=float, default=0.0,
                        metavar="SECONDS",
                        help="CDMA soft hand-off overlap window (§7)")
    parser.add_argument("--overload", type=float, default=1.0,
                        metavar="FACTOR",
                        help="CDMA soft-capacity hand-off margin (§7)")
    parser.add_argument("--kernel", default="auto",
                        choices=["auto", "numpy", "python"],
                        help="estimation kernel: numpy-batched or pure"
                        " python (auto picks numpy when installed)")


def _build_config(args: argparse.Namespace, load: float | None = None):
    overrides = {
        "num_cells": args.cells,
        "static_guard": args.guard,
        "warmup": args.warmup,
        "adaptive_qos": args.adaptive_qos,
        "soft_handoff_window": args.soft_handoff,
        "handoff_overload": args.overload,
        "kernel": args.kernel,
    }
    if args.one_way:
        overrides["directions"] = TravelDirections.ONE_WAY
        overrides["ring"] = False
    return stationary(
        args.scheme,
        offered_load=load if load is not None else args.load,
        voice_ratio=args.rvo,
        high_mobility=not args.low_mobility,
        duration=args.duration,
        seed=args.seed,
        **overrides,
    )


def _command_run(args: argparse.Namespace) -> int:
    result = CellularSimulator(_build_config(args)).run()
    print(f"scheme={result.scheme}  L={result.offered_load:g}"
          f"  duration={result.duration:g}s")
    print(f"P_CB = {result.blocking_probability:.4f}")
    print(f"P_HD = {result.dropping_probability:.4f}")
    print(f"avg B_r = {result.average_reservation:.2f} BUs,"
          f" avg B_u = {result.average_used:.2f} BUs,"
          f" N_calc = {result.average_calculations:.2f}")
    rows = [
        [
            status.cell_id + 1,
            status.blocking_probability,
            status.dropping_probability,
            status.t_est,
            status.reserved_target,
            status.used_bandwidth,
        ]
        for status in result.statuses
    ]
    print()
    print(Table(["Cell", "PCB", "PHD", "Test", "Br", "Bu"], rows).render())
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    loads = [float(piece) for piece in args.loads.split(",") if piece]
    configs = [_build_config(args, load=load) for load in loads]
    pairs = list(
        zip(loads, run_sweep(configs, workers=args.workers))
    )
    rows = [
        [
            load,
            result.blocking_probability,
            result.dropping_probability,
            result.average_reservation,
            result.average_calculations,
        ]
        for load, result in pairs
    ]
    print(Table(["L", "PCB", "PHD", "avg Br", "Ncalc"], rows).render())
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    kwargs = {}
    if args.duration is not None:
        kwargs["duration"] = args.duration
    outputs = run_experiment(args.name, **kwargs)
    for output in outputs:
        print(output.render())
        print()
    return 0


def _command_list(_args: argparse.Namespace) -> int:
    for name in sorted(EXPERIMENTS):
        print(name)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _command_run,
        "sweep": _command_sweep,
        "experiment": _command_experiment,
        "list-experiments": _command_list,
    }
    try:
        return handlers[args.command](args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
