"""Command-line interface: run scenarios and paper experiments.

Examples
--------
::

    python -m repro run --scheme AC3 --load 200 --rvo 0.8
    python -m repro run --scheme static --guard 10 --low-mobility
    python -m repro sweep --scheme AC3 --loads 60,150,300
    python -m repro experiment table3
    python -m repro list-experiments
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.report import Table
from repro.mobility.models import TravelDirections
from repro.obs import (
    configure_logging,
    ensure_configured,
    get_logger,
    merge_snapshots,
    snapshot_to_json,
    to_prometheus,
)
from repro.simulation.runner import run_sweep
from repro.simulation.scenarios import hex_city, stationary
from repro.simulation.simulator import CellularSimulator
from repro.simulation.tracing import ConnectionTracer


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Predictive and adaptive bandwidth reservation for hand-offs"
            " (Choi & Shin, SIGCOMM 1998)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run_parser = commands.add_parser(
        "run", help="run one scenario and print the per-cell report"
    )
    _add_scenario_arguments(run_parser)
    _add_spatial_arguments(run_parser)
    _add_observability_arguments(run_parser)
    run_parser.add_argument(
        "--trace-jsonl", default=None, metavar="PATH",
        help="record the connection-lifecycle journal and write it as"
        " JSON lines (verify() violations are logged)",
    )
    run_parser.add_argument(
        "--replications", type=int, default=1, metavar="K",
        help="shard the run into K independent replications and merge"
        " the metrics with confidence intervals (default 1: one run)",
    )
    run_parser.add_argument(
        "--ci-level", type=float, default=0.95, metavar="P",
        help="confidence level of the replicated intervals"
        " (default 0.95)",
    )
    run_parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="process-pool width for --replications (the merged result"
        " is identical at any worker count)",
    )
    state_group = run_parser.add_argument_group("durable state")
    state_group.add_argument(
        "--save-state", default=None, metavar="PATH",
        help="write a durable checkpoint of the final state after the"
        " run (load it later with --load-state to continue)",
    )
    state_group.add_argument(
        "--load-state", default=None, metavar="PATH",
        help="restore a checkpoint and continue it up to --duration;"
        " the continued run is bit-identical to an uninterrupted one",
    )
    state_group.add_argument(
        "--checkpoint-every", type=float, default=0.0, metavar="SECONDS",
        help="write periodic mid-run checkpoints every SECONDS of"
        " simulated time (0 disables)",
    )
    state_group.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="directory for --checkpoint-every checkpoints"
        " (default: 'checkpoints')",
    )
    state_group.add_argument(
        "--checkpoint-keep", type=int, default=3, metavar="K",
        help="keep only the newest K periodic checkpoints (default 3)",
    )

    sweep_parser = commands.add_parser(
        "sweep", help="sweep the offered load and print P_CB / P_HD"
    )
    _add_scenario_arguments(sweep_parser)
    _add_observability_arguments(sweep_parser)
    sweep_parser.add_argument(
        "--loads",
        default="60,100,150,200,250,300",
        help="comma-separated offered loads (BUs per cell)",
    )
    sweep_parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="run the sweep on a process pool of N workers"
        " (results are identical to the sequential run)",
    )

    experiment_parser = commands.add_parser(
        "experiment", help="regenerate one of the paper's tables/figures"
    )
    experiment_parser.add_argument("name", help="experiment id, e.g. fig8+9")
    experiment_parser.add_argument(
        "--duration", type=float, default=None,
        help="override the simulated horizon (seconds)",
    )

    commands.add_parser(
        "list-experiments", help="list the registered experiment ids"
    )

    campaign_parser = commands.add_parser(
        "campaign",
        help="run N chained simulated days, warm-starting each from the"
        " previous day's checkpoint",
    )
    _add_scenario_arguments(campaign_parser)
    _add_spatial_arguments(campaign_parser)
    _add_observability_arguments(campaign_parser)
    campaign_parser.add_argument(
        "--days", type=int, default=3, metavar="N",
        help="number of simulated days to chain (default 3)",
    )
    campaign_parser.add_argument(
        "--state-dir", default="campaign-state", metavar="DIR",
        help="directory for per-day checkpoints and campaign.jsonl",
    )
    campaign_parser.add_argument(
        "--jsonl", default=None, metavar="PATH",
        help="per-day report path (default: <state-dir>/campaign.jsonl)",
    )
    campaign_parser.add_argument(
        "--day-seconds", type=float, default=None, metavar="SECONDS",
        help="override the simulated day length T_day (each day runs"
        " this long; --duration is ignored by campaigns)",
    )
    campaign_parser.add_argument(
        "--fresh-windows", action="store_true",
        help="reset the T_est window controllers each day instead of"
        " carrying their position across days",
    )

    dash_parser = commands.add_parser(
        "dash",
        help="live terminal dashboard tailing a --series-out JSONL stream",
    )
    dash_parser.add_argument(
        "path", help="series JSONL path ('-' reads a pipe on stdin)"
    )
    dash_parser.add_argument(
        "--refresh", type=float, default=1.0, metavar="SECONDS",
        help="redraw cadence while following (default 1.0)",
    )
    dash_parser.add_argument(
        "--once", action="store_true",
        help="render the stream's current contents once and exit",
    )
    dash_parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="stop following after SECONDS of wall time",
    )

    serve_parser = commands.add_parser(
        "serve",
        help="run the live admission-control service: wall-clock engine,"
        " async decision API, WebSocket state streaming",
    )
    _add_scenario_arguments(serve_parser)
    _add_observability_arguments(serve_parser)
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default local)"
    )
    serve_parser.add_argument(
        "--port", type=int, default=8766,
        help="WebSocket port (0 picks a free one; default 8766)",
    )
    serve_parser.add_argument(
        "--budget-ms", type=float, default=5.0, metavar="MS",
        help="per-decision latency budget; overruns count into the"
        " serve.budget_miss telemetry counter (default 5.0)",
    )
    serve_parser.add_argument(
        "--time-scale", type=float, default=1.0, metavar="X",
        help="stream seconds per wall second (default 1.0: real time)",
    )
    serve_parser.add_argument(
        "--run-for", type=float, default=None, metavar="SECONDS",
        help="serve for SECONDS of wall time then shut down cleanly"
        " (default: until interrupted)",
    )
    serve_state = serve_parser.add_argument_group("durable state")
    serve_state.add_argument(
        "--load-state", default=None, metavar="PATH",
        help="warm-start from a checkpoint: the learned hand-off"
        " history and window state seed the live estimators",
    )
    serve_state.add_argument(
        "--checkpoint-every", type=float, default=0.0, metavar="SECONDS",
        help="periodic checkpoints every SECONDS of wall time"
        " (0 disables)",
    )
    serve_state.add_argument(
        "--checkpoint-dir", default="serve-state", metavar="DIR",
        help="directory for periodic checkpoints (default 'serve-state')",
    )
    serve_state.add_argument(
        "--checkpoint-keep", type=int, default=2, metavar="K",
        help="keep only the newest K periodic checkpoints (default 2)",
    )

    serve_bench_parser = commands.add_parser(
        "serve-bench",
        help="drive the live service with the bundled load generator and"
        " report decisions/s with P50/P99 decision latency",
    )
    _add_scenario_arguments(serve_bench_parser)
    serve_bench_parser.add_argument(
        "--decisions", type=int, default=20_000, metavar="N",
        help="admission decisions to drive (default 20000)",
    )
    serve_bench_parser.add_argument(
        "--concurrency", type=int, default=32, metavar="N",
        help="concurrent load-generator workers (default 32)",
    )
    serve_bench_parser.add_argument(
        "--pipeline", type=int, default=64, metavar="K",
        help="events each worker keeps in flight (default 64)",
    )
    serve_bench_parser.add_argument(
        "--budget-ms", type=float, default=5.0, metavar="MS",
        help="per-decision latency budget (default 5.0)",
    )
    serve_bench_parser.add_argument(
        "--json", action="store_true",
        help="print the report as one JSON object instead of text",
    )

    state_parser = commands.add_parser(
        "state", help="inspect durable state checkpoints"
    )
    state_commands = state_parser.add_subparsers(
        dest="state_command", required=True
    )
    inspect_parser = state_commands.add_parser(
        "inspect",
        help="print a checkpoint's manifest and verify every file's"
        " CRC32 (non-zero exit on corruption)",
    )
    inspect_parser.add_argument("path", help="checkpoint directory")
    return parser


def _add_scenario_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scheme", default="AC3",
                        choices=["static", "AC1", "AC2", "AC3"])
    parser.add_argument("--load", type=float, default=200.0,
                        help="offered load in BUs per cell (Eq. 7)")
    parser.add_argument("--rvo", type=float, default=1.0,
                        help="voice ratio R_vo in [0, 1]")
    parser.add_argument("--duration", type=float, default=1000.0,
                        help="simulated seconds")
    parser.add_argument("--warmup", type=float, default=0.0,
                        help="seconds excluded from the statistics")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--cells", type=int, default=10)
    parser.add_argument("--guard", type=float, default=10.0,
                        help="static guard band G in BUs")
    parser.add_argument("--low-mobility", action="store_true",
                        help="speeds U[40,60] km/h instead of U[80,120]")
    parser.add_argument("--one-way", action="store_true",
                        help="all mobiles drive one direction, open road")
    parser.add_argument("--adaptive-qos", action="store_true",
                        help="degradable video + min-QoS reservation (§1)")
    parser.add_argument("--soft-handoff", type=float, default=0.0,
                        metavar="SECONDS",
                        help="CDMA soft hand-off overlap window (§7)")
    parser.add_argument("--overload", type=float, default=1.0,
                        metavar="FACTOR",
                        help="CDMA soft-capacity hand-off margin (§7)")
    parser.add_argument("--kernel", default="auto",
                        choices=["auto", "numpy", "python", "numba"],
                        help="estimation kernel: numpy-batched, jitted"
                        " numba flush kernels ([fastest] extra, explicit"
                        " opt-in), or pure python; auto picks numpy when"
                        " installed, all produce bit-identical metrics")


def _add_spatial_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("spatial sharding")
    group.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="partition a hex city into N row-band shards and run one"
        " DES engine per shard (the merged metrics are bit-identical"
        " at any N); 0 keeps the single-engine 1-D road runner",
    )
    group.add_argument(
        "--hex", default="12x12", metavar="RxC", dest="hex_grid",
        help="hex grid dimensions for --shards runs, e.g. 30x30"
        " (wrapped torus; --cells is ignored; default 12x12)",
    )
    group.add_argument(
        "--epoch", type=float, default=1.0, metavar="SECONDS",
        help="barrier epoch for --shards runs; must not exceed the"
        " 1 s minimum hand-off notice (default 1.0)",
    )
    group.add_argument(
        "--inline-shards", action="store_true",
        help="run the shards sequentially in this process instead of"
        " one worker process each (same metrics, no parallelism)",
    )
    group.add_argument(
        "--shard-plan", default="rows", choices=("rows", "load", "tiles"),
        dest="shard_plan",
        help="partition strategy: equal row bands (rows), row bands"
        " sized by per-cell offered load (load), or 2-D tiles with"
        " load-balanced cuts (tiles); metrics are identical for every"
        " choice — only the balance changes (default rows)",
    )
    group.add_argument(
        "--hotspots", default=None, metavar="R,C,GAIN[,RADIUS];...",
        help="semicolon-separated traffic hot spots, each"
        " row,col,gain[,radius] — scales per-cell arrival rates"
        " (mean-normalised, network load unchanged); this is what"
        " makes --shard-plan load/tiles differ from rows",
    )


def _parse_hex(spec: str) -> tuple[int, int]:
    try:
        rows_text, _, cols_text = spec.lower().partition("x")
        rows, cols = int(rows_text), int(cols_text)
    except ValueError:
        raise ValueError(
            f"--hex wants ROWSxCOLS (e.g. 30x30), got {spec!r}"
        ) from None
    return rows, cols


def _add_observability_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("observability")
    group.add_argument("--telemetry", action="store_true",
                       help="collect run telemetry (also: REPRO_TELEMETRY=1)")
    group.add_argument("--progress", type=float, default=0.0,
                       metavar="SECONDS",
                       help="heartbeat progress lines at most this often"
                       " (0 disables)")
    group.add_argument("--log-level", default=None, metavar="SPEC",
                       help="log level, optionally per subsystem:"
                       " 'info' or 'info,des=debug,window=debug'"
                       " (also: REPRO_LOG)")
    group.add_argument("--log-json", action="store_true",
                       help="emit logs as JSON lines (also:"
                       " REPRO_LOG_JSON=1)")
    group.add_argument("--prom-out", default=None, metavar="PATH",
                       help="write the telemetry snapshot in Prometheus"
                       " text format (implies --telemetry)")
    group.add_argument("--telemetry-json", default=None, metavar="PATH",
                       help="write the telemetry snapshot as JSON"
                       " (implies --telemetry)")
    group.add_argument("--series", type=float, default=0.0,
                       metavar="SECONDS",
                       help="sample an in-run time series every SECONDS"
                       " of virtual time (0 disables)")
    group.add_argument("--series-wall", type=float, default=0.0,
                       metavar="SECONDS",
                       help="sample the time series every SECONDS of wall"
                       " time (0 disables; combinable with --series)")
    group.add_argument("--series-out", default=None, metavar="PATH",
                       help="stream samples to an append-only JSONL file"
                       " as they are taken ('repro dash PATH' tails it);"
                       " implies --series-wall 1 when no cadence is set")
    group.add_argument("--trace-out", default=None, metavar="PATH",
                       help="record wall-clock spans (epoch barriers,"
                       " flush ticks, checkpoint publishes) and write"
                       " them as Chrome trace JSON loadable in"
                       " https://ui.perfetto.dev (implies tracing)")


def _wants_telemetry(args: argparse.Namespace) -> bool:
    # getattr: commands without the observability group (serve-bench)
    # still build configs through the same helper.
    return bool(
        getattr(args, "telemetry", False)
        or getattr(args, "prom_out", None)
        or getattr(args, "telemetry_json", None)
    )


def _series_overrides(args: argparse.Namespace) -> dict:
    """Streaming-observability config fields from the CLI flags."""
    interval = getattr(args, "series", 0.0)
    wall = getattr(args, "series_wall", 0.0)
    series_out = getattr(args, "series_out", None)
    if series_out and interval == 0 and wall == 0:
        wall = 1.0
    return {
        "series_interval": interval,
        "series_wall_interval": wall,
        "series_path": series_out or "",
        "trace": bool(getattr(args, "trace_out", None)),
    }


def _export_streams(
    timeseries,
    trace_events,
    args: argparse.Namespace,
    lane_names: dict[int, str] | None = None,
) -> None:
    """Write the trace file and summarise the series stream."""
    from repro.obs.timeseries import series_summary
    from repro.obs.trace import span_names, write_trace

    if args.trace_out:
        write_trace(args.trace_out, trace_events or [], lane_names)
        names = sorted(span_names(trace_events))
        print(
            f"trace: {len(trace_events or [])} spans"
            f" ({', '.join(names) if names else 'none'})"
            f" -> {args.trace_out}  (load in https://ui.perfetto.dev)"
        )
    summary = series_summary(timeseries)
    if summary is not None:
        shards = summary["shards"]
        lanes = f"{len(shards)} shard lanes" if shards else "1 lane"
        print(
            f"series: {summary['samples']} samples ({lanes}),"
            f" peak {summary['peak_events_per_s']:,.0f} events/s"
        )
    if args.series_out:
        print(
            f"series stream: {args.series_out}"
            f"  (tail with: repro dash {args.series_out})"
        )


def _configure_observability(args: argparse.Namespace) -> None:
    if args.log_level is not None or args.log_json:
        configure_logging(spec=args.log_level, json_lines=args.log_json)
    else:
        ensure_configured()


def _export_telemetry(snapshot, args: argparse.Namespace) -> None:
    """Write/print the snapshot per the export flags."""
    if snapshot is None:
        return
    if args.prom_out:
        with open(args.prom_out, "w", encoding="utf-8") as handle:
            handle.write(to_prometheus(snapshot))
    if args.telemetry_json:
        with open(args.telemetry_json, "w", encoding="utf-8") as handle:
            handle.write(snapshot_to_json(snapshot))
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    events = counters.get("des.events_fired", 0)
    rate = gauges.get("des.events_per_sec", 0.0)
    vector_rows = counters.get('estimation.eq4_rows{kernel="numpy"}', 0)
    scalar_rows = counters.get('estimation.eq4_rows{kernel="python"}', 0)
    row_total = vector_rows + scalar_rows
    print()
    print(f"telemetry: run_id={snapshot.get('run_id', '')}")
    print(f"  events fired: {events:,.0f} ({rate:,.0f} events/s)")
    if row_total:
        print(f"  Eq.4 vectorized rows: {vector_rows / row_total:.1%}"
              f" ({row_total:,.0f} rows)")


def _build_config(args: argparse.Namespace, load: float | None = None):
    overrides = {
        "num_cells": args.cells,
        "static_guard": args.guard,
        "warmup": args.warmup,
        "adaptive_qos": args.adaptive_qos,
        "soft_handoff_window": args.soft_handoff,
        "handoff_overload": args.overload,
        "kernel": args.kernel,
        "telemetry": _wants_telemetry(args),
        "progress_interval": getattr(args, "progress", 0.0),
        **_series_overrides(args),
    }
    if args.one_way:
        overrides["directions"] = TravelDirections.ONE_WAY
        overrides["ring"] = False
    return stationary(
        args.scheme,
        offered_load=load if load is not None else args.load,
        voice_ratio=args.rvo,
        high_mobility=not args.low_mobility,
        duration=args.duration,
        seed=args.seed,
        **overrides,
    )


def _parse_hotspots(
    spec: str | None, grid: tuple[int, int] | None = None
) -> tuple[tuple[float, ...], ...]:
    """Parse ``row,col,gain[,radius];...`` into hotspot tuples.

    Every malformed or out-of-range segment is rejected with an error
    naming the offending segment — a hot spot silently landing outside
    the grid would just quietly not skew the load.
    """
    if not spec:
        return ()
    hotspots = []
    for part in spec.split(";"):
        part = part.strip()
        if not part:
            continue
        try:
            fields = [float(value) for value in part.split(",")]
        except ValueError:
            raise ValueError(
                "--hotspots wants numeric row,col,gain[,radius]"
                f" entries; {part!r} does not parse"
            ) from None
        if len(fields) not in (3, 4):
            raise ValueError(
                "--hotspots wants row,col,gain[,radius] per entry,"
                f" got {part!r}"
            )
        row, col, gain = fields[0], fields[1], fields[2]
        if gain <= 0:
            raise ValueError(
                f"--hotspots gain must be positive in {part!r}"
            )
        if len(fields) == 4 and fields[3] <= 0:
            raise ValueError(
                f"--hotspots radius must be positive in {part!r}"
            )
        if grid is not None:
            rows, cols = grid
            if not (0 <= row < rows and 0 <= col < cols):
                raise ValueError(
                    f"--hotspots cell ({row:g},{col:g}) in {part!r} is"
                    f" outside the {rows}x{cols} grid"
                    f" (rows 0..{rows - 1}, cols 0..{cols - 1})"
                )
        hotspots.append(tuple(fields))
    return tuple(hotspots)


def _build_spatial_config(args: argparse.Namespace):
    rows, cols = _parse_hex(args.hex_grid)
    return hex_city(
        args.scheme,
        rows=rows,
        cols=cols,
        hotspots=_parse_hotspots(
            getattr(args, "hotspots", None), grid=(rows, cols)
        ),
        offered_load=args.load,
        voice_ratio=args.rvo,
        duration=args.duration,
        warmup=args.warmup,
        seed=args.seed,
        static_guard=args.guard,
        adaptive_qos=args.adaptive_qos,
        soft_handoff_window=args.soft_handoff,
        kernel=args.kernel,
        telemetry=_wants_telemetry(args),
        progress_interval=args.progress,
        **_series_overrides(args),
    )


def _command_run_spatial(args: argparse.Namespace) -> int:
    from repro.simulation.spatial import run_spatial

    if args.replications > 1:
        raise ValueError(
            "--shards partitions space; it cannot be combined with"
            " --replications (which partitions seeds)"
        )
    if args.save_state or args.load_state or args.checkpoint_every > 0.0:
        raise ValueError(
            "spatial runs checkpoint per day via"
            " 'repro campaign --shards'; drop the state flags"
        )
    if args.trace_jsonl:
        raise ValueError("--trace-jsonl is not supported with --shards")
    config = _build_spatial_config(args)
    result = run_spatial(
        config,
        args.shards,
        processes=False if args.inline_shards else None,
        epoch=args.epoch,
        plan_kind=args.shard_plan,
    )
    rate = (
        result.events_processed / result.wall_seconds
        if result.wall_seconds > 0
        else 0.0
    )
    print(f"scheme={result.scheme}  L={result.offered_load:g}"
          f"  duration={result.duration:g}s"
          f"  grid={args.hex_grid}  shards={args.shards}"
          f"  plan={args.shard_plan}")
    if result.shard_events and len(result.shard_events) > 1:
        mean = sum(result.shard_events) / len(result.shard_events)
        imbalance = max(result.shard_events) / mean if mean else 1.0
        print(
            "shard events = "
            + "/".join(f"{count:,}" for count in result.shard_events)
            + f"  (imbalance {imbalance:.3f})"
        )
    print(f"P_CB = {result.blocking_probability:.4f}")
    print(f"P_HD = {result.dropping_probability:.4f}")
    print(f"avg B_r = {result.average_reservation:.2f} BUs,"
          f" avg B_u = {result.average_used:.2f} BUs,"
          f" N_calc = {result.average_calculations:.2f}")
    print(f"{result.events_processed:,} events in"
          f" {result.wall_seconds:.2f}s ({rate:,.0f} events/s)")
    cap = 20
    rows = [
        [
            status.cell_id + 1,
            status.blocking_probability,
            status.dropping_probability,
            status.t_est,
            status.reserved_target,
            status.used_bandwidth,
        ]
        for status in result.statuses[:cap]
    ]
    print()
    print(Table(["Cell", "PCB", "PHD", "Test", "Br", "Bu"], rows).render())
    if len(result.statuses) > cap:
        print(f"... ({len(result.statuses) - cap} more cells)")
    _export_telemetry(result.telemetry, args)
    _export_streams(
        result.timeseries,
        result.trace_events,
        args,
        lane_names={
            index: f"shard {index}" for index in range(args.shards)
        },
    )
    return 0


def _command_run(args: argparse.Namespace) -> int:
    _configure_observability(args)
    if args.shards > 0:
        return _command_run_spatial(args)
    uses_state = bool(
        args.save_state or args.load_state or args.checkpoint_every > 0.0
    )
    if args.replications > 1:
        if uses_state:
            raise ValueError(
                "--save-state/--load-state/--checkpoint-every capture one"
                " engine's state; they cannot be combined with"
                " --replications"
            )
        return _command_run_replicated(args)
    if uses_state and args.trace_jsonl:
        raise ValueError(
            "checkpoints do not capture tracer extensions; drop"
            " --trace-jsonl or the state flags"
        )
    extensions = []
    tracer = None
    if args.trace_jsonl:
        tracer = ConnectionTracer()
        extensions.append(tracer)
    config = _build_config(args)
    if args.load_state:
        from repro.state import restore_simulator

        simulator = restore_simulator(args.load_state, config)
    else:
        simulator = CellularSimulator(config, extensions=extensions)
    if args.checkpoint_every > 0.0:
        from repro.state import Checkpointer

        simulator.checkpointer = Checkpointer(
            simulator,
            args.checkpoint_dir or "checkpoints",
            every=args.checkpoint_every,
            keep=args.checkpoint_keep,
        )
    result = simulator.run()
    if args.save_state:
        from repro.state import save_checkpoint

        saved = save_checkpoint(simulator, args.save_state)
        print(f"state saved: {saved}")
        if simulator.tracer.enabled:
            # Pick up the checkpoint.publish span recorded after the
            # result harvested its events.
            result.trace_events = simulator.tracer.events()
    if tracer is not None:
        tracer.write_jsonl(args.trace_jsonl)
        log = get_logger("trace")
        violations = tracer.verify()
        for violation in violations:
            log.warning(
                "trace violation", extra={"violation": violation}
            )
        log.info(
            "trace journal written",
            extra={
                "path": args.trace_jsonl,
                "events": len(tracer.events),
                "violations": len(violations),
            },
        )
    print(f"scheme={result.scheme}  L={result.offered_load:g}"
          f"  duration={result.duration:g}s")
    print(f"P_CB = {result.blocking_probability:.4f}")
    print(f"P_HD = {result.dropping_probability:.4f}")
    print(f"avg B_r = {result.average_reservation:.2f} BUs,"
          f" avg B_u = {result.average_used:.2f} BUs,"
          f" N_calc = {result.average_calculations:.2f}")
    rows = [
        [
            status.cell_id + 1,
            status.blocking_probability,
            status.dropping_probability,
            status.t_est,
            status.reserved_target,
            status.used_bandwidth,
        ]
        for status in result.statuses
    ]
    print()
    print(Table(["Cell", "PCB", "PHD", "Test", "Br", "Bu"], rows).render())
    _export_telemetry(result.telemetry, args)
    _export_streams(result.timeseries, result.trace_events, args)
    return 0


def _command_run_replicated(args: argparse.Namespace) -> int:
    if args.trace_jsonl:
        raise ValueError(
            "--trace-jsonl records a single run's journal; it cannot be"
            " combined with --replications"
        )
    from repro.simulation.replication import run_replicated

    config = _build_config(args)
    if config.warmup <= 0.0:
        # Each shard restarts from an empty network, so without a
        # warm-up cut every shard measures the initial transient.
        print(
            "warning: --replications without --warmup measures the"
            " cold-start transient K times; pass --warmup to let each"
            " shard reach steady state",
            file=sys.stderr,
        )
    replicated = run_replicated(
        config,
        replications=args.replications,
        workers=args.workers,
        ci_level=args.ci_level,
    )
    config = replicated.config
    level = args.ci_level
    print(
        f"scheme={config.scheme}  L={config.offered_load:g}"
        f"  duration={config.duration:g}s"
        f"  K={replicated.replications}"
    )
    print(
        f"P_CB = {replicated.blocking_probability:.4f}"
        f" ± {replicated.blocking_ci.half_width:.4f}"
        f"  (Wilson {replicated.blocking.low:.4f}.."
        f"{replicated.blocking.high:.4f})"
    )
    print(
        f"P_HD = {replicated.dropping_probability:.4f}"
        f" ± {replicated.dropping_ci.half_width:.4f}"
        f"  (Wilson {replicated.dropping.low:.4f}.."
        f"{replicated.dropping.high:.4f})"
    )
    print(
        f"{level:.0%} batch-means intervals over"
        f" {replicated.replications} shards;"
        f" {replicated.events_processed:,} events in"
        f" {replicated.wall_seconds:.2f}s wall"
    )
    _export_telemetry(replicated.telemetry, args)
    _export_streams(
        replicated.timeseries,
        replicated.trace_events,
        args,
        lane_names={
            index: f"rep {index}"
            for index in range(replicated.replications)
        },
    )
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    _configure_observability(args)
    loads = [float(piece) for piece in args.loads.split(",") if piece]
    configs = [_build_config(args, load=load) for load in loads]
    results = run_sweep(configs, workers=args.workers)
    pairs = list(zip(loads, results))
    rows = [
        [
            load,
            result.blocking_probability,
            result.dropping_probability,
            result.average_reservation,
            result.average_calculations,
        ]
        for load, result in pairs
    ]
    print(Table(["L", "PCB", "PHD", "avg Br", "Ncalc"], rows).render())
    # Each run (worker process or not) carries its own snapshot; the
    # merged view is what gets exported.
    _export_telemetry(
        merge_snapshots(result.telemetry for result in results), args
    )
    from repro.obs.timeseries import merge_series
    from repro.obs.trace import merge_traces

    _export_streams(
        merge_series(result.timeseries for result in results),
        merge_traces(
            [{**event, "pid": index} for event in result.trace_events]
            if result.trace_events
            else None
            for index, result in enumerate(results)
        ),
        args,
        lane_names={
            index: f"L={load:g}" for index, load in enumerate(loads)
        },
    )
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    kwargs = {}
    if args.duration is not None:
        kwargs["duration"] = args.duration
    outputs = run_experiment(args.name, **kwargs)
    for output in outputs:
        print(output.render())
        print()
    return 0


def _command_list(_args: argparse.Namespace) -> int:
    for name in sorted(EXPERIMENTS):
        print(name)
    return 0


def _command_campaign(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.state import run_campaign

    _configure_observability(args)
    if args.shards > 0:
        return _command_campaign_spatial(args)
    config = _build_config(args)
    if args.day_seconds is not None:
        config = replace(config, day_seconds=args.day_seconds)
    reports = run_campaign(
        config,
        days=args.days,
        state_dir=args.state_dir,
        jsonl_path=args.jsonl,
        carry_windows=not args.fresh_windows,
    )
    rows = [
        [
            report.day + 1,
            report.p_cb,
            report.p_hd,
            report.mean_t_est,
            report.quadruplets,
            report.handoff_drops,
        ]
        for report in reports
    ]
    print(
        Table(
            ["Day", "PCB", "PHD", "mean Test", "Nquad", "Drops"], rows
        ).render()
    )
    jsonl = args.jsonl or f"{args.state_dir}/campaign.jsonl"
    print(f"\nper-day report: {jsonl}")
    return 0


def _command_campaign_spatial(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.simulation.spatial import run_spatial_campaign

    config = _build_spatial_config(args)
    if args.day_seconds is not None:
        config = replace(config, duration=args.day_seconds)
    jsonl = args.jsonl or f"{args.state_dir}/campaign.jsonl"
    reports = run_spatial_campaign(
        config,
        args.shards,
        days=args.days,
        state_dir=args.state_dir,
        processes=False if args.inline_shards else None,
        epoch=args.epoch,
        jsonl_path=jsonl,
        plan_kind=args.shard_plan,
    )
    rows = [
        [
            report.day + 1,
            report.blocking_probability,
            report.dropping_probability,
            report.events,
            report.quadruplets,
            report.checkpoint,
        ]
        for report in reports
    ]
    print(
        Table(
            ["Day", "PCB", "PHD", "Events", "Nquad", "Checkpoint"], rows
        ).render()
    )
    print(f"\nper-day report: {jsonl}")
    return 0


def _command_dash(args: argparse.Namespace) -> int:
    from repro.obs.dash import run_dash

    return run_dash(
        args.path,
        refresh=args.refresh,
        follow=not args.once,
        timeout=args.timeout,
    )


def _command_serve(args: argparse.Namespace) -> int:
    import asyncio
    from dataclasses import replace

    from repro.serve import AdmissionService, WallClock
    from repro.serve.driver import warm_start
    from repro.serve.ws import WebSocketGateway

    _configure_observability(args)
    config = _build_config(args)
    if args.load_state:
        config = replace(config, warm_state=warm_start(args.load_state))
    overrides = _series_overrides(args)
    # A live service streams a wall-cadence series by default so an
    # attached dashboard always has rows to render.
    series_wall = overrides["series_wall_interval"] or 1.0

    async def serve() -> dict:
        service = AdmissionService(
            config,
            clock=WallClock(time_scale=args.time_scale),
            budget_ms=args.budget_ms,
            checkpoint_every=args.checkpoint_every,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_keep=args.checkpoint_keep,
            series_interval=overrides["series_interval"],
            series_wall_interval=series_wall,
        )
        await service.start()
        gateway = WebSocketGateway(service, host=args.host, port=args.port)
        await gateway.start()
        print(f"serving {config.scheme} admission control on {gateway.url}")
        print(f"  dashboard: repro dash {gateway.url}")
        if args.load_state:
            print(f"  warm-started from: {args.load_state}")
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        try:
            import signal

            loop.add_signal_handler(signal.SIGINT, stop.set)
            loop.add_signal_handler(signal.SIGTERM, stop.set)
        except (NotImplementedError, OSError):  # pragma: no cover
            pass
        try:
            if args.run_for is not None:
                await asyncio.wait_for(stop.wait(), timeout=args.run_for)
            else:
                await stop.wait()
        except asyncio.TimeoutError:
            pass
        await gateway.stop()
        await service.stop()
        stats = service.stats()
        result = service.driver.result()
        _export_telemetry(result.telemetry, args)
        _export_streams(result.timeseries, result.trace_events, args)
        return stats

    stats = asyncio.run(serve())
    print(
        f"served {stats['decisions']} decisions"
        f" ({stats['decisions_per_s']:,.0f}/s,"
        f" P50 {stats['p50_ms']:.2f} ms, P99 {stats['p99_ms']:.2f} ms),"
        f" {stats['checkpoints']} checkpoints"
    )
    return 0


def _command_serve_bench(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from repro.serve import AdmissionService
    from repro.serve.loadgen import run_load

    config = _build_config(args)

    async def bench():
        service = AdmissionService(
            config, budget_ms=args.budget_ms, series_wall_interval=0.0
        )
        await service.start()
        report = await run_load(
            service,
            decisions=args.decisions,
            concurrency=args.concurrency,
            pipeline=args.pipeline,
            seed=args.seed,
        )
        await service.stop()
        return report

    report = asyncio.run(bench())
    if args.json:
        print(json.dumps({"scheme": config.scheme, **report.to_json()}))
        return 0
    print(
        f"scheme={config.scheme}  decisions={report.decisions}"
        f"  concurrency={args.concurrency}  pipeline={args.pipeline}"
    )
    print(
        f"{report.decisions_per_s:,.0f} decisions/s"
        f"  (P50 {report.p50_ms:.2f} ms, P99 {report.p99_ms:.2f} ms)"
    )
    print(
        f"admitted {report.admitted_fraction:.1%}"
        f" ({report.admitted} of {report.admitted + report.rejected}"
        f" queries), {report.handoffs} hand-offs,"
        f" {report.completes} completes, {report.ignored} ignored"
    )
    return 0


def _command_state(args: argparse.Namespace) -> int:
    from repro.state import inspect_state

    if args.state_command == "inspect":
        return inspect_state(args.path)
    raise ValueError(f"unknown state command {args.state_command!r}")


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _command_run,
        "sweep": _command_sweep,
        "experiment": _command_experiment,
        "list-experiments": _command_list,
        "campaign": _command_campaign,
        "dash": _command_dash,
        "serve": _command_serve,
        "serve-bench": _command_serve_bench,
        "state": _command_state,
    }
    try:
        return handlers[args.command](args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
