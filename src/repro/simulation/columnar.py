"""Struct-of-arrays stores for connection/mobile hot state.

A city-scale run keeps ~10^5..10^6 concurrent connections alive.  The
object representation costs three allocations per connection (a
:class:`~repro.traffic.connection.Connection`, a
:class:`~repro.mobility.models.Mobile`, and the model's class-map dict
entry) — several hundred bytes each — and scatters the hot fields
(cell, entry time, lifetime end) across the heap.  The columnar stores
below keep the same state as parallel typed columns (numpy arrays when
available, stdlib ``array`` otherwise) indexed by a small integer row
id, with free-list recycling so long runs reuse rows instead of
growing.

The spatial simulator works on row ids directly: its cells are
:class:`ColumnarCell` instances whose :meth:`~ColumnarCell.attach_row`
/ :meth:`~ColumnarCell.detach_row` read the store columns in place, so
the DES hot loop allocates no per-event objects at all.  The only
remaining per-object shim is :func:`handle_class`, a two-word handle
exposing the attribute set :meth:`repro.cellular.cell.Cell.attach`
duck-types against (``connection_id``, ``bandwidth``,
``reservation_basis``, ``prev_cell``, ``cell_entry_time``, ...); it is
materialised ephemerally on the rare fallback paths that still iterate
connection objects (the pure-python Eq. 5 kernel, disabled reservation
caches).  The store itself is bound at the *class* level so each live
handle carries nothing but its row.

Rows are guarded by a monotone ``serial`` column: every allocation
stamps the row with a fresh serial, so stale references (e.g. a
shipped hand-off record whose connection has since ended) can detect
recycling with one integer compare.
"""

from __future__ import annotations

from typing import Any

try:  # pragma: no cover - exercised via whichever backend is installed
    import numpy as _np
except Exception:  # pragma: no cover
    _np = None

import array as _array

from repro.cellular.cell import CapacityError, Cell, ReservationGroup

#: column typecode -> (numpy dtype name, stdlib array typecode)
_CODES = {
    "f8": ("float64", "d"),
    "i4": ("int32", "l" if _array.array("l").itemsize == 4 else "i"),
    "i8": ("int64", "q"),
    "i1": ("int8", "b"),
}

#: Bandwidth demand table indexed by ``bw_code`` (bandwidth units).
#: Matches :data:`repro.traffic.classes.VOICE` / ``VIDEO``.
BANDWIDTH_TABLE = (1.0, 4.0)


def _new_column(code: str, capacity: int, scalar_hot: bool = False):
    dtype, typecode = _CODES[code]
    if _np is not None and not scalar_hot:
        return _np.zeros(capacity, dtype=dtype)
    return _array.array(typecode, bytes(_array.array(typecode).itemsize * capacity))


def _grow_column(column, code: str, capacity: int):
    if _np is not None and not isinstance(column, _array.array):
        grown = _np.zeros(capacity, dtype=column.dtype)
        grown[: len(column)] = column
        return grown
    dtype, typecode = _CODES[code]
    grown = _array.array(typecode, bytes(_array.array(typecode).itemsize * capacity))
    grown[: len(column)] = column
    return grown


class ColumnStore:
    """Base store: named typed columns with free-list row recycling.

    Subclasses declare ``COLUMNS`` as ``((name, code), ...)`` with codes
    from ``f8/i4/i8/i1``.  Every store additionally carries an ``i8``
    ``serial`` column written on :meth:`alloc`.
    """

    COLUMNS: tuple[tuple[str, str], ...] = ()

    #: When ``True``, columns use stdlib ``array`` backing even if numpy
    #: is installed.  The DES hot loop reads and writes *single elements*
    #: (row-at-a-time), where ``array.array`` indexing is ~1.4-1.6x
    #: faster than numpy's scalar boxing; vectorised consumers should
    #: leave this off.
    SCALAR_HOT = False

    __slots__ = ("columns", "serial", "capacity", "_free", "_next_row",
                 "_next_serial", "live")

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        scalar_hot = self.SCALAR_HOT
        self.columns: dict[str, Any] = {
            name: _new_column(code, capacity, scalar_hot)
            for name, code in self.COLUMNS
        }
        self.serial = _new_column("i8", capacity, scalar_hot)
        self._free: list[int] = []
        self._next_row = 0
        self._next_serial = 1
        self.live = 0

    def _grow(self, minimum: int) -> None:
        capacity = self.capacity
        while capacity < minimum:
            capacity *= 2
        for name, code in self.COLUMNS:
            self.columns[name] = _grow_column(self.columns[name], code, capacity)
        self.serial = _grow_column(self.serial, "i8", capacity)
        self.capacity = capacity

    def alloc(self) -> int:
        """Return a fresh row id (recycled when possible) with a new serial."""
        free = self._free
        if free:
            row = free.pop()
        else:
            row = self._next_row
            if row >= self.capacity:
                self._grow(row + 1)
            self._next_row = row + 1
        self.serial[row] = self._next_serial
        self._next_serial += 1
        self.live += 1
        return row

    def free(self, row: int) -> None:
        """Release ``row`` back to the free list (serial stays burned)."""
        self.serial[row] = 0
        self._free.append(row)
        self.live -= 1

    def serial_of(self, row: int) -> int:
        """Current serial of ``row`` (0 while the row sits on the free list)."""
        return int(self.serial[row])

    @property
    def nbytes(self) -> int:
        """Bytes held by the column buffers (excludes Python object shells)."""
        total = 0
        for column in self.columns.values():
            total += getattr(column, "nbytes", None) or (
                column.itemsize * len(column)
            )
        total += getattr(self.serial, "nbytes", None) or (
            self.serial.itemsize * len(self.serial)
        )
        return total


class ConnectionStore(ColumnStore):
    """Hot state of one connection + its mobile, one row per connection.

    Columns (≈49 bytes/row including the serial guard, versus several
    hundred bytes for the ``Connection``/``Mobile`` object pair):

    ``entry_time`` (f8)
        Time the connection entered its current cell.
    ``end_time`` (f8)
        Absolute lifetime expiry (scheduled as a DEPARTURE event).
    ``cell`` (i4) / ``prev`` (i4)
        Current cell and hand-off predecessor (−1 = born here).
    ``birth_cell`` (i4) / ``birth_seq`` (i4)
        Birth coordinates: the arrival cell and that cell's arrival
        index.  Together they give the deterministic, shard-independent
        ``connection_id = birth_seq * num_cells + birth_cell`` and key
        the per-transition random streams.
    ``hops`` (i4)
        Hand-offs completed so far (keys the next transition draw).
    ``bw_code`` (i1)
        Index into :data:`BANDWIDTH_TABLE` (0 = voice, 1 = video).
    ``pop`` (i1) / ``heading`` (i1)
        Mobility population-class index and current hex heading.
    """

    COLUMNS = (
        ("entry_time", "f8"),
        ("end_time", "f8"),
        ("cell", "i4"),
        ("prev", "i4"),
        ("birth_cell", "i4"),
        ("birth_seq", "i4"),
        ("hops", "i4"),
        ("bw_code", "i1"),
        ("pop", "i1"),
        ("heading", "i1"),
    )

    #: Every consumer is row-at-a-time (admission, crossings, hand-off
    #: migration); nothing slices these columns, so scalar-fast backing
    #: wins even with numpy installed.
    SCALAR_HOT = True

    __slots__ = ("num_cells",)

    def __init__(self, num_cells: int, capacity: int = 256) -> None:
        super().__init__(capacity)
        if num_cells < 1:
            raise ValueError("num_cells must be >= 1")
        self.num_cells = num_cells

    def connection_id(self, row: int) -> int:
        """Deterministic global id: ``birth_seq * num_cells + birth_cell``."""
        return (
            int(self.columns["birth_seq"][row]) * self.num_cells
            + int(self.columns["birth_cell"][row])
        )

    def bandwidth(self, row: int) -> float:
        return BANDWIDTH_TABLE[self.columns["bw_code"][row]]


class _ConnectionHandle:
    """Two-word view of one :class:`ConnectionStore` row.

    Exposes exactly the duck-typed attribute set the admission layer
    reads (:meth:`Cell.attach` / :meth:`Cell.detach` / the policies).
    The store is a *class* attribute — see :func:`handle_class` — so a
    handle costs one slot beyond the object header.
    """

    store: ConnectionStore  # bound by handle_class()

    __slots__ = ("row",)

    def __init__(self, row: int) -> None:
        self.row = row

    @property
    def connection_id(self) -> int:
        return self.store.connection_id(self.row)

    @property
    def bandwidth(self) -> float:
        return BANDWIDTH_TABLE[self.store.columns["bw_code"][self.row]]

    #: Adaptive QoS is gated out of spatial runs, so the allocated,
    #: full, and minimum demands coincide — as do reservation bases.
    full_bandwidth = bandwidth
    min_bandwidth = bandwidth
    reservation_basis = bandwidth

    @property
    def prev_cell(self) -> int | None:
        prev = int(self.store.columns["prev"][self.row])
        return None if prev < 0 else prev

    @property
    def cell_entry_time(self) -> float:
        return float(self.store.columns["entry_time"][self.row])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ConnectionHandle row={self.row} id={self.connection_id}>"


def handle_class(store: ConnectionStore) -> type:
    """Build a handle class bound to ``store`` at the class level."""
    return type("ConnectionHandle", (_ConnectionHandle,), {
        "__slots__": (),
        "store": store,
    })


class ColumnarCell(Cell):
    """A :class:`~repro.cellular.cell.Cell` backed by store rows.

    The classic attach path costs one handle object per connection plus
    a property call per field read; at city scale that object churn is
    a leading hot-loop term.  A columnar cell keeps the same accounting
    (``used_bandwidth``, ``version``, the per-``prev``
    :class:`~repro.cellular.cell.ReservationGroup` buckets the Eq. 5
    kernels batch over) but reads every field straight out of the
    :class:`ConnectionStore` columns, so admission, reservation flush,
    and hand-off migration touch no per-connection Python objects.

    Attach order is tracked by the same cell-wide sequence counter as
    the base class, so ``argsort`` over the bucket ``seqs`` still
    reproduces connection-iteration order — the grouped
    ``FlushBatch`` plan is unchanged.  :meth:`connections` materialises
    ephemeral handles for the object-iterating fallback paths only.
    """

    def __init__(
        self,
        cell_id: int,
        capacity: float,
        store: ConnectionStore,
        handoff_overload: float = 1.0,
        handle_cls: type | None = None,
    ) -> None:
        super().__init__(cell_id, capacity, handoff_overload)
        self.store = store
        #: ``connection_id -> row`` in attach order (dict preserves it).
        self._rows: dict[int, int] = {}
        self._handle_cls = handle_cls

    @property
    def connection_count(self) -> int:
        return len(self._rows)

    def connections(self):
        """Ephemeral handle views, in attach order (fallback paths only)."""
        cls = self._handle_cls
        if cls is None:
            cls = self._handle_cls = handle_class(self.store)
        return [cls(row) for row in self._rows.values()]

    def attach_row(self, row: int) -> None:
        """Account a store row into this cell (admission already decided)."""
        store = self.store
        columns = store.columns
        # ``SCALAR_HOT`` columns hand back native ints/floats, so no
        # per-field conversions are needed on this path.
        key = (
            columns["birth_seq"][row] * store.num_cells
            + columns["birth_cell"][row]
        )
        rows = self._rows
        if key in rows:
            raise CapacityError(
                f"connection {key} already in cell {self.cell_id}"
            )
        bandwidth = BANDWIDTH_TABLE[columns["bw_code"][row]]
        if self.used_bandwidth + bandwidth > self.handoff_capacity + 1e-9:
            raise CapacityError(
                f"cell {self.cell_id}: attaching {bandwidth} BU"
                f" exceeds capacity ({self.used_bandwidth}/"
                f"{self.handoff_capacity})"
            )
        rows[key] = row
        self.used_bandwidth += bandwidth
        prev = columns["prev"][row]
        group = self._by_prev.get(prev_key := (None if prev < 0 else prev))
        if group is None:
            group = self._by_prev[prev_key] = ReservationGroup()
        group.add(
            key, columns["entry_time"][row], bandwidth,
            self._attach_seq,
        )
        self._attach_seq += 1
        self.version += 1

    def detach_row(self, row: int) -> None:
        """Release a store row's bandwidth.

        Must run while the row's ``prev`` / ``entry_time`` columns still
        hold their attach-time values (i.e. before a hand-off rewrites
        them for the next cell).
        """
        store = self.store
        columns = store.columns
        key = (
            columns["birth_seq"][row] * store.num_cells
            + columns["birth_cell"][row]
        )
        if self._rows.pop(key, None) is None:
            raise CapacityError(
                f"connection {key} not in cell {self.cell_id}"
            )
        prev = columns["prev"][row]
        prev_key = None if prev < 0 else prev
        group = self._by_prev.get(prev_key)
        if group is None or not group.remove(
            key, columns["entry_time"][row]
        ):
            raise CapacityError(
                f"connection {key} missing from the prev={prev_key} bucket"
                f" of cell {self.cell_id}"
            )
        if not group:
            self._retired_rebuilds += group.rebuilds
            del self._by_prev[prev_key]
        self.version += 1
        self.used_bandwidth -= BANDWIDTH_TABLE[columns["bw_code"][row]]
        if self.used_bandwidth < -1e-9:
            raise CapacityError(
                f"cell {self.cell_id}: used bandwidth went negative"
            )
        if self.used_bandwidth < 0:
            self.used_bandwidth = 0.0

    def attach(self, connection) -> None:  # pragma: no cover - misuse guard
        raise TypeError(
            "ColumnarCell tracks store rows; use attach_row(row)"
        )

    def detach(self, connection) -> None:  # pragma: no cover - misuse guard
        raise TypeError(
            "ColumnarCell tracks store rows; use detach_row(row)"
        )
