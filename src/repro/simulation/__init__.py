"""Simulation harness (S8): config, simulator, metrics, scenarios."""

from repro.simulation.config import SimulationConfig
from repro.simulation.extensions import ExtensionChain, SimulatorExtension
from repro.simulation.metrics import (
    CellCounters,
    CellStatus,
    HourlyBucket,
    MetricsCollector,
    SimulationResult,
    TracePoint,
)
from repro.simulation.runner import (
    DEFAULT_LOAD_AXIS,
    run_sweep,
    sweep_offered_load,
)
from repro.simulation.scenarios import (
    TWO_DAYS,
    hex_city,
    one_directional,
    stationary,
    time_varying,
)
from repro.simulation.simulator import CellularSimulator, simulate
from repro.simulation.spatial import (
    ShardPlan,
    partition_hex,
    run_spatial,
    run_spatial_campaign,
)
from repro.simulation.tracing import ConnectionTracer, TraceEvent

__all__ = [
    "CellCounters",
    "CellStatus",
    "CellularSimulator",
    "ConnectionTracer",
    "DEFAULT_LOAD_AXIS",
    "ExtensionChain",
    "SimulatorExtension",
    "TraceEvent",
    "HourlyBucket",
    "MetricsCollector",
    "ShardPlan",
    "SimulationConfig",
    "SimulationResult",
    "TWO_DAYS",
    "TracePoint",
    "hex_city",
    "one_directional",
    "partition_hex",
    "run_spatial",
    "run_spatial_campaign",
    "run_sweep",
    "simulate",
    "stationary",
    "sweep_offered_load",
    "time_varying",
]
