"""Metrics collection: the quantities every figure and table reports.

Counters honour a warm-up boundary: events before ``warmup`` are not
counted (the scheme still learns from them).  Time traces (Figures 10,
11) intentionally start at t = 0 like the paper's plots do.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field


@dataclass
class CellCounters:
    """Post-warm-up event counts for one cell."""

    new_requests: int = 0
    blocked: int = 0
    handoff_attempts: int = 0
    handoff_drops: int = 0
    completed: int = 0
    exited: int = 0

    @property
    def blocking_probability(self) -> float:
        """``P_CB`` (0 when no requests were seen)."""
        if self.new_requests == 0:
            return 0.0
        return self.blocked / self.new_requests

    @property
    def dropping_probability(self) -> float:
        """``P_HD`` (0 when no hand-offs were seen)."""
        if self.handoff_attempts == 0:
            return 0.0
        return self.handoff_drops / self.handoff_attempts


@dataclass
class CellStatus:
    """End-of-run snapshot of one cell — a row of Tables 2/3."""

    cell_id: int
    blocking_probability: float
    dropping_probability: float
    t_est: float
    reserved_target: float
    used_bandwidth: float


@dataclass
class HourlyBucket:
    """Aggregate counts for one hour of virtual time (Figure 14b)."""

    hour: int
    new_requests: int = 0
    blocked: int = 0
    handoff_attempts: int = 0
    handoff_drops: int = 0

    @property
    def blocking_probability(self) -> float:
        if self.new_requests == 0:
            return 0.0
        return self.blocked / self.new_requests

    @property
    def dropping_probability(self) -> float:
        if self.handoff_attempts == 0:
            return 0.0
        return self.handoff_drops / self.handoff_attempts


@dataclass
class TracePoint:
    """One sampled point of a per-cell time trace."""

    time: float
    value: float


@dataclass
class SimulationResult:
    """Everything a run produced, ready for report rendering."""

    label: str
    scheme: str
    offered_load: float
    duration: float
    warmup: float
    num_cells: int
    cells: list[CellCounters]
    statuses: list[CellStatus]
    #: Average of sampled per-cell ``B_r`` values (post warm-up).
    average_reservation: float
    #: Average of sampled per-cell used bandwidth (post warm-up).
    average_used: float
    #: ``N_calc``: mean Eq. 6 computations per admission test.
    average_calculations: float
    #: Mean logical inter-BS messages per admission test.
    average_messages: float
    total_admission_tests: int
    hourly: list[HourlyBucket] = field(default_factory=list)
    t_est_traces: dict[int, list[TracePoint]] = field(default_factory=dict)
    reservation_traces: dict[int, list[TracePoint]] = field(
        default_factory=dict
    )
    phd_traces: dict[int, list[TracePoint]] = field(default_factory=dict)
    events_processed: int = 0
    wall_seconds: float = 0.0
    #: Identifier stamped into logs/telemetry for this run.
    run_id: str = ""
    #: Telemetry snapshot (:meth:`repro.obs.Telemetry.snapshot`), or
    #: ``None`` when telemetry was disabled.
    telemetry: dict | None = None
    #: In-run time-series samples (:mod:`repro.obs.timeseries`), or
    #: ``None`` when sampling was disabled.  Merged across replication
    #: workers and spatial shards.
    timeseries: list | None = None
    #: Chrome trace events (:mod:`repro.obs.trace`), or ``None`` when
    #: tracing was disabled.  Merged across workers and shards.
    trace_events: list | None = None
    #: Semantic events executed per spatial shard (index = shard id),
    #: or ``None`` outside spatial runs.  Balance observability only:
    #: the split depends on the shard plan, so it is excluded from
    #: :meth:`metrics_key` (the *merged* metrics stay plan-invariant).
    shard_events: tuple | None = None

    def metrics_key(self) -> dict:
        """Every simulation-determined field, as plain data.

        Excludes ``wall_seconds`` (host speed, not simulation output)
        plus ``run_id``, ``telemetry``, ``timeseries``,
        ``trace_events`` and ``shard_events`` (random ids, wall-clock
        timers, samples, and the plan-dependent per-shard event split),
        so two runs of the same scenario — cached vs uncached, parallel
        vs sequential, observed vs unobserved, any shard plan — compare
        equal iff their metrics are identical.
        """
        data = asdict(self)
        data.pop("wall_seconds", None)
        data.pop("run_id", None)
        data.pop("telemetry", None)
        data.pop("timeseries", None)
        data.pop("trace_events", None)
        data.pop("shard_events", None)
        return data

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------
    @property
    def blocking_probability(self) -> float:
        """Network-wide ``P_CB``."""
        requests = sum(cell.new_requests for cell in self.cells)
        if requests == 0:
            return 0.0
        return sum(cell.blocked for cell in self.cells) / requests

    @property
    def dropping_probability(self) -> float:
        """Network-wide ``P_HD``."""
        attempts = sum(cell.handoff_attempts for cell in self.cells)
        if attempts == 0:
            return 0.0
        return sum(cell.handoff_drops for cell in self.cells) / attempts

    @property
    def total_handoff_attempts(self) -> int:
        return sum(cell.handoff_attempts for cell in self.cells)

    @property
    def total_new_requests(self) -> int:
        return sum(cell.new_requests for cell in self.cells)

    def actual_offered_load(
        self, mean_bandwidth: float, mean_lifetime: float = 120.0
    ) -> float:
        """``L_a``: offered load implied by the observed request rate."""
        window = self.duration - self.warmup
        if window <= 0:
            return 0.0
        rate = self.total_new_requests / window / self.num_cells
        return rate * mean_bandwidth * mean_lifetime


class MetricsCollector:
    """Accumulates counters and traces during a run."""

    def __init__(
        self,
        num_cells: int,
        warmup: float = 0.0,
        tracked_cells: tuple[int, ...] = (),
        hourly: bool = False,
        hour_seconds: float = 3600.0,
    ) -> None:
        self.num_cells = num_cells
        self.warmup = warmup
        self.tracked = set(tracked_cells)
        self.hourly_enabled = hourly
        self.hour_seconds = hour_seconds
        self.cells = [CellCounters() for _ in range(num_cells)]
        self.hourly: dict[int, HourlyBucket] = {}
        self.total_admission_tests = 0
        self.total_calculations = 0
        self.total_messages = 0
        self.t_est_traces: dict[int, list[TracePoint]] = {
            cell: [] for cell in self.tracked
        }
        self.reservation_traces: dict[int, list[TracePoint]] = {
            cell: [] for cell in self.tracked
        }
        self.phd_traces: dict[int, list[TracePoint]] = {
            cell: [] for cell in self.tracked
        }
        # Lifetime (from t=0) hand-off counts for the P_HD traces.
        self._trace_attempts = {cell: 0 for cell in self.tracked}
        self._trace_drops = {cell: 0 for cell in self.tracked}
        self._reservation_sum = 0.0
        self._used_sum = 0.0
        self._samples = 0

    # ------------------------------------------------------------------
    # event hooks
    # ------------------------------------------------------------------
    def _bucket(self, now: float) -> HourlyBucket | None:
        if not self.hourly_enabled:
            return None
        hour = int(now // self.hour_seconds)
        bucket = self.hourly.get(hour)
        if bucket is None:
            bucket = HourlyBucket(hour)
            self.hourly[hour] = bucket
        return bucket

    def record_request(self, cell_id: int, now: float, blocked: bool) -> None:
        bucket = self._bucket(now)
        if bucket is not None:
            bucket.new_requests += 1
            if blocked:
                bucket.blocked += 1
        if now < self.warmup:
            return
        counters = self.cells[cell_id]
        counters.new_requests += 1
        if blocked:
            counters.blocked += 1

    def record_admission_test(self, calculations: int, messages: int) -> None:
        self.total_admission_tests += 1
        self.total_calculations += calculations
        self.total_messages += messages

    def record_handoff(self, cell_id: int, now: float, dropped: bool) -> None:
        bucket = self._bucket(now)
        if bucket is not None:
            bucket.handoff_attempts += 1
            if dropped:
                bucket.handoff_drops += 1
        if cell_id in self.tracked:
            self._trace_attempts[cell_id] += 1
            if dropped:
                self._trace_drops[cell_id] += 1
            ratio = (
                self._trace_drops[cell_id] / self._trace_attempts[cell_id]
            )
            self.phd_traces[cell_id].append(TracePoint(now, ratio))
        if now < self.warmup:
            return
        counters = self.cells[cell_id]
        counters.handoff_attempts += 1
        if dropped:
            counters.handoff_drops += 1

    def record_completion(self, cell_id: int, now: float) -> None:
        if now >= self.warmup:
            self.cells[cell_id].completed += 1

    def record_exit(self, cell_id: int, now: float) -> None:
        if now >= self.warmup:
            self.cells[cell_id].exited += 1

    # ------------------------------------------------------------------
    # periodic sampling
    # ------------------------------------------------------------------
    def sample_cell(
        self,
        cell_id: int,
        now: float,
        reservation: float,
        used: float,
        t_est: float,
    ) -> None:
        if cell_id in self.tracked:
            self.t_est_traces[cell_id].append(TracePoint(now, t_est))
            self.reservation_traces[cell_id].append(
                TracePoint(now, reservation)
            )
        if now >= self.warmup:
            self._reservation_sum += reservation
            self._used_sum += used
            self._samples += 1

    # ------------------------------------------------------------------
    # finalisation
    # ------------------------------------------------------------------
    def average_reservation(self) -> float:
        return self._reservation_sum / self._samples if self._samples else 0.0

    def average_used(self) -> float:
        return self._used_sum / self._samples if self._samples else 0.0

    def average_calculations(self) -> float:
        if self.total_admission_tests == 0:
            return 0.0
        return self.total_calculations / self.total_admission_tests

    def average_messages(self) -> float:
        if self.total_admission_tests == 0:
            return 0.0
        return self.total_messages / self.total_admission_tests

    def hourly_buckets(self) -> list[HourlyBucket]:
        return [self.hourly[hour] for hour in sorted(self.hourly)]
