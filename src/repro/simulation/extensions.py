"""Simulator extension hooks.

A connection's life also touches systems outside the wireless cell —
the wired backbone (paper §2/§7), tracing, custom accounting.  Rather
than grow the simulator for each, extensions implement any subset of
:class:`SimulatorExtension`'s hooks and are passed to
:class:`~repro.simulation.simulator.CellularSimulator`.

Veto semantics: ``admit_new`` / ``admit_handoff`` run *after* the
wireless admission decision and may turn an accept into a reject (e.g.
no wired bandwidth along the new route).  They are never consulted for
already-rejected requests.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover
    from repro.cellular.network import CellularNetwork
    from repro.traffic.connection import Connection


@runtime_checkable
class SimulatorExtension(Protocol):
    """All hooks are optional; implement the ones you need."""

    def install(self, network: "CellularNetwork") -> None: ...

    def admit_new(
        self, connection: "Connection", cell_id: int, now: float
    ) -> bool: ...

    def on_admitted(self, connection: "Connection", now: float) -> None: ...

    def admit_handoff(
        self,
        connection: "Connection",
        old_cell: int,
        new_cell: int,
        now: float,
    ) -> bool: ...

    def on_handoff(
        self,
        connection: "Connection",
        old_cell: int,
        new_cell: int,
        now: float,
    ) -> None: ...

    def on_connection_end(
        self, connection: "Connection", now: float
    ) -> None: ...


class ExtensionChain:
    """Dispatches each hook across an ordered set of extensions."""

    def __init__(self, extensions=()):
        self.extensions = list(extensions)

    def __bool__(self) -> bool:
        return bool(self.extensions)

    def install(self, network) -> None:
        for extension in self.extensions:
            hook = getattr(extension, "install", None)
            if hook is not None:
                hook(network)

    def admit_new(self, connection, cell_id, now) -> bool:
        for extension in self.extensions:
            hook = getattr(extension, "admit_new", None)
            if hook is not None and not hook(connection, cell_id, now):
                return False
        return True

    def on_admitted(self, connection, now) -> None:
        for extension in self.extensions:
            hook = getattr(extension, "on_admitted", None)
            if hook is not None:
                hook(connection, now)

    def admit_handoff(self, connection, old_cell, new_cell, now) -> bool:
        for extension in self.extensions:
            hook = getattr(extension, "admit_handoff", None)
            if hook is not None and not hook(
                connection, old_cell, new_cell, now
            ):
                return False
        return True

    def on_handoff(self, connection, old_cell, new_cell, now) -> None:
        for extension in self.extensions:
            hook = getattr(extension, "on_handoff", None)
            if hook is not None:
                hook(connection, old_cell, new_cell, now)

    def on_connection_end(self, connection, now) -> None:
        for extension in self.extensions:
            hook = getattr(extension, "on_connection_end", None)
            if hook is not None:
                hook(connection, now)
