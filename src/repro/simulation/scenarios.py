"""Canned scenario builders for the paper's evaluation settings (§5)."""

from __future__ import annotations

from dataclasses import replace

from repro.mobility.models import TravelDirections
from repro.mobility.speed import HIGH_MOBILITY, LOW_MOBILITY
from repro.simulation.config import SimulationConfig
from repro.traffic.profiles import paper_load_profile, paper_speed_profile

#: Hours in two simulated days (the §5.3 run length).
TWO_DAYS = 2 * 86_400.0


def stationary(
    scheme: str,
    offered_load: float,
    voice_ratio: float = 1.0,
    high_mobility: bool = True,
    duration: float = 2000.0,
    warmup: float = 0.0,
    seed: int = 1,
    **overrides: object,
) -> SimulationConfig:
    """A §5.2 stationary run: fixed load and speed range, ring of 10.

    ``T_int`` is infinite (the paper uses ``T_int = inf`` when traffic
    does not vary within a run).
    """
    speed_range = HIGH_MOBILITY if high_mobility else LOW_MOBILITY
    config = SimulationConfig(
        scheme=scheme,
        offered_load=offered_load,
        voice_ratio=voice_ratio,
        speed_range=speed_range,
        t_int=None,
        duration=duration,
        warmup=warmup,
        seed=seed,
        label=(
            f"{scheme} L={offered_load:g} Rvo={voice_ratio:g} "
            f"{'high' if high_mobility else 'low'}-mobility"
        ),
    )
    return replace(config, **overrides) if overrides else config


def one_directional(
    scheme: str,
    offered_load: float = 300.0,
    voice_ratio: float = 1.0,
    duration: float = 2000.0,
    seed: int = 1,
    **overrides: object,
) -> SimulationConfig:
    """The Table 3 scenario: one-way flow on an *open* road.

    All mobiles drive from cell 0 toward cell ``n-1``; the border cells
    are disconnected, so cell 0 sees no incoming hand-offs and mobiles
    leaving the last cell exit the system.
    """
    config = SimulationConfig(
        scheme=scheme,
        offered_load=offered_load,
        voice_ratio=voice_ratio,
        speed_range=HIGH_MOBILITY,
        directions=TravelDirections.ONE_WAY,
        ring=False,
        duration=duration,
        seed=seed,
        label=f"{scheme} one-way L={offered_load:g}",
    )
    return replace(config, **overrides) if overrides else config


def time_varying(
    scheme: str,
    peak_load: float = 180.0,
    base_load: float = 20.0,
    days: float = 2.0,
    time_compression: float = 1.0,
    seed: int = 1,
    **overrides: object,
) -> SimulationConfig:
    """The §5.3 two-day scenario: rush-hour load/speed cycles + retries.

    ``T_int`` is one hour and yesterday's observations still count
    (``N_win-days = 1``, ``w_0 = w_1 = 1``), exactly the paper's
    parameters.

    Parameters
    ----------
    time_compression:
        Play a full "day" in ``86400 / time_compression`` simulated
        seconds.  The profile shapes, estimator period, ``T_int`` and
        hourly buckets are all scaled consistently, so the result keeps
        the paper's structure at a fraction of the compute (mobiles and
        connection lifetimes are *not* scaled — compression > ~8 makes
        peaks shorter than connection lifetimes and distorts shapes).
    """
    if time_compression < 1.0:
        raise ValueError("time_compression must be >= 1")
    day_seconds = 86_400.0 / time_compression
    config = SimulationConfig(
        scheme=scheme,
        load_profile=paper_load_profile(
            peak=peak_load, base=base_load, day_seconds=day_seconds
        ),
        speed_profile=paper_speed_profile(day_seconds=day_seconds),
        retry_enabled=True,
        t_int=day_seconds / 24.0,
        weights=(1.0, 1.0),
        day_seconds=day_seconds,
        duration=days * day_seconds,
        hourly_stats=True,
        sample_interval=60.0 / time_compression,
        seed=seed,
        label=f"{scheme} time-varying",
    )
    return replace(config, **overrides) if overrides else config


def _hex_distance(row_a: int, col_a: int, row_b: int, col_b: int) -> int:
    """Hex-grid distance between two odd-row offset coordinates."""
    x_a = col_a - (row_a - (row_a & 1)) // 2
    x_b = col_b - (row_b - (row_b & 1)) // 2
    dx = x_a - x_b
    dz = row_a - row_b
    return (abs(dx) + abs(dx + dz) + abs(dz)) // 2


def hotspot_weights(
    rows: int,
    cols: int,
    hotspots: tuple[tuple[float, ...], ...],
) -> tuple[float, ...]:
    """Per-cell load weights for a city with traffic hot spots.

    Each hot spot is ``(row, col, gain)`` or ``(row, col, gain, radius)``
    (default radius 2 cells): cells gain ``gain * exp(-d / radius)``
    extra weight with ``d`` the hex distance to the spot.  The result is
    normalised to mean 1.0, so the *network-wide* offered load of the
    scenario is unchanged — only its spatial distribution shifts.  This
    is the knob that makes load-balanced shard plans
    (``partition_hex(kind="load")``) differ from plain row counting.
    """
    from math import exp

    weights = []
    for row in range(rows):
        for col in range(cols):
            weight = 1.0
            for spot in hotspots:
                s_row, s_col, gain = int(spot[0]), int(spot[1]), float(spot[2])
                radius = float(spot[3]) if len(spot) > 3 else 2.0
                if radius <= 0:
                    raise ValueError("hotspot radius must be positive")
                distance = _hex_distance(row, col, s_row, s_col)
                weight += gain * exp(-distance / radius)
            weights.append(weight)
    mean = sum(weights) / len(weights)
    return tuple(weight / mean for weight in weights)


def hex_city(
    scheme: str,
    rows: int = 12,
    cols: int = 12,
    wrap: bool = True,
    offered_load: float = 100.0,
    voice_ratio: float = 1.0,
    duration: float = 600.0,
    warmup: float = 0.0,
    seed: int = 1,
    hotspots: tuple[tuple[float, ...], ...] = (),
    cell_weights: tuple[float, ...] | None = None,
    **overrides: object,
) -> SimulationConfig:
    """A 2-D hex-city scenario for the spatial sharding runner.

    The grid dimensions ride in ``config.extra`` (the config dataclass
    stays topology-agnostic); :func:`repro.simulation.spatial.run_spatial`
    reads them back.  ``T_int`` is infinite like the stationary runs —
    spatial mode refreshes ``B_r`` at epoch barriers instead of ticks.

    ``hotspots`` (``(row, col, gain[, radius])`` tuples, see
    :func:`hotspot_weights`) or an explicit per-cell ``cell_weights``
    vector make the offered load spatially non-uniform; the weights
    ride in ``config.extra["cell_weights"]`` and scale each cell's
    arrival rate (mean-1.0 normalised hot spots keep the network-wide
    load equal to ``offered_load``).
    """
    extra: dict = {"hex_rows": rows, "hex_cols": cols, "hex_wrap": wrap}
    if hotspots and cell_weights is not None:
        raise ValueError("pass hotspots or cell_weights, not both")
    if hotspots:
        cell_weights = hotspot_weights(rows, cols, hotspots)
    if cell_weights is not None:
        if len(cell_weights) != rows * cols:
            raise ValueError(
                f"cell_weights needs {rows * cols} entries,"
                f" got {len(cell_weights)}"
            )
        extra["cell_weights"] = tuple(float(w) for w in cell_weights)
    config = SimulationConfig(
        scheme=scheme,
        offered_load=offered_load,
        voice_ratio=voice_ratio,
        num_cells=rows * cols,
        t_int=None,
        duration=duration,
        warmup=warmup,
        seed=seed,
        label=f"{scheme} hex {rows}x{cols} L={offered_load:g}",
        extra=extra,
    )
    return replace(config, **overrides) if overrides else config
