"""Canned scenario builders for the paper's evaluation settings (§5)."""

from __future__ import annotations

from dataclasses import replace

from repro.mobility.models import TravelDirections
from repro.mobility.speed import HIGH_MOBILITY, LOW_MOBILITY
from repro.simulation.config import SimulationConfig
from repro.traffic.profiles import paper_load_profile, paper_speed_profile

#: Hours in two simulated days (the §5.3 run length).
TWO_DAYS = 2 * 86_400.0


def stationary(
    scheme: str,
    offered_load: float,
    voice_ratio: float = 1.0,
    high_mobility: bool = True,
    duration: float = 2000.0,
    warmup: float = 0.0,
    seed: int = 1,
    **overrides: object,
) -> SimulationConfig:
    """A §5.2 stationary run: fixed load and speed range, ring of 10.

    ``T_int`` is infinite (the paper uses ``T_int = inf`` when traffic
    does not vary within a run).
    """
    speed_range = HIGH_MOBILITY if high_mobility else LOW_MOBILITY
    config = SimulationConfig(
        scheme=scheme,
        offered_load=offered_load,
        voice_ratio=voice_ratio,
        speed_range=speed_range,
        t_int=None,
        duration=duration,
        warmup=warmup,
        seed=seed,
        label=(
            f"{scheme} L={offered_load:g} Rvo={voice_ratio:g} "
            f"{'high' if high_mobility else 'low'}-mobility"
        ),
    )
    return replace(config, **overrides) if overrides else config


def one_directional(
    scheme: str,
    offered_load: float = 300.0,
    voice_ratio: float = 1.0,
    duration: float = 2000.0,
    seed: int = 1,
    **overrides: object,
) -> SimulationConfig:
    """The Table 3 scenario: one-way flow on an *open* road.

    All mobiles drive from cell 0 toward cell ``n-1``; the border cells
    are disconnected, so cell 0 sees no incoming hand-offs and mobiles
    leaving the last cell exit the system.
    """
    config = SimulationConfig(
        scheme=scheme,
        offered_load=offered_load,
        voice_ratio=voice_ratio,
        speed_range=HIGH_MOBILITY,
        directions=TravelDirections.ONE_WAY,
        ring=False,
        duration=duration,
        seed=seed,
        label=f"{scheme} one-way L={offered_load:g}",
    )
    return replace(config, **overrides) if overrides else config


def time_varying(
    scheme: str,
    peak_load: float = 180.0,
    base_load: float = 20.0,
    days: float = 2.0,
    time_compression: float = 1.0,
    seed: int = 1,
    **overrides: object,
) -> SimulationConfig:
    """The §5.3 two-day scenario: rush-hour load/speed cycles + retries.

    ``T_int`` is one hour and yesterday's observations still count
    (``N_win-days = 1``, ``w_0 = w_1 = 1``), exactly the paper's
    parameters.

    Parameters
    ----------
    time_compression:
        Play a full "day" in ``86400 / time_compression`` simulated
        seconds.  The profile shapes, estimator period, ``T_int`` and
        hourly buckets are all scaled consistently, so the result keeps
        the paper's structure at a fraction of the compute (mobiles and
        connection lifetimes are *not* scaled — compression > ~8 makes
        peaks shorter than connection lifetimes and distorts shapes).
    """
    if time_compression < 1.0:
        raise ValueError("time_compression must be >= 1")
    day_seconds = 86_400.0 / time_compression
    config = SimulationConfig(
        scheme=scheme,
        load_profile=paper_load_profile(
            peak=peak_load, base=base_load, day_seconds=day_seconds
        ),
        speed_profile=paper_speed_profile(day_seconds=day_seconds),
        retry_enabled=True,
        t_int=day_seconds / 24.0,
        weights=(1.0, 1.0),
        day_seconds=day_seconds,
        duration=days * day_seconds,
        hourly_stats=True,
        sample_interval=60.0 / time_compression,
        seed=seed,
        label=f"{scheme} time-varying",
    )
    return replace(config, **overrides) if overrides else config


def hex_city(
    scheme: str,
    rows: int = 12,
    cols: int = 12,
    wrap: bool = True,
    offered_load: float = 100.0,
    voice_ratio: float = 1.0,
    duration: float = 600.0,
    warmup: float = 0.0,
    seed: int = 1,
    **overrides: object,
) -> SimulationConfig:
    """A 2-D hex-city scenario for the spatial sharding runner.

    The grid dimensions ride in ``config.extra`` (the config dataclass
    stays topology-agnostic); :func:`repro.simulation.spatial.run_spatial`
    reads them back.  ``T_int`` is infinite like the stationary runs —
    spatial mode refreshes ``B_r`` at epoch barriers instead of ticks.
    """
    config = SimulationConfig(
        scheme=scheme,
        offered_load=offered_load,
        voice_ratio=voice_ratio,
        num_cells=rows * cols,
        t_int=None,
        duration=duration,
        warmup=warmup,
        seed=seed,
        label=f"{scheme} hex {rows}x{cols} L={offered_load:g}",
        extra={"hex_rows": rows, "hex_cols": cols, "hex_wrap": wrap},
    )
    return replace(config, **overrides) if overrides else config
