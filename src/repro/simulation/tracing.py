"""Connection-lifecycle tracing: a structured event journal.

:class:`ConnectionTracer` is a simulator extension that records one
event per connection-lifecycle transition (admitted, hand-off,
terminal).  The journal supports queries, JSONL export, and an
independent validity check of every connection's event sequence —
useful both for debugging and as an oracle in integration tests.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Iterable

from repro.traffic.connection import Connection, ConnectionState


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One journal entry."""

    time: float
    kind: str  # admitted | handoff | completed | dropped | exited
    connection_id: int
    cell_id: int
    prev_cell: int | None
    bandwidth: float

    def to_json(self) -> str:
        return json.dumps(asdict(self))


class ConnectionTracer:
    """Simulator extension recording the lifecycle journal.

    Parameters
    ----------
    capacity:
        Maximum number of events kept (oldest evicted); ``None`` keeps
        everything.
    """

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be positive or None")
        self.capacity = capacity
        self.events: list[TraceEvent] = []
        self.evicted = 0
        #: Per-connection event lists (same TraceEvent instances as
        #: ``events``), so ``history()`` is a dict lookup instead of a
        #: full-journal scan.
        self._index: dict[int, list[TraceEvent]] = {}

    # ------------------------------------------------------------------
    # SimulatorExtension hooks
    # ------------------------------------------------------------------
    def on_admitted(self, connection: Connection, now: float) -> None:
        self._record("admitted", connection, now)

    def on_handoff(
        self,
        connection: Connection,
        old_cell: int,
        new_cell: int,
        now: float,
    ) -> None:
        self._record("handoff", connection, now)

    def on_connection_end(self, connection: Connection, now: float) -> None:
        kind = {
            ConnectionState.COMPLETED: "completed",
            ConnectionState.DROPPED: "dropped",
            ConnectionState.EXITED: "exited",
        }.get(connection.state)
        if kind is not None:
            self._record(kind, connection, now)

    def _record(self, kind: str, connection: Connection, now: float) -> None:
        event = TraceEvent(
            time=now,
            kind=kind,
            connection_id=connection.connection_id,
            cell_id=connection.cell_id,
            prev_cell=connection.prev_cell,
            bandwidth=connection.bandwidth,
        )
        self.events.append(event)
        self._index.setdefault(event.connection_id, []).append(event)
        if self.capacity is not None and len(self.events) > self.capacity:
            overflow = len(self.events) - self.capacity
            removed = self.events[:overflow]
            del self.events[:overflow]
            self.evicted += overflow
            # Evicted events are the journal's globally oldest, which is
            # also each connection's oldest: drop them from the front of
            # the per-connection lists.
            for old in removed:
                entries = self._index[old.connection_id]
                entries.pop(0)
                if not entries:
                    del self._index[old.connection_id]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def history(self, connection_id: int) -> list[TraceEvent]:
        """All events of one connection, in order (indexed lookup)."""
        return list(self._index.get(connection_id, ()))

    def count(self, kind: str) -> int:
        return sum(1 for event in self.events if event.kind == kind)

    def connections_seen(self) -> set[int]:
        return set(self._index)

    # ------------------------------------------------------------------
    # export / verification
    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """The journal as JSON-lines text."""
        return "\n".join(event.to_json() for event in self.events)

    def write_jsonl(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())
            handle.write("\n")

    def verify(self) -> list[str]:
        """Check every traced connection's lifecycle; returns violations.

        A valid (fully captured) sequence is::

            admitted  handoff*  (completed | dropped | exited)?

        with non-decreasing timestamps.  Connections still active at the
        end of the run legitimately lack a terminal event.  Only
        meaningful when ``capacity`` is None (nothing evicted).
        """
        if self.evicted:
            return ["journal truncated: verification unavailable"]
        problems: list[str] = []
        terminal = {"completed", "dropped", "exited"}
        for connection_id, events in self._index.items():
            times = [event.time for event in events]
            if times != sorted(times):
                problems.append(f"{connection_id}: events out of order")
            if events[0].kind != "admitted":
                problems.append(
                    f"{connection_id}: first event is {events[0].kind}"
                )
            seen_terminal = False
            for event in events[1:]:
                if seen_terminal:
                    problems.append(
                        f"{connection_id}: event after terminal state"
                    )
                    break
                if event.kind in terminal:
                    seen_terminal = True
                elif event.kind != "handoff":
                    problems.append(
                        f"{connection_id}: unexpected kind {event.kind}"
                    )
        return problems


def replay_counts(events: Iterable[TraceEvent]) -> dict[str, int]:
    """Aggregate a journal (or a parsed export) into per-kind counts."""
    counts: dict[str, int] = {}
    for event in events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
    return counts
