"""Simulation configuration: the paper's §5.1 defaults in one dataclass."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.window import StepPolicy
from repro.mobility.models import TravelDirections
from repro.traffic.profiles import DayProfile


@dataclass
class SimulationConfig:
    """Everything needed to reproduce one simulation run.

    Defaults follow §5.1: 10 ring-connected cells of 1 km, ``C = 100``
    BUs, voice-only traffic, mean lifetime 120 s, ``P_HD,target = 0.01``,
    ``T_start = 1`` s, ``N_quad = 100``, infinite ``T_int`` (stationary),
    high user mobility.
    """

    # --- infrastructure (A1, A6) -------------------------------------
    num_cells: int = 10
    cell_diameter_km: float = 1.0
    ring: bool = True
    capacity: float = 100.0

    # --- traffic (A2, A3, A5) ----------------------------------------
    #: Offered load ``L`` per cell in BUs (Eq. 7); ignored when
    #: ``load_profile`` is set.
    offered_load: float = 100.0
    #: ``R_vo`` — fraction of voice connections.
    voice_ratio: float = 1.0
    mean_lifetime: float = 120.0
    #: Time-of-day offered-load profile (enables the §5.3 scenario).
    load_profile: DayProfile | None = None

    # --- retries (§5.3) ----------------------------------------------
    retry_enabled: bool = False
    retry_delay: float = 5.0
    retry_giveup_step: float = 0.1

    # --- mobility (A4) -------------------------------------------------
    #: ``[SP_min, SP_max]`` km/h; ignored when ``speed_profile`` is set.
    speed_range: tuple[float, float] = (80.0, 120.0)
    speed_profile: DayProfile | None = None
    speed_profile_half_width: float = 20.0
    directions: TravelDirections = TravelDirections.TWO_WAY
    stationary_fraction: float = 0.0

    # --- scheme parameters (§5.1) --------------------------------------
    #: ``static``, ``AC1``, ``AC2`` or ``AC3``.
    scheme: str = "AC3"
    #: Layer :class:`repro.core.qos.AdaptiveQoSPolicy` over the scheme
    #: and make video degradable (hand-offs accepted at reduced rate
    #: instead of dropped; reservation on the minimum QoS — paper §1).
    adaptive_qos: bool = False
    #: CDMA soft capacity (§7): hand-offs may push a cell up to
    #: ``capacity * handoff_overload`` (higher interference accepted).
    handoff_overload: float = 1.0
    #: CDMA soft hand-off (§7): seconds a crossing mobile stays reachable
    #: from the old BS; a blocked hand-off retries during this window
    #: instead of dropping immediately.  0 disables (the paper's model).
    soft_handoff_window: float = 0.0
    #: Retry cadence inside the soft hand-off window.
    soft_handoff_retry_interval: float = 0.5
    #: Guard band ``G`` in BUs (static scheme only).
    static_guard: float = 10.0
    target_drop_probability: float = 0.01
    t_start: float = 1.0
    n_quad: int = 100
    #: ``T_int`` in seconds; ``None`` models the stationary ``T_int = inf``.
    t_int: float | None = None
    #: Day-age weights ``(w_0, w_1, ...)``.
    weights: tuple[float, ...] = (1.0, 1.0)
    #: ``T_day`` — the estimator's cyclic period and the hourly-stats
    #: bucket base.  Shrinking it (with matching profiles) time-
    #: compresses the §5.3 scenario.
    day_seconds: float = 86_400.0
    step_policy: StepPolicy = StepPolicy.UNIT
    #: Evaluate per-station Eq. 5 over the cells' incremental columnar
    #: buckets (pure optimisation — metrics are bit-identical either
    #: way; disabling forces the naive per-connection rescan, keeping
    #: the equivalence testable).
    reservation_cache: bool = True
    #: Coalesce each admission test's ``B_r`` updates into one batched
    #: estimation tick (pure optimisation — bit-identical metrics; the
    #: switch keeps the equivalence testable).
    coalesced_tick: bool = True
    #: Let one estimation tick gather the Eq. 4/5 rows of *all*
    #: suppliers into a single cross-cell columnar batch (pure
    #: optimisation — bit-identical metrics; the switch keeps the
    #: equivalence testable).  Only effective under an array kernel.
    grouped_flush: bool = True

    #: Estimation kernel: ``auto`` (numpy when installed), ``numpy``
    #: (require the ``[fast]`` extra), ``numba`` (additionally require
    #: the ``[fastest]`` extra — jitted flush kernels, explicit opt-in)
    #: or ``python`` (force the pure bisect fallback).  All kernels
    #: produce bit-identical metrics.  See :mod:`repro._kernel`.
    kernel: str = "auto"

    # --- run control ----------------------------------------------------
    duration: float = 2000.0
    #: Metrics ignore everything before this time (the scheme still
    #: learns from t=0, matching the paper's cold start).
    warmup: float = 0.0
    seed: int = 1
    #: Period of the B_r/B_u/T_est samplers (seconds); 0 disables.
    sample_interval: float = 10.0
    #: Cells whose time traces (T_est, B_r, cumulative P_HD) to record.
    tracked_cells: tuple[int, ...] = ()
    #: Aggregate hourly buckets (Figure 14b).
    hourly_stats: bool = False

    # --- observability ---------------------------------------------------
    #: Collect run telemetry (counters/gauges/histograms) into a snapshot
    #: attached to the result.  Also enabled by ``REPRO_TELEMETRY=1``.
    telemetry: bool = False
    #: Heartbeat progress lines at most this often (wall seconds);
    #: 0 disables.  Heartbeats never schedule events, so enabling them
    #: cannot perturb the run.
    progress_interval: float = 0.0
    #: Run identifier stamped into logs and telemetry; auto-generated
    #: when empty.
    run_id: str = ""
    #: Streaming time-series sampling cadence in *virtual* seconds
    #: (0 disables).  Samples are taken from the engine's observer hook
    #: — pure reads, never scheduled events — so enabling them cannot
    #: perturb the run (``metrics_key()`` parity is enforced by tests).
    series_interval: float = 0.0
    #: Streaming time-series sampling cadence in *wall* seconds
    #: (0 disables).  Either cadence (or both) may be active.
    series_wall_interval: float = 0.0
    #: Append-only JSONL destination for live samples (``repro dash``
    #: tails it); empty keeps samples only on the result.  Spatial
    #: shard processes append their own tagged rows to the same path.
    series_path: str = ""
    #: Ring-buffer depth of the in-memory series (the JSONL stream
    #: keeps everything).
    series_max_samples: int = 4096
    #: Record wall-clock spans (epoch barriers, flush ticks, checkpoint
    #: publishes) as Chrome trace events attached to the result.  Also
    #: enabled by ``REPRO_TRACE=1``.
    trace: bool = False

    #: Pre-warmed estimator state to hydrate the network with before the
    #: run starts (an object with ``hydrate(network)``, e.g. a
    #: :class:`repro.simulation.shared_state.SharedColumnsHandle`).  Used
    #: by the sharded replication runner to ship one warm-up's history to
    #: every shard; ``None`` for a cold start.
    warm_state: object | None = None

    # --- free-form label for reports ------------------------------------
    label: str = ""

    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_cells < 2:
            raise ValueError("need at least two cells")
        if self.offered_load < 0:
            raise ValueError("offered load cannot be negative")
        if not 0.0 <= self.voice_ratio <= 1.0:
            raise ValueError("voice ratio must be in [0, 1]")
        low, high = self.speed_range
        if low < 0 or high < low:
            raise ValueError(f"invalid speed range {self.speed_range}")
        if self.warmup >= self.duration:
            raise ValueError("warmup must end before the run does")
        for cell_id in self.tracked_cells:
            if not 0 <= cell_id < self.num_cells:
                raise ValueError(f"tracked cell {cell_id} out of range")
        if self.handoff_overload < 1.0:
            raise ValueError("handoff_overload must be >= 1")
        if self.soft_handoff_window < 0:
            raise ValueError("soft hand-off window cannot be negative")
        if self.soft_handoff_retry_interval <= 0:
            raise ValueError("soft hand-off retry interval must be positive")
        if self.kernel not in ("auto", "numpy", "python", "numba"):
            raise ValueError(
                "kernel must be auto, numpy, python or numba,"
                f" got {self.kernel!r}"
            )
        if self.progress_interval < 0:
            raise ValueError("progress interval cannot be negative")
        if self.series_interval < 0 or self.series_wall_interval < 0:
            raise ValueError("series intervals cannot be negative")
        if self.series_max_samples < 1:
            raise ValueError("series_max_samples must be >= 1")

    @property
    def series_enabled(self) -> bool:
        """Whether any time-series sampling cadence is active."""
        return self.series_interval > 0 or self.series_wall_interval > 0

    @property
    def is_time_varying(self) -> bool:
        return self.load_profile is not None or self.speed_profile is not None
