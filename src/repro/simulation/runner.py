"""Sweep runner: execute batches of configurations and collect results.

The evaluation figures are parameter sweeps (offered load x voice ratio
x mobility x scheme).  :func:`run_sweep` executes a list of configs and
returns results in order; :func:`sweep_offered_load` builds the standard
load axis used throughout §5.2.

Both accept ``workers=N`` to farm the configurations out to a
*persistent* process pool (see :class:`SimulationPool`): workers are
forked once per ``(pid, size)`` and reused across sweeps, so repeated
calls — the replication runner, benchmark harness, notebooks — pay the
interpreter start-up once instead of per call.  Each configuration
carries its own seed and every simulator is fully self-contained, so the
parallel results are identical to the sequential ones, in the same order
— only the wall clock differs.

Worker failures surface as :class:`SweepWorkerError` carrying the
*original* remote traceback (a bare ``BrokenProcessPool`` tells you
nothing about which config died or why); outstanding futures are
cancelled so a failing sweep stops early instead of burning the rest of
the batch.
"""

from __future__ import annotations

import atexit
import math
import os
import traceback
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Sequence

from repro.simulation.config import SimulationConfig
from repro.simulation.metrics import SimulationResult
from repro.simulation.simulator import CellularSimulator

#: The offered-load axis used by Figures 7-9 and 12-13.
DEFAULT_LOAD_AXIS = (60.0, 100.0, 150.0, 200.0, 250.0, 300.0)


class SweepWorkerError(RuntimeError):
    """A sweep worker failed; carries the remote traceback.

    Attributes
    ----------
    config:
        The configuration whose run raised (``None`` when the failure
        could not be attributed, e.g. a worker killed by a signal).
    remote_traceback:
        The worker-side formatted traceback, or a diagnostic string for
        non-Python deaths.
    """

    def __init__(
        self,
        message: str,
        config: SimulationConfig | None = None,
        remote_traceback: str = "",
    ) -> None:
        super().__init__(message)
        self.config = config
        self.remote_traceback = remote_traceback


class _RemoteFailure:
    """Picklable marker a worker returns in place of a result."""

    __slots__ = ("offset", "formatted")

    def __init__(self, offset: int, formatted: str) -> None:
        #: Index of the failing config *within its chunk*.
        self.offset = offset
        self.formatted = formatted


def _run_config(config: SimulationConfig) -> SimulationResult:
    """Run one configuration (module-level so process pools can pickle it)."""
    return CellularSimulator(config).run()


def _run_chunk(chunk: list[SimulationConfig]):
    """Run a contiguous chunk of configs inside a worker.

    Exceptions do not propagate as pickled exception objects (custom
    exceptions may not unpickle, and the parent-side traceback would
    point here rather than at the real frame); instead the worker
    converts the failure into a :class:`_RemoteFailure` marker carrying
    the formatted remote traceback and stops the chunk.
    """
    results: list = []
    for offset, config in enumerate(chunk):
        try:
            results.append(_run_config(config))
        except BaseException:
            results.append(_RemoteFailure(offset, traceback.format_exc()))
            break
    return results


def _noop() -> None:
    """Warm-up task: forces a worker process to actually start."""


class SimulationPool:
    """A persistent process pool for simulation sweeps.

    A thin, restartable wrapper over :class:`ProcessPoolExecutor` that
    (a) keeps its workers alive between :meth:`map_configs` calls,
    (b) schedules contiguous chunks to amortise task dispatch, and
    (c) converts worker failures into :class:`SweepWorkerError` with the
    remote traceback, cancelling whatever has not started yet.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        self.workers = workers
        self._executor: ProcessPoolExecutor | None = None

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        return self._executor

    def warm(self) -> None:
        """Start every worker now (first use otherwise forks lazily)."""
        executor = self._ensure_executor()
        futures = [executor.submit(_noop) for _ in range(self.workers)]
        for future in futures:
            future.result()

    def map_configs(
        self, configs: Sequence[SimulationConfig]
    ) -> list[SimulationResult]:
        """Run every config on the pool; results in input order.

        Raises :class:`SweepWorkerError` on the first failing config,
        after cancelling all not-yet-started chunks.
        """
        configs = list(configs)
        if not configs:
            return []
        executor = self._ensure_executor()
        # ~4 chunks per worker: large enough to amortise dispatch,
        # small enough to keep the pool busy under uneven run times.
        chunk_size = max(
            1, math.ceil(len(configs) / (self.workers * 4))
        )
        chunks = [
            configs[start:start + chunk_size]
            for start in range(0, len(configs), chunk_size)
        ]
        futures: list[Future] = [
            executor.submit(_run_chunk, chunk) for chunk in chunks
        ]
        results: list[SimulationResult] = []
        try:
            for chunk, future in zip(chunks, futures):
                try:
                    chunk_results = future.result()
                except BrokenProcessPool as error:
                    # The worker died without returning (segfault, OOM
                    # kill, interpreter abort): no remote traceback
                    # survived, and the exact config within the chunk
                    # is unknowable — attribute to the chunk's first.
                    config = chunk[0]
                    self._reset()
                    raise SweepWorkerError(
                        "sweep worker died while running a chunk starting"
                        f" at {_describe(config)}: {error}",
                        config=config,
                        remote_traceback=f"{type(error).__name__}: {error}",
                    ) from error
                for item in chunk_results:
                    if isinstance(item, _RemoteFailure):
                        config = chunk[item.offset]
                        raise SweepWorkerError(
                            f"sweep worker failed on {_describe(config)}\n"
                            "--- remote traceback ---\n"
                            f"{item.formatted}",
                            config=config,
                            remote_traceback=item.formatted,
                        )
                    results.append(item)
        except BaseException:
            for future in futures:
                future.cancel()
            raise
        return results

    def _reset(self) -> None:
        """Drop a broken executor so the next call starts a fresh one."""
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        """Shut the workers down.  Idempotent."""
        self._reset()

    def __enter__(self) -> "SimulationPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _describe(config: SimulationConfig) -> str:
    label = config.label or config.scheme
    return (
        f"config(label={label!r}, load={config.offered_load},"
        f" seed={config.seed})"
    )


#: Process-wide persistent pools, one per worker count.  Keyed by pid so
#: a fork (e.g. a pool worker importing this module) never inherits the
#: parent's executor handles as its own.
_SHARED_POOLS: dict[tuple[int, int], SimulationPool] = {}


def shared_pool(workers: int) -> SimulationPool:
    """The process-wide persistent :class:`SimulationPool` of this size.

    Created on first use and kept warm until interpreter exit, so
    back-to-back sweeps (replication runs, benchmarks) reuse the same
    worker processes.
    """
    key = (os.getpid(), workers)
    pool = _SHARED_POOLS.get(key)
    if pool is None:
        pool = _SHARED_POOLS[key] = SimulationPool(workers)
    return pool


@atexit.register
def _close_shared_pools() -> None:  # pragma: no cover - interpreter exit
    for pool in _SHARED_POOLS.values():
        pool.close()
    _SHARED_POOLS.clear()


def run_sweep(
    configs: Iterable[SimulationConfig],
    progress: Callable[[SimulationConfig, SimulationResult], None]
    | None = None,
    workers: int | None = None,
    pool: SimulationPool | None = None,
) -> list[SimulationResult]:
    """Run every configuration and return all results in input order.

    Parameters
    ----------
    configs:
        The scenarios to run.  Each should carry its own ``seed``; the
        runner never re-seeds, so a sweep is reproducible regardless of
        execution order or parallelism.
    progress:
        Optional callback invoked per completed configuration.  With
        ``workers`` it fires after the pool drains, still in input
        order.
    workers:
        ``None`` or ``<= 1`` runs in-process.  ``N > 1`` uses the
        process-wide persistent pool of up to ``N`` workers (capped at
        the number of configs).
    pool:
        Explicit :class:`SimulationPool` to run on (overrides
        ``workers``); the caller keeps ownership.
    """
    configs = list(configs)
    if pool is None and workers is not None and workers > 1 and len(configs) > 1:
        pool = shared_pool(min(workers, len(configs)))
    if pool is not None and len(configs) > 1:
        results = pool.map_configs(configs)
        if progress is not None:
            for config, result in zip(configs, results):
                progress(config, result)
        return results
    results = []
    for config in configs:
        result = _run_config(config)
        results.append(result)
        if progress is not None:
            progress(config, result)
    return results


def sweep_offered_load(
    make_config: Callable[[float], SimulationConfig],
    loads: Sequence[float] = DEFAULT_LOAD_AXIS,
    progress: Callable[[SimulationConfig, SimulationResult], None]
    | None = None,
    workers: int | None = None,
) -> list[tuple[float, SimulationResult]]:
    """Sweep the offered-load axis with a config factory."""
    results = run_sweep(
        [make_config(load) for load in loads], progress, workers=workers
    )
    return list(zip(loads, results))
