"""Sweep runner: execute batches of configurations and collect results.

The evaluation figures are parameter sweeps (offered load x voice ratio
x mobility x scheme).  :func:`run_sweep` executes a list of configs and
returns results in order; :func:`sweep_offered_load` builds the standard
load axis used throughout §5.2.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.simulation.config import SimulationConfig
from repro.simulation.metrics import SimulationResult
from repro.simulation.simulator import CellularSimulator

#: The offered-load axis used by Figures 7-9 and 12-13.
DEFAULT_LOAD_AXIS = (60.0, 100.0, 150.0, 200.0, 250.0, 300.0)


def run_sweep(
    configs: Iterable[SimulationConfig],
    progress: Callable[[SimulationConfig, SimulationResult], None]
    | None = None,
) -> list[SimulationResult]:
    """Run every configuration sequentially and return all results."""
    results = []
    for config in configs:
        result = CellularSimulator(config).run()
        results.append(result)
        if progress is not None:
            progress(config, result)
    return results


def sweep_offered_load(
    make_config: Callable[[float], SimulationConfig],
    loads: Sequence[float] = DEFAULT_LOAD_AXIS,
    progress: Callable[[SimulationConfig, SimulationResult], None]
    | None = None,
) -> list[tuple[float, SimulationResult]]:
    """Sweep the offered-load axis with a config factory."""
    results = run_sweep([make_config(load) for load in loads], progress)
    return list(zip(loads, results))
