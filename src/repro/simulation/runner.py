"""Sweep runner: execute batches of configurations and collect results.

The evaluation figures are parameter sweeps (offered load x voice ratio
x mobility x scheme).  :func:`run_sweep` executes a list of configs and
returns results in order; :func:`sweep_offered_load` builds the standard
load axis used throughout §5.2.

Both accept ``workers=N`` to farm the configurations out to a process
pool.  Each configuration carries its own seed and every simulator is
fully self-contained, so the parallel results are identical to the
sequential ones, in the same order — only the wall clock differs.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence

from repro.simulation.config import SimulationConfig
from repro.simulation.metrics import SimulationResult
from repro.simulation.simulator import CellularSimulator

#: The offered-load axis used by Figures 7-9 and 12-13.
DEFAULT_LOAD_AXIS = (60.0, 100.0, 150.0, 200.0, 250.0, 300.0)


def _run_config(config: SimulationConfig) -> SimulationResult:
    """Run one configuration (module-level so process pools can pickle it)."""
    return CellularSimulator(config).run()


def run_sweep(
    configs: Iterable[SimulationConfig],
    progress: Callable[[SimulationConfig, SimulationResult], None]
    | None = None,
    workers: int | None = None,
) -> list[SimulationResult]:
    """Run every configuration and return all results in input order.

    Parameters
    ----------
    configs:
        The scenarios to run.  Each should carry its own ``seed``; the
        runner never re-seeds, so a sweep is reproducible regardless of
        execution order or parallelism.
    progress:
        Optional callback invoked per completed configuration.  With
        ``workers`` it fires after the pool drains, still in input
        order.
    workers:
        ``None`` or ``<= 1`` runs in-process.  ``N > 1`` uses a process
        pool of up to ``N`` workers (capped at the number of configs).
    """
    configs = list(configs)
    if workers is not None and workers > 1 and len(configs) > 1:
        pool_size = min(workers, len(configs))
        with ProcessPoolExecutor(max_workers=pool_size) as pool:
            # ``map`` preserves input order whatever the completion order.
            results = list(pool.map(_run_config, configs))
        if progress is not None:
            for config, result in zip(configs, results):
                progress(config, result)
        return results
    results = []
    for config in configs:
        result = _run_config(config)
        results.append(result)
        if progress is not None:
            progress(config, result)
    return results


def sweep_offered_load(
    make_config: Callable[[float], SimulationConfig],
    loads: Sequence[float] = DEFAULT_LOAD_AXIS,
    progress: Callable[[SimulationConfig, SimulationResult], None]
    | None = None,
    workers: int | None = None,
) -> list[tuple[float, SimulationResult]]:
    """Sweep the offered-load axis with a config factory."""
    results = run_sweep(
        [make_config(load) for load in loads], progress, workers=workers
    )
    return list(zip(loads, results))
