"""City-scale spatial sharding: one DES engine per partition shard.

The paper's scheme is strictly local — every base station talks only to
its ``A_0`` neighbours — so a :class:`~repro.cellular.topology.HexTopology`
city partitions cleanly into contiguous regions with a one-cell-deep
boundary.  :func:`partition_hex` offers three plan kinds: ``"rows"``
(equal row-band split), ``"load"`` (row bands cut so each shard carries
an equal share of the *offered load*, from per-cell arrival-rate
weights), and ``"tiles"`` (a 2-D grid of row x column tiles for shard
counts that would otherwise produce needle-thin bands).  The barrier
protocol below is generic over the ownership map, so all plan kinds
merge to bit-identical metrics.  Each shard runs its own engine over
the cells it *owns* and exchanges three kinds of boundary traffic as
message batches at epoch barriers:

* **mirrors** — per boundary cell: its activity flag and its
  estimator's ``max_sojourn`` at the barrier instant (feeds the
  neighbour shard's dirty set and window-controller ``T_soj,max``);
* **reservation requests/replies** — Eq. 5 contributions crossing the
  cut, batched through ``outgoing_reservation_multi``;
* **migrations** — hand-offs whose destination cell lives in another
  shard, shipped one barrier ahead of their crossing time.

Determinism for *any* shard count (the acceptance bar: ``metrics_key()``
bit-identical for N ∈ {1, 2, 4}) comes from an epoch-synchronous
protocol variant with identical semantics at every N, including N=1:

* Cross-cell reads happen **only at barriers**.  Mid-epoch admission is
  cell-local: a new request runs Eq. 1 against the barrier-installed
  ``B_r`` (0 calculations / 0 messages per test — the protocol work is
  accounted at the barrier), a hand-off runs the Eq. 2 overload test at
  its destination, and the window controller is fed the epoch-start
  neighbourhood-max-sojourn mirror.
* ``B_r`` refreshes at each barrier for the *dirty* set — cells whose
  own or neighbouring cells saw an attach/detach/departure/hand-off in
  the finished epoch — via one sorted ``outgoing_reservation_multi``
  call per supplier.  Suppliers and requests are processed in cell-id
  order, and Eq. 6 installs in target-id order, so float addition
  order is shard-independent.
* Every random draw comes from a counter-based SplitMix64 stream keyed
  by *simulation* coordinates (cell, arrival index, hop count), never
  by scheduling history, so shards draw identical values no matter who
  owns the cell.  Connection ids are likewise deterministic:
  ``birth_seq * num_cells + birth_cell``.
* The epoch length must not exceed the minimum hand-off notice
  (:attr:`HexMobilityModel.MIN_NOTICE`): a crossing landing in epoch
  ``j`` was drawn in epoch ``j-1`` or earlier, so shipping the
  outgoing heap up to ``(k + 2) * epoch`` at the end of epoch ``k``
  delivers every boundary hand-off exactly one barrier ahead of its
  crossing time.  The destination schedules it at the barrier with
  ``now = T_j < crossing time``, preserving engine-time monotonicity.

Events at exactly equal virtual times order by (priority, scheduling
sequence); the protocol never schedules two *cross-shard-visible*
events at the same instant except lifetime-vs-crossing ties, which
resolve identically at every N (DEPARTURE fires before HANDOFF).
Crossing/lifetime instants are continuous exponential draws, so
coincidences between distinct connections have measure zero.

Hot state lives in the struct-of-arrays stores of
:mod:`repro.simulation.columnar`, and the cells are
:class:`~repro.simulation.columnar.ColumnarCell` instances that attach
and detach store *rows* directly — the DES inner loop allocates no
per-connection objects, and barrier-time Eq. 5 refreshes run through
the cross-cell ``FlushBatch`` kernels.
"""

from __future__ import annotations

import heapq
import json
import math
import time as wall_clock
import zlib
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro._kernel import flush_batch_or_none, kernel_name, set_kernel
from repro.cellular.cell import Cell
from repro.cellular.network import CellularNetwork
from repro.cellular.topology import HexTopology
from repro.core.admission import make_policy
from repro.core.reservation import aggregate_reservation
from repro.core.window import WindowControllerConfig
from repro.des.engine import Engine
from repro.des.events import Event, EventPriority
from repro.des.random import RandomStreams
from repro.estimation.cache import CacheConfig
from repro.mobility.models import DEFAULT_HEX_POPULATION, HexMobilityModel
from repro.obs.logs import ensure_configured
from repro.obs.progress import ProgressReporter
from repro.obs.telemetry import begin_run, merge_snapshots, new_run_id
from repro.obs.timeseries import TimeSeriesSampler, merge_series
from repro.obs.trace import begin_trace, merge_traces
from repro.simulation.columnar import (
    BANDWIDTH_TABLE,
    ColumnarCell,
    ConnectionStore,
    handle_class,
)
from repro.simulation.config import SimulationConfig
from repro.simulation.metrics import (
    CellStatus,
    HourlyBucket,
    MetricsCollector,
    SimulationResult,
)
from repro.simulation.shared_state import SharedColumnsHandle, SharedColumnStore
from repro.traffic.arrivals import (
    ModulatedPoissonArrivals,
    PoissonArrivals,
    RetryPolicy,
)
from repro.traffic.classes import VOICE, TrafficMix

#: Schemes the epoch-synchronous protocol supports.  The adaptive
#: schemes (AC1-3) collapse to the same barrier-driven dirty-set
#: refresh; "static" skips the refresh entirely.
_SCHEMES = ("static", "ac1", "ac2", "ac3")


# ----------------------------------------------------------------------
# partitioning
# ----------------------------------------------------------------------
#: Partition strategies :func:`partition_hex` understands.
PLAN_KINDS = ("rows", "load", "tiles")


@dataclass(frozen=True)
class ShardPlan:
    """A partition of a hex city into shard-owned regions.

    ``owner[cell]`` is the shard owning each cell; ``cells[s]`` the
    ascending cell ids owned by shard ``s``; ``boundary[s][t]`` the
    ascending cells of ``s`` with at least one neighbour owned by
    ``t`` (the mirror set shipped from ``s`` to ``t`` every barrier).
    ``kind`` names the strategy that produced the plan and ``loads[s]``
    is the offered-load weight shard ``s`` carries (cell count under
    uniform weights) — the balance observable the bench and dashboard
    report against.
    """

    shards: int
    owner: tuple[int, ...]
    cells: tuple[tuple[int, ...], ...]
    boundary: tuple[dict[int, tuple[int, ...]], ...]
    kind: str = "rows"
    loads: tuple[float, ...] = ()


def _weighted_bands(
    weights: list[float], bands: int
) -> list[tuple[int, int]]:
    """Cut ``len(weights)`` consecutive slots into contiguous bands.

    Greedy equal-share cuts: each band ends at the slot whose cumulative
    weight lands closest to an equal split of what remains, while always
    leaving at least one slot per later band.  Deterministic, and with
    uniform weights it degenerates to near-equal slot counts.
    """
    count = len(weights)
    if bands < 1:
        raise ValueError("need at least one band")
    if bands > count:
        raise ValueError(f"cannot cut {count} slots into {bands} bands")
    if min(weights) < 0:
        raise ValueError("weights must be >= 0")
    prefix = [0.0]
    for weight in weights:
        prefix.append(prefix[-1] + weight)
    if prefix[-1] <= 0:
        prefix = list(range(count + 1))
    ranges = []
    start = 0
    for band in range(bands):
        remaining = bands - band
        if remaining == 1:
            ranges.append((start, count))
            break
        target = prefix[start] + (prefix[count] - prefix[start]) / remaining
        low = start + 1
        high = count - (remaining - 1)
        end = low
        while end < high and prefix[end] < target:
            end += 1
        if end > low and target - prefix[end - 1] <= prefix[end] - target:
            end -= 1
        ranges.append((start, end))
        start = end
    return ranges


def _tile_factors(shards: int, rows: int, cols: int) -> tuple[int, int]:
    """Factor ``shards`` into a near-square ``(row bands, col bands)``."""
    best = None
    for row_bands in range(1, shards + 1):
        if shards % row_bands:
            continue
        col_bands = shards // row_bands
        if row_bands > rows or col_bands > cols:
            continue
        score = (abs(row_bands - col_bands), row_bands)
        if best is None or score < best[0]:
            best = (score, row_bands, col_bands)
    if best is None:
        raise ValueError(
            f"cannot tile {shards} shards onto a {rows}x{cols} grid"
        )
    return best[1], best[2]


def partition_hex(
    topology: HexTopology,
    shards: int,
    *,
    kind: str = "rows",
    weights: list[float] | None = None,
) -> ShardPlan:
    """Partition ``topology`` into ``shards`` contiguous regions.

    ``kind="rows"`` keeps the classic equal-row-count bands.
    ``kind="load"`` sizes row bands by per-cell offered-load
    ``weights`` (uniform when ``None``) so each shard carries a near
    equal share of the arrival work.  ``kind="tiles"`` factorises the
    shard count into a near-square grid of row x column tiles (each
    dimension cut load-balanced), for shard counts where plain bands
    degenerate into thin strips.

    Hex neighbours span at most one row and one column (wrap included),
    so every plan's cut is one cell deep; the boundary computation is
    generic over the ownership map, which is exactly why all plan kinds
    run the same barrier protocol.
    """
    if kind not in PLAN_KINDS:
        raise ValueError(
            f"unknown shard-plan kind {kind!r}; pick one of {PLAN_KINDS}"
        )
    if weights is not None and len(weights) != topology.num_cells:
        raise ValueError(
            f"need one weight per cell ({topology.num_cells}),"
            f" got {len(weights)}"
        )
    cell_weight = (
        (lambda cell: 1.0) if weights is None
        else (lambda cell: float(weights[cell]))
    )
    owner = [0] * topology.num_cells
    if kind == "rows":
        bands = topology.row_bands(shards)
        for shard, (start_row, end_row) in enumerate(bands):
            for row in range(start_row, end_row):
                for col in range(topology.cols):
                    owner[topology.cell_id(row, col)] = shard
    elif kind == "load":
        row_weights = [
            sum(
                cell_weight(topology.cell_id(row, col))
                for col in range(topology.cols)
            )
            for row in range(topology.rows)
        ]
        for shard, (start_row, end_row) in enumerate(
            _weighted_bands(row_weights, shards)
        ):
            for row in range(start_row, end_row):
                for col in range(topology.cols):
                    owner[topology.cell_id(row, col)] = shard
    else:  # tiles
        row_bands, col_bands = _tile_factors(
            shards, topology.rows, topology.cols
        )
        row_weights = [
            sum(
                cell_weight(topology.cell_id(row, col))
                for col in range(topology.cols)
            )
            for row in range(topology.rows)
        ]
        for band, (start_row, end_row) in enumerate(
            _weighted_bands(row_weights, row_bands)
        ):
            col_weights = [
                sum(
                    cell_weight(topology.cell_id(row, col))
                    for row in range(start_row, end_row)
                )
                for col in range(topology.cols)
            ]
            for tile, (start_col, end_col) in enumerate(
                _weighted_bands(col_weights, col_bands)
            ):
                shard = band * col_bands + tile
                for row in range(start_row, end_row):
                    for col in range(start_col, end_col):
                        owner[topology.cell_id(row, col)] = shard
    cells: list[tuple[int, ...]] = []
    loads: list[float] = []
    for shard in range(shards):
        owned = tuple(
            cell for cell in range(topology.num_cells) if owner[cell] == shard
        )
        if not owned:
            raise ValueError(f"shard {shard} owns no cells")
        cells.append(owned)
        loads.append(sum(cell_weight(cell) for cell in owned))
    boundary: list[dict[int, tuple[int, ...]]] = []
    for shard in range(shards):
        per_target: dict[int, list[int]] = {}
        for cell in cells[shard]:
            for neighbor in topology.neighbors(cell):
                target = owner[neighbor]
                if target != shard:
                    bucket = per_target.setdefault(target, [])
                    if not bucket or bucket[-1] != cell:
                        bucket.append(cell)
        boundary.append(
            {target: tuple(per_target[target]) for target in sorted(per_target)}
        )
    return ShardPlan(
        shards=shards,
        owner=tuple(owner),
        cells=tuple(cells),
        boundary=tuple(boundary),
        kind=kind,
        loads=tuple(loads),
    )


def cell_load_weights(config: SimulationConfig) -> list[float] | None:
    """Per-cell offered-load weights from the scenario, or ``None``.

    Scenario builders (``hex_city(hotspots=...)``) stash the vector in
    ``config.extra["cell_weights"]``; it scales each cell's arrival
    rate and feeds load-balanced partitioning.
    """
    raw = (config.extra or {}).get("cell_weights")
    if raw is None:
        return None
    weights = [float(value) for value in raw]
    if len(weights) != config.num_cells:
        raise ValueError(
            f"config.extra['cell_weights'] needs {config.num_cells}"
            f" entries, got {len(weights)}"
        )
    if min(weights) < 0:
        raise ValueError("cell weights must be >= 0")
    return weights


_MASK64 = (1 << 64) - 1
#: Per-draw counter increment (the SplitMix64 golden gamma) and one
#: distinct odd multiplier per stream coordinate.  All five constants
#: differ, so no combination of small coordinate deltas can reproduce a
#: small multiple of the draw gamma — distinct coordinates never land
#: on overlapping counter windows.
_GAMMA = 0x9E3779B97F4A7C15
_GAMMA_TAG = 0xD1B54A32D192ED03
_GAMMA_A = 0x8CB92BA72F3D8DD7
_GAMMA_B = 0xABC98388FB8FAC03
_GAMMA_C = 0x2545F4914F6CDD1D


def _mix64(value: int) -> int:
    """SplitMix64 finaliser: bijective 64-bit avalanche mix."""
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


class _CoordStream:
    """A counter-based SplitMix64 stream keyed by simulation coordinates.

    Replaces the original sha256 + ``random.Random`` construction: at
    one stream per request and per hop, hashing and Mersenne-Twister
    seeding dominated the event loop.  The counter base is a plain
    linear combination of ``(seed, tag, a, b, c)`` — no mixing at
    construction, because every draw advances the counter by the golden
    gamma and runs the SplitMix64 finaliser, which does all the
    avalanching.  Distinct coordinates give independent streams
    regardless of draw order, so shards see identical values no matter
    who owns a cell — the shard-invariance property the barrier
    protocol rests on.  Only the duck-typed subset the spatial handlers
    use (``random`` / ``expovariate`` / ``randrange`` / ``choice``) is
    implemented.
    """

    __slots__ = ("_state",)

    def __init__(self, seed: int, tag: int, a: int, b: int, c: int) -> None:
        self._state = (
            seed
            + tag * _GAMMA_TAG
            + a * _GAMMA_A
            + b * _GAMMA_B
            + c * _GAMMA_C
        ) & _MASK64

    def random(self) -> float:
        # _mix64 inlined: one Python call per draw is measurable at
        # half a million draws per simulated minute.
        self._state = value = (self._state + _GAMMA) & _MASK64
        value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
        return ((value ^ (value >> 31)) >> 11) * (1.0 / (1 << 53))

    def expovariate(self, lambd: float) -> float:
        return -math.log(1.0 - self.random()) / lambd

    def randrange(self, n: int) -> int:
        return min(n - 1, int(self.random() * n))

    def choice(self, seq):
        return seq[min(len(seq) - 1, int(self.random() * len(seq)))]


#: Stream tags: one namespace per draw site (request vs hop).
_TAG_REQUEST = 1
_TAG_HOP = 2


def _hex_dimensions(config: SimulationConfig) -> tuple[int, int, bool]:
    extra = config.extra or {}
    rows = extra.get("hex_rows")
    cols = extra.get("hex_cols")
    if rows is None or cols is None:
        raise ValueError(
            "spatial runs need a hex city: set config.extra['hex_rows'] / "
            "['hex_cols'] (see repro.simulation.scenarios.hex_city)"
        )
    return int(rows), int(cols), bool(extra.get("hex_wrap", True))


def check_spatial_config(config: SimulationConfig, epoch: float) -> None:
    """Reject configurations the epoch-synchronous protocol cannot honour."""
    rows, cols, _ = _hex_dimensions(config)
    if rows * cols != config.num_cells:
        raise ValueError(
            f"config.num_cells={config.num_cells} does not match the "
            f"{rows}x{cols} hex grid"
        )
    if config.scheme.lower() not in _SCHEMES:
        raise ValueError(f"unsupported spatial scheme {config.scheme!r}")
    if config.adaptive_qos:
        raise ValueError("adaptive QoS is not supported in spatial runs")
    if config.soft_handoff_window > 0:
        raise ValueError("soft hand-off is not supported in spatial runs")
    if not 0 < epoch <= HexMobilityModel.MIN_NOTICE:
        raise ValueError(
            f"epoch must be in (0, {HexMobilityModel.MIN_NOTICE}] so every "
            "boundary hand-off is known one barrier ahead"
        )


# ----------------------------------------------------------------------
# per-shard engine
# ----------------------------------------------------------------------
@dataclass
class ShardResult:
    """Everything one shard contributes to the merged result."""

    index: int
    cells: dict[int, object]
    statuses: dict[int, CellStatus]
    hourly: dict[int, tuple[int, int, int, int]]
    t_est_traces: dict[int, list]
    reservation_traces: dict[int, list]
    phd_traces: dict[int, list]
    sample_sums: dict[int, tuple[float, float, int]]
    admission_tests: int
    calculations: int
    messages: int
    events: int
    telemetry: dict | None = None
    state: dict | None = None
    store_bytes: int = 0
    peak_live: int = 0
    #: Per-shard time-series samples (tagged ``shard_id``), or ``None``
    #: when sampling was off.
    series: list | None = None
    #: Per-shard Chrome trace events (``pid`` = shard index), or
    #: ``None`` when tracing was off.
    trace: list | None = None


class ShardEngine:
    """One shard's DES engine plus its side of the barrier protocol."""

    def __init__(
        self,
        config: SimulationConfig,
        plan: ShardPlan,
        index: int,
        epoch: float,
    ) -> None:
        check_spatial_config(config, epoch)
        self.config = config
        self.plan = plan
        self.index = index
        self.epoch = epoch
        self.seed = config.seed
        self.duration = config.duration
        self.adaptive = config.scheme.lower() != "static"
        if config.kernel == "auto":
            kernel_name()
        else:
            set_kernel(config.kernel)
        ensure_configured()
        run_id = config.run_id or new_run_id()
        self.telemetry = begin_run(
            run_id=f"{run_id}-s{index}",
            enabled=True if config.telemetry else None,
        )
        # Span tracer: one Perfetto ``pid`` lane per shard, installed
        # before the network grabs its flush-tick handle.
        self.tracer = begin_trace(
            run_id=f"{run_id}-s{index}",
            enabled=True if config.trace else None,
            pid=index,
        )
        rows, cols, wrap = _hex_dimensions(config)
        self.topology = HexTopology(rows, cols, wrap=wrap)
        #: Struct-of-arrays store backing every connection this shard
        #: hosts — built before the network so the cell factory below
        #: can bind each cell to it.
        self.store = ConnectionStore(self.topology.num_cells)
        store = self.store
        handle_cls = handle_class(store)

        def columnar_cell(cell_id: int, cap: float, overload: float) -> Cell:
            return ColumnarCell(cell_id, cap, store, overload, handle_cls)

        # Every shard builds the full-topology network so cell ids,
        # neighbour sets, and Eq. 5/6 semantics are exactly the global
        # ones; unowned cells simply never see an event.  Cells are
        # columnar: the hot loop attaches/detaches store rows directly
        # instead of churning per-event handle objects.
        self.network = CellularNetwork(
            self.topology,
            capacity=config.capacity,
            cell_factory=columnar_cell,
            cache_config=CacheConfig(
                interval=config.t_int,
                max_per_pair=config.n_quad,
                weights=config.weights,
                period=config.day_seconds,
            ),
            window_config=WindowControllerConfig(
                target_drop_probability=config.target_drop_probability,
                initial_window=config.t_start,
                step_policy=config.step_policy,
            ),
            handoff_overload=config.handoff_overload,
            reservation_cache=config.reservation_cache,
            coalesced_tick=False,
            grouped_flush=config.grouped_flush,
        )
        self.owned = plan.cells[index]
        self._owned_set = frozenset(self.owned)
        if config.warm_state is not None:
            config.warm_state.hydrate(self.network, cells=self._owned_set)
        if not self.adaptive:
            for cell in range(self.topology.num_cells):
                self.network.cell(cell).reserved_target = config.static_guard
        self.population = DEFAULT_HEX_POPULATION
        self.mix = TrafficMix(config.voice_ratio)
        weights = cell_load_weights(config)

        def arrival_process(weight: float):
            if config.load_profile is not None:
                return ModulatedPoissonArrivals(
                    config.load_profile,
                    self.mix.mean_bandwidth,
                    config.mean_lifetime,
                    weight=weight,
                )
            return PoissonArrivals(
                weight
                * self.mix.arrival_rate_for_load(
                    config.offered_load, config.mean_lifetime
                )
            )

        if weights is None:
            shared = arrival_process(1.0)
            self._arrivals = {cell: shared for cell in self.owned}
        else:
            # Hot-spot scenarios: each owned cell runs its own weighted
            # arrival process (a zero weight means a silent cell).
            self._arrivals = {
                cell: arrival_process(weights[cell]) for cell in self.owned
            }
        self.retry = RetryPolicy(
            delay=config.retry_delay,
            giveup_step=config.retry_giveup_step,
            enabled=config.retry_enabled,
        )
        self.metrics = MetricsCollector(
            self.topology.num_cells,
            warmup=config.warmup,
            tracked_cells=tuple(
                cell for cell in config.tracked_cells if cell in self._owned_set
            ),
            hourly=config.hourly_stats,
            hour_seconds=config.day_seconds / 24.0,
        )
        self.engine = Engine()
        self.sampler: TimeSeriesSampler | None = None
        if config.series_enabled:
            self.sampler = TimeSeriesSampler(
                self.engine,
                metrics=self.metrics,
                stations=[self.network.station(cell) for cell in self.owned],
                capacity=config.capacity,
                interval=config.series_interval,
                wall_interval=config.series_wall_interval,
                max_samples=config.series_max_samples,
                stream=config.series_path or None,
                shard_id=index,
                run_id=f"{run_id}-s{index}",
                label=config.label or config.scheme,
                telemetry=self.telemetry,
            )
        #: Wall time spent inside ``engine.run`` vs total shard wall
        #: time — their gap is the barrier-wait fraction the samples
        #: and the dashboard report.
        self._wall_started = wall_clock.perf_counter()
        self._run_wall = 0.0
        self._end_events: dict[int, Event] = {}
        self._crossing_events: dict[int, Event] = {}
        #: Boundary crossings awaiting shipment: (ctime, row, serial, dest).
        self._outgoing: list[tuple[float, int, int, int]] = []
        #: Per-arrival-cell renewal streams (order-independent names, so
        #: every shard count sees identical per-cell arrival processes).
        streams = RandomStreams(config.seed)
        self._arrival_rngs = {
            cell: streams.get(f"spatial-arrivals:{cell}")
            for cell in self.owned
        }
        self._arrival_index = {cell: 0 for cell in self.owned}
        self._activity = {cell: False for cell in self.owned}
        self._remote_activity: dict[int, bool] = {}
        self._remote_ms: dict[int, float] = {}
        self._nms = {cell: 0.0 for cell in self.owned}
        self._pending_install: list[int] = []
        self._local_requests: dict[int, list[tuple[int, float]]] = {}
        self._reply_values: dict[tuple[int, int], float] = {}
        self._sample_sums = {cell: [0.0, 0.0, 0] for cell in self.owned}
        #: Semantic event count: requests (retries included), hand-off
        #: arrivals, lifetime completions.  Engine bookkeeping events
        #: (departure halves, samples) are excluded so the count is the
        #: same for every shard count; the coordinator adds the global
        #: sample-tick count once.
        self.semantic_events = 0
        self.peak_live = 0
        #: Hot-loop accessor caches: the handlers below run millions of
        #: times; direct list indexing beats the network's accessor
        #: methods, and the neighbor tuples never change after build.
        self._cells = self.network.cells
        self._stations = self.network.stations
        self._neighbors = [
            self.topology.neighbors(cell)
            for cell in range(self.topology.num_cells)
        ]
        for cell in self.owned:
            first = self._arrivals[cell].next_arrival(
                0.0, self._arrival_rngs[cell]
            )
            if first is not None and first <= self.duration:
                self.engine.call_at(
                    first,
                    self._on_arrival,
                    cell,
                    priority=EventPriority.ARRIVAL,
                )
        if config.sample_interval > 0 and self.owned:
            self.engine.call_at(
                config.sample_interval,
                self._on_sample,
                priority=EventPriority.MONITOR,
            )

    # -- barrier protocol ------------------------------------------------
    def barrier_begin(
        self,
        k: int,
        mirrors: list[tuple[int, bool, float]],
        migrations: list[tuple],
    ) -> list[tuple[int, int, float]]:
        """Open epoch ``k``: apply boundary state, emit cross-cut requests.

        Returns ``(supplier, target, t_est)`` requests whose supplier
        lives in another shard.
        """
        with self.tracer.span("barrier.begin", epoch=k, shard=self.index):
            return self._barrier_begin(k, mirrors, migrations)

    def _barrier_begin(
        self,
        k: int,
        mirrors: list[tuple[int, bool, float]],
        migrations: list[tuple],
    ) -> list[tuple[int, int, float]]:
        barrier = k * self.epoch
        self._barrier_time = barrier
        self._remote_activity = {}
        self._remote_ms = {}
        for cell, active, max_sojourn in mirrors:
            self._remote_activity[cell] = active
            self._remote_ms[cell] = max_sojourn
        station = self.network.station
        local_ms = {
            cell: station(cell).estimator.max_sojourn(barrier)
            for cell in self.owned
        }
        neighbors = self.topology.neighbors
        for cell in self.owned:
            best = 0.0
            for neighbor in neighbors(cell):
                value = local_ms.get(neighbor)
                if value is None:
                    value = self._remote_ms.get(neighbor, 0.0)
                if value > best:
                    best = value
            self._nms[cell] = best
        for payload in migrations:
            self.engine.call_at(
                payload[0],
                self._on_migration,
                payload,
                priority=EventPriority.HANDOFF,
            )
        requests_out: list[tuple[int, int, float]] = []
        self._pending_install = []
        self._local_requests = {}
        self._reply_values = {}
        if self.adaptive and k > 0:
            activity = self._activity
            remote_activity = self._remote_activity
            owner = self.plan.owner
            metrics = self.metrics
            for cell in self.owned:
                dirty = activity[cell]
                if not dirty:
                    for neighbor in neighbors(cell):
                        if activity.get(
                            neighbor, False
                        ) or remote_activity.get(neighbor, False):
                            dirty = True
                            break
                if not dirty:
                    continue
                cell_station = station(cell)
                t_est = cell_station.t_est
                cell_neighbors = neighbors(cell)
                # §4.1 message pattern, folded into the barrier: one
                # T_est announcement + one Eq. 5 reply per neighbour.
                metrics.total_calculations += 1
                metrics.total_messages += 2 * len(cell_neighbors)
                cell_station.messages_sent += len(cell_neighbors)
                self._pending_install.append(cell)
                for neighbor in cell_neighbors:
                    if owner[neighbor] == self.index:
                        self._local_requests.setdefault(neighbor, []).append(
                            (cell, t_est)
                        )
                    else:
                        requests_out.append((neighbor, cell, t_est))
        for cell in self.owned:
            self._activity[cell] = False
        return requests_out

    def evaluate(
        self, remote_requests: list[tuple[int, int, float]]
    ) -> list[tuple[int, int, float]]:
        """Answer Eq. 5 for every supplier this shard owns.

        Suppliers are processed in cell-id order and each supplier's
        requests in target-id order, so the batched estimator walk is
        shard-count-independent.  Returns replies whose target lives in
        another shard.
        """
        with self.tracer.span(
            "barrier.evaluate", shard=self.index, requests=len(remote_requests)
        ):
            return self._evaluate(remote_requests)

    def _evaluate(
        self, remote_requests: list[tuple[int, int, float]]
    ) -> list[tuple[int, int, float]]:
        merged = self._local_requests
        for supplier, target, t_est in remote_requests:
            merged.setdefault(supplier, []).append((target, t_est))
        owner = self.plan.owner
        station_of = self.network.station
        now = self._barrier_time
        suppliers = sorted(merged)
        by_supplier: dict[int, list[tuple[int, float]]] = {}
        for supplier in suppliers:
            requests = sorted(merged[supplier])
            by_supplier[supplier] = requests
            station_of(supplier).messages_sent += len(requests)
        # Supply phase, cross-cell batched like
        # :meth:`repro.cellular.network.CellularNetwork._flush_tick`:
        # every supplier's Eq. 5 rows are gathered into one columnar
        # :class:`repro._kernel.FlushBatch` pass; suppliers that cannot
        # join fall back to the per-supplier batched call, which is
        # bit-identical by construction.
        supplies: dict[int, list[float]] = {}
        batch = flush_batch_or_none() if self.config.grouped_flush else None
        if batch is not None:
            np = batch.np
            deferred: list[tuple[int, list]] = []
            for supplier in suppliers:
                requests = by_supplier[supplier]
                station = station_of(supplier)
                slots = station.grouped_contribution_eval(
                    np, now, requests, batch
                )
                if slots is None:
                    supplies[supplier] = station.outgoing_reservation_multi(
                        now, requests
                    )
                else:
                    deferred.append((supplier, slots))
            if deferred:
                batch.resolve()
                for supplier, slots in deferred:
                    supplies[supplier] = [
                        0.0
                        if slot is None
                        else (slot if type(slot) is float else slot.total)
                        for slot in slots
                    ]
        else:
            for supplier in suppliers:
                supplies[supplier] = station_of(
                    supplier
                ).outgoing_reservation_multi(now, by_supplier[supplier])
        replies_out: list[tuple[int, int, float]] = []
        for supplier in suppliers:
            for (target, _), value in zip(
                by_supplier[supplier], supplies[supplier]
            ):
                if owner[target] == self.index:
                    self._reply_values[(supplier, target)] = value
                else:
                    replies_out.append((supplier, target, value))
        self._local_requests = {}
        return replies_out

    def run_epoch(
        self, k: int, replies: list[tuple[int, int, float]]
    ) -> tuple[dict[int, list], dict[int, list], tuple[float, int, int]]:
        """Install Eq. 6, run to the epoch end, ship boundary batches.

        Returns ``(mirrors, migrations, stats)``: the boundary batches
        keyed by destination shard, plus ``(now, events_processed,
        heap_len)`` so the coordinator can aggregate progress without
        another round trip.
        """
        for supplier, target, value in replies:
            self._reply_values[(supplier, target)] = value
        station = self.network.station
        neighbors = self.topology.neighbors
        reply_values = self._reply_values
        for cell in self._pending_install:
            contributions = [
                reply_values[(neighbor, cell)] for neighbor in neighbors(cell)
            ]
            target_station = station(cell)
            target_station.cell.reserved_target = aggregate_reservation(
                contributions
            )
            target_station.reservation_calculations += 1
        self._pending_install = []
        self._reply_values = {}
        until = min((k + 1) * self.epoch, self.duration)
        sampler = self.sampler
        observer = sampler.maybe_sample if sampler is not None else None
        run_started = wall_clock.perf_counter()
        with self.tracer.span("epoch.run", epoch=k, shard=self.index):
            self.engine.run(until=until, observer=observer)
        self._run_wall += wall_clock.perf_counter() - run_started
        if self.store.live > self.peak_live:
            self.peak_live = self.store.live
        with self.tracer.span("barrier.ship", epoch=k, shard=self.index):
            mirrors, migrations = self._ship(k, until)
        if sampler is not None and sampler.due(until):
            # Boundary sample (on the configured cadence, not every
            # epoch): tags the epoch and the fraction of shard wall time
            # spent waiting at barriers instead of running events.
            elapsed = wall_clock.perf_counter() - self._wall_started
            frac = 1.0 - self._run_wall / elapsed if elapsed > 0 else 0.0
            sampler.sample(epoch=k, barrier_wait_frac=round(frac, 4))
        stats = (
            self.engine.now,
            self.engine.events_processed,
            self.engine.queue_len,
        )
        return mirrors, migrations, stats

    def _ship(
        self, k: int, until: float
    ) -> tuple[dict[int, list], dict[int, list]]:
        """Pop due boundary crossings and snapshot boundary mirrors."""
        station = self.network.station
        # Ship every boundary crossing landing in the next epoch.  The
        # epoch <= MIN_NOTICE bound guarantees anything landing later
        # than that is still undrawn or already heaped for a later
        # barrier.
        deadline = (k + 2) * self.epoch
        outgoing = self._outgoing
        store = self.store
        columns = store.columns
        owner = self.plan.owner
        migrations: dict[int, list] = {}
        while outgoing and outgoing[0][0] <= deadline:
            ctime, row, serial, dest = heapq.heappop(outgoing)
            if store.serial_of(row) != serial:
                continue  # connection already ended; row recycled
            if float(columns["end_time"][row]) <= ctime:
                # The lifetime end this epoch or next beats the crossing
                # (DEPARTURE fires before HANDOFF at equal times); the
                # local end event will cancel the crossing.
                continue
            crossing = self._crossing_events.get(row)
            if crossing is None or crossing.cancelled or crossing.time != ctime:
                continue
            end_event = self._end_events.pop(row, None)
            if end_event is not None:
                end_event.cancel()
            payload = (
                ctime,
                dest,
                int(columns["cell"][row]),
                int(columns["birth_cell"][row]),
                int(columns["birth_seq"][row]),
                int(columns["hops"][row]),
                int(columns["heading"][row]),
                int(columns["pop"][row]),
                int(columns["bw_code"][row]),
                float(columns["end_time"][row]),
            )
            migrations.setdefault(owner[dest], []).append(payload)
        # Boundary mirrors: engine.now == until and nothing runs before
        # the next barrier, so these are the barrier-time values.
        mirrors: dict[int, list] = {}
        for target, cells in self.plan.boundary[self.index].items():
            mirrors[target] = [
                (
                    cell,
                    self._activity[cell],
                    station(cell).estimator.max_sojourn(until),
                )
                for cell in cells
            ]
        return mirrors, migrations

    # -- event handlers --------------------------------------------------
    def _on_arrival(self, cell_id: int) -> None:
        now = self.engine.now
        next_time = self._arrivals[cell_id].next_arrival(
            now, self._arrival_rngs[cell_id]
        )
        if next_time is not None and next_time <= self.duration:
            self.engine.call_at(
                next_time,
                self._on_arrival,
                cell_id,
                priority=EventPriority.ARRIVAL,
            )
        index = self._arrival_index[cell_id]
        self._arrival_index[cell_id] = index + 1
        self._handle_request(cell_id, index, 1)

    def _handle_request(self, cell_id: int, arr_index: int, attempt: int) -> None:
        now = self.engine.now
        self.semantic_events += 1
        rng = _CoordStream(self.seed, _TAG_REQUEST, cell_id, arr_index, attempt)
        traffic_class = self.mix.sample(rng)
        cell = self._cells[cell_id]
        admitted = cell.fits_new_connection(traffic_class.bandwidth)
        metrics = self.metrics
        # record_admission_test(0, 0) inlined: the local test costs no
        # Eq. 6 calculations and no messages, only the counter moves.
        metrics.total_admission_tests += 1
        metrics.record_request(cell_id, now, blocked=not admitted)
        if not admitted:
            if self.retry.should_retry(attempt, rng):
                self.engine.call_in(
                    self.retry.delay,
                    self._handle_request,
                    cell_id,
                    arr_index,
                    attempt + 1,
                    priority=EventPriority.ARRIVAL,
                )
            return
        # Same draw order as HexMobilityModel.spawn: population class,
        # then an initial heading for moving mobiles.
        draw = rng.random()
        cumulative = 0.0
        pop_index = len(self.population) - 1
        for position, member in enumerate(self.population):
            cumulative += member.fraction
            if draw < cumulative:
                pop_index = position
                break
        member = self.population[pop_index]
        heading = rng.randrange(6) if member.mean_sojourn > 0 else 0
        lifetime = rng.expovariate(1.0 / self.config.mean_lifetime)
        store = self.store
        row = store.alloc()
        columns = store.columns
        columns["entry_time"][row] = now
        columns["end_time"][row] = now + lifetime
        columns["cell"][row] = cell_id
        columns["prev"][row] = -1
        columns["birth_cell"][row] = cell_id
        columns["birth_seq"][row] = arr_index
        columns["hops"][row] = 0
        columns["bw_code"][row] = 0 if traffic_class is VOICE else 1
        columns["pop"][row] = pop_index
        columns["heading"][row] = heading
        cell.attach_row(row)
        self._activity[cell_id] = True
        # Horizon clamp: the engine never fires an event past
        # ``duration``, so scheduling one only grows the heap.  A
        # connection outliving the run simply stays attached to the end
        # — exactly what the unclamped schedule would produce.
        if now + lifetime <= self.duration:
            self._end_events[row] = self.engine.call_at(
                now + lifetime,
                self._on_lifetime_end,
                row,
                priority=EventPriority.DEPARTURE,
            )
        self._schedule_crossing(row)

    def _schedule_crossing(self, row: int) -> None:
        store = self.store
        columns = store.columns
        member = self.population[columns["pop"][row]]
        if member.mean_sojourn <= 0:
            return
        cell_id = columns["cell"][row]
        # Same draw order as HexMobilityModel.next_transition, keyed by
        # birth coordinates + hop count so the stream is identical no
        # matter which shard executes the hop.
        rng = _CoordStream(
            self.seed,
            _TAG_HOP,
            columns["birth_cell"][row],
            columns["birth_seq"][row],
            columns["hops"][row],
        )
        sojourn = rng.expovariate(1.0 / member.mean_sojourn)
        heading = columns["heading"][row] % 6
        if rng.random() < member.heading_persistence:
            index = heading
        else:
            index = (heading + rng.choice((-1, 1))) % 6
        columns["heading"][row] = index
        neighbors = self._neighbors[cell_id]
        next_cell = neighbors[index % len(neighbors)]
        ctime = self.engine.now + max(sojourn, HexMobilityModel.MIN_NOTICE)
        if ctime > self.duration:
            # Horizon clamp (same as the lifetime end): a crossing past
            # the run end never fires locally and its shipped half would
            # never fire on the destination either.
            return
        serial = store.serial_of(row)
        self._crossing_events[row] = self.engine.call_at(
            ctime,
            self._on_crossing,
            row,
            serial,
            next_cell,
            priority=EventPriority.HANDOFF,
        )
        if self.plan.owner[next_cell] != self.index:
            heapq.heappush(self._outgoing, (ctime, row, serial, next_cell))

    def _on_crossing(self, row: int, serial: int, next_cell: int) -> None:
        store = self.store
        if store.serial_of(row) != serial:
            return
        self._crossing_events.pop(row, None)
        now = self.engine.now
        columns = store.columns
        old_cell = columns["cell"][row]
        prev = columns["prev"][row]
        self._stations[old_cell].record_departure(
            now,
            None if prev < 0 else prev,
            next_cell,
            columns["entry_time"][row],
        )
        # Detach while the prev/entry_time columns still hold their
        # attach-time values (detach_row locates the reservation bucket
        # through them).
        self._cells[old_cell].detach_row(row)
        self._activity[old_cell] = True
        if self.plan.owner[next_cell] != self.index:
            # Departure half only: the arrival half was shipped at the
            # previous barrier and runs on the destination's owner.
            store.free(row)
            return
        self.semantic_events += 1
        dropped = not self._cells[next_cell].fits_handoff(
            BANDWIDTH_TABLE[columns["bw_code"][row]]
        )
        self._stations[next_cell].window.on_handoff(
            dropped, self._nms[next_cell], now
        )
        self.metrics.record_handoff(next_cell, now, dropped=dropped)
        self._activity[next_cell] = True
        if dropped:
            end_event = self._end_events.pop(row, None)
            if end_event is not None:
                end_event.cancel()
            store.free(row)
            return
        columns["prev"][row] = old_cell
        columns["entry_time"][row] = now
        columns["cell"][row] = next_cell
        columns["hops"][row] += 1
        self._cells[next_cell].attach_row(row)
        self._schedule_crossing(row)

    def _on_migration(self, payload: tuple) -> None:
        (
            _,
            dest,
            old_cell,
            birth_cell,
            birth_seq,
            hops,
            heading,
            pop_index,
            bw_code,
            end_time,
        ) = payload
        now = self.engine.now
        self.semantic_events += 1
        dropped = not self._cells[dest].fits_handoff(
            BANDWIDTH_TABLE[bw_code]
        )
        self._stations[dest].window.on_handoff(
            dropped, self._nms[dest], now
        )
        self.metrics.record_handoff(dest, now, dropped=dropped)
        self._activity[dest] = True
        if dropped:
            return
        store = self.store
        row = store.alloc()
        columns = store.columns
        columns["entry_time"][row] = now
        columns["end_time"][row] = end_time
        columns["cell"][row] = dest
        columns["prev"][row] = old_cell
        columns["birth_cell"][row] = birth_cell
        columns["birth_seq"][row] = birth_seq
        columns["hops"][row] = hops + 1
        columns["bw_code"][row] = bw_code
        columns["pop"][row] = pop_index
        columns["heading"][row] = heading
        self._cells[dest].attach_row(row)
        if end_time <= self.duration:
            self._end_events[row] = self.engine.call_at(
                end_time,
                self._on_lifetime_end,
                row,
                priority=EventPriority.DEPARTURE,
            )
        self._schedule_crossing(row)

    def _on_lifetime_end(self, row: int) -> None:
        now = self.engine.now
        self.semantic_events += 1
        self._end_events.pop(row, None)
        crossing = self._crossing_events.pop(row, None)
        if crossing is not None:
            crossing.cancel()
        store = self.store
        cell_id = store.columns["cell"][row]
        self._cells[cell_id].detach_row(row)
        self.metrics.record_completion(cell_id, now)
        self._activity[cell_id] = True
        store.free(row)

    def _on_sample(self) -> None:
        now = self.engine.now
        warm = now >= self.config.warmup
        station = self.network.station
        for cell_id in self.owned:
            cell_station = station(cell_id)
            reserved = cell_station.cell.reserved_target
            used = cell_station.cell.used_bandwidth
            self.metrics.sample_cell(
                cell_id, now, reserved, used, cell_station.t_est
            )
            if warm:
                sums = self._sample_sums[cell_id]
                sums[0] += reserved
                sums[1] += used
                sums[2] += 1
        next_time = now + self.config.sample_interval
        if next_time <= self.duration:
            self.engine.call_at(
                next_time, self._on_sample, priority=EventPriority.MONITOR
            )

    # -- finalisation ----------------------------------------------------
    def _harvest_telemetry(self) -> dict | None:
        tel = self.telemetry
        if not tel.enabled:
            return None
        engine = self.engine
        tel.counter("des.events_fired").inc(engine.events_processed)
        tel.counter("des.events_cancelled").inc(engine.events_cancelled)
        tel.counter("des.heap_compactions").inc(engine.heap_compactions)
        tel.counter("spatial.semantic_events").inc(self.semantic_events)
        tel.gauge("spatial.store_bytes").set(self.store.nbytes)
        tel.gauge("spatial.peak_live_connections").set(self.peak_live)
        # Balance observables: this shard's executed events and its
        # planned load share, plus the fraction of wall time spent at
        # barriers instead of running events — the dashboard and the
        # `ac3_spatial` benches read imbalance off these.
        shard = str(self.index)
        tel.gauge("spatial.shard_events", shard=shard).set(
            self.semantic_events
        )
        loads = self.plan.loads
        total_load = sum(loads) if loads else 0.0
        if total_load > 0:
            tel.gauge("spatial.load_share", shard=shard).set(
                round(loads[self.index] / total_load, 6)
            )
        elapsed = wall_clock.perf_counter() - self._wall_started
        if elapsed > 0:
            tel.gauge("spatial.barrier_wait_frac", shard=shard).set(
                round(max(0.0, 1.0 - self._run_wall / elapsed), 4)
            )
        messages = updates = 0
        for cell_id in self.owned:
            station = self.network.station(cell_id)
            messages += station.messages_sent
            updates += station.reservation_calculations
        tel.counter("cellular.messages_sent").inc(messages)
        tel.counter("cellular.reservation_updates").inc(updates)
        tel.counter("cellular.admission_tests").inc(
            self.metrics.total_admission_tests
        )
        return tel.snapshot()

    def finish(self, collect_state: bool = False) -> ShardResult:
        series = None
        if self.sampler is not None:
            self.sampler.final()
            series = self.sampler.series()
        trace = self.tracer.events()
        metrics = self.metrics
        statuses = {}
        for cell_id in self.owned:
            station = self.network.station(cell_id)
            counters = metrics.cells[cell_id]
            statuses[cell_id] = CellStatus(
                cell_id=cell_id,
                blocking_probability=counters.blocking_probability,
                dropping_probability=counters.dropping_probability,
                t_est=station.t_est,
                reserved_target=station.cell.reserved_target,
                used_bandwidth=station.cell.used_bandwidth,
            )
        hourly = {
            hour: (
                bucket.new_requests,
                bucket.blocked,
                bucket.handoff_attempts,
                bucket.handoff_drops,
            )
            for hour, bucket in metrics.hourly.items()
        }
        state = None
        if collect_state:
            state = {}
            for cell_id in self.owned:
                cache = getattr(
                    self.network.station(cell_id).estimator, "cache", None
                )
                if cache is None:
                    continue
                columns = cache.export_columns(self.duration)
                if columns:
                    state[cell_id] = columns
        return ShardResult(
            index=self.index,
            cells={cell: metrics.cells[cell] for cell in self.owned},
            statuses=statuses,
            hourly=hourly,
            t_est_traces=dict(metrics.t_est_traces),
            reservation_traces=dict(metrics.reservation_traces),
            phd_traces=dict(metrics.phd_traces),
            sample_sums={
                cell: tuple(sums) for cell, sums in self._sample_sums.items()
            },
            admission_tests=metrics.total_admission_tests,
            calculations=metrics.total_calculations,
            messages=metrics.total_messages,
            events=self.semantic_events,
            telemetry=self._harvest_telemetry(),
            state=state,
            store_bytes=self.store.nbytes,
            peak_live=self.peak_live,
            series=series,
            trace=trace,
        )


# ----------------------------------------------------------------------
# shard hosts
# ----------------------------------------------------------------------
class LocalShardHost:
    """In-process shard host: the sequential reference executor.

    Runs the identical barrier protocol without processes — the N=1
    path, the determinism tests, and a zero-overhead fallback when the
    host has fewer cores than shards.
    """

    def __init__(self, config, plan, index, epoch):
        self._engine = ShardEngine(config, plan, index, epoch)
        self._pending = None

    def send(self, op: str, *args) -> None:
        engine = self._engine
        if op == "barrier":
            self._pending = engine.barrier_begin(*args)
        elif op == "evaluate":
            self._pending = engine.evaluate(*args)
        elif op == "epoch":
            self._pending = engine.run_epoch(*args)
        elif op == "finish":
            self._pending = engine.finish(*args)
        else:  # pragma: no cover - protocol misuse
            raise ValueError(f"unknown shard op {op!r}")

    def recv(self):
        pending, self._pending = self._pending, None
        return pending

    def close(self) -> None:
        pass


def _shard_worker(conn, config, plan, index, epoch) -> None:
    """Persistent worker process: one ShardEngine driven over a pipe."""
    import gc
    import traceback

    try:
        engine = ShardEngine(config, plan, index, epoch)
    except Exception:
        conn.send(("error", traceback.format_exc()))
        return
    # The network, topology, and estimator caches built above live for
    # the whole worker lifetime.  Freezing them keeps every later gen-2
    # collection from rescanning tens of thousands of immortal cell and
    # estimator objects each epoch, and (under fork) stops the collector
    # from touching inherited pages, preserving copy-on-write sharing.
    gc.collect()
    gc.freeze()
    while True:
        try:
            op, args = conn.recv()
        except EOFError:
            return
        if op == "stop":
            return
        try:
            if op == "barrier":
                value = engine.barrier_begin(*args)
            elif op == "evaluate":
                value = engine.evaluate(*args)
            elif op == "epoch":
                value = engine.run_epoch(*args)
            elif op == "finish":
                value = engine.finish(*args)
            else:
                raise ValueError(f"unknown shard op {op!r}")
        except Exception:
            conn.send(("error", traceback.format_exc()))
            return
        conn.send(("ok", value))


class ProcessShardHost:
    """A shard in a persistent worker process, driven over a Pipe.

    The coordinator sends one command per barrier phase to every host
    before collecting any reply, so shards run their epochs in
    parallel.
    """

    def __init__(self, config, plan, index, epoch, ctx):
        parent_conn, child_conn = ctx.Pipe()
        self._conn = parent_conn
        self._process = ctx.Process(
            target=_shard_worker,
            args=(child_conn, config, plan, index, epoch),
            daemon=True,
        )
        self._process.start()
        child_conn.close()

    def send(self, op: str, *args) -> None:
        self._conn.send((op, args))

    def recv(self):
        status, value = self._conn.recv()
        if status != "ok":
            raise RuntimeError(f"shard worker failed:\n{value}")
        return value

    def close(self) -> None:
        try:
            self._conn.send(("stop", ()))
        except (BrokenPipeError, OSError):  # pragma: no cover - dying worker
            pass
        self._process.join(timeout=10)
        if self._process.is_alive():  # pragma: no cover - hung worker
            self._process.terminate()
            self._process.join(timeout=5)
        self._conn.close()


# ----------------------------------------------------------------------
# coordinator
# ----------------------------------------------------------------------
class _EngineView:
    """Coordinator-side engine facade for :class:`ProgressReporter`.

    Aggregates the per-shard ``(now, events, heap)`` stats returned at
    each barrier into the two attributes the reporter reads, so one
    progress line covers the whole sharded run.
    """

    def __init__(self) -> None:
        self.now = 0.0
        self.events_processed = 0

    def update(self, stats_list) -> None:
        self.now = min(stats[0] for stats in stats_list)
        self.events_processed = sum(stats[1] for stats in stats_list)


def _merge_results(
    config: SimulationConfig,
    plan: ShardPlan,
    results: list[ShardResult],
    epoch: float,
    wall_seconds: float,
) -> SimulationResult:
    """Merge shard results in cell-id order (shard-count-invariant)."""
    num_cells = len(plan.owner)
    by_cell_counters = {}
    by_cell_status = {}
    for result in results:
        by_cell_counters.update(result.cells)
        by_cell_status.update(result.statuses)
    cells = [by_cell_counters[cell] for cell in range(num_cells)]
    statuses = [by_cell_status[cell] for cell in range(num_cells)]
    reservation_sum = 0.0
    used_sum = 0.0
    samples = 0
    sample_sums = {}
    for result in results:
        sample_sums.update(result.sample_sums)
    for cell in range(num_cells):
        cell_res, cell_used, cell_samples = sample_sums[cell]
        reservation_sum += cell_res
        used_sum += cell_used
        samples += cell_samples
    tests = sum(result.admission_tests for result in results)
    calculations = sum(result.calculations for result in results)
    messages = sum(result.messages for result in results)
    hourly_totals: dict[int, list[int]] = {}
    for result in results:
        for hour, values in result.hourly.items():
            bucket = hourly_totals.setdefault(hour, [0, 0, 0, 0])
            for position in range(4):
                bucket[position] += values[position]
    hourly = [
        HourlyBucket(hour, *hourly_totals[hour])
        for hour in sorted(hourly_totals)
    ]
    t_est_traces = {}
    reservation_traces = {}
    phd_traces = {}
    for result in results:
        t_est_traces.update(result.t_est_traces)
        reservation_traces.update(result.reservation_traces)
        phd_traces.update(result.phd_traces)
    by_shard = sorted(results, key=lambda result: result.index)
    shard_events = tuple(result.events for result in by_shard)
    events = sum(shard_events)
    if config.sample_interval > 0:
        events += int(config.duration / config.sample_interval + 1e-9)
    snapshots = [
        result.telemetry for result in results if result.telemetry is not None
    ]
    if config.scheme.lower() == "static":
        policy = make_policy("static", guard_bandwidth=config.static_guard)
    else:
        policy = make_policy(config.scheme)
    return SimulationResult(
        label=config.label or config.scheme,
        scheme=policy.name,
        offered_load=config.offered_load,
        duration=config.duration,
        warmup=config.warmup,
        num_cells=num_cells,
        cells=cells,
        statuses=statuses,
        average_reservation=reservation_sum / samples if samples else 0.0,
        average_used=used_sum / samples if samples else 0.0,
        average_calculations=calculations / tests if tests else 0.0,
        average_messages=messages / tests if tests else 0.0,
        total_admission_tests=tests,
        hourly=hourly,
        t_est_traces=t_est_traces,
        reservation_traces=reservation_traces,
        phd_traces=phd_traces,
        events_processed=events,
        wall_seconds=wall_seconds,
        run_id=config.run_id or new_run_id(),
        telemetry=merge_snapshots(snapshots) if snapshots else None,
        timeseries=merge_series(result.series for result in results),
        trace_events=merge_traces(result.trace for result in results),
        shard_events=shard_events,
    )


def _resolve_plan(
    config: SimulationConfig, shards: int, plan_kind: str | None
) -> ShardPlan:
    """Build the shard plan a run asked for.

    ``plan_kind=None`` falls back to ``config.extra["shard_plan"]``
    (scenario default), then ``"rows"``.  ``"load"`` and ``"tiles"``
    balance by the scenario's per-cell weights when present.
    """
    rows, cols, wrap = _hex_dimensions(config)
    topology = HexTopology(rows, cols, wrap=wrap)
    kind = plan_kind or (config.extra or {}).get("shard_plan") or "rows"
    weights = cell_load_weights(config)
    return partition_hex(topology, shards, kind=kind, weights=weights)


def run_spatial(
    config: SimulationConfig,
    shards: int,
    *,
    processes: bool | None = None,
    epoch: float = 1.0,
    collect_state: bool = False,
    plan_kind: str | None = None,
):
    """Run a hex city across ``shards`` shard regions.

    ``plan_kind`` picks the partition strategy (``"rows"``, ``"load"``,
    ``"tiles"``; default from ``config.extra["shard_plan"]`` or rows).
    ``processes=None`` uses worker processes whenever ``shards > 1``;
    ``False`` forces the in-process sequential hosts (tests, or
    core-starved machines); ``True`` forces one process per shard.
    Returns the merged :class:`SimulationResult` — bit-identical in
    :meth:`~SimulationResult.metrics_key` for every shard count and
    plan kind — or a ``(result, state)`` pair when ``collect_state`` is
    set, where ``state`` maps every cell to its exported quadruplet
    columns.
    """
    check_spatial_config(config, epoch)
    plan = _resolve_plan(config, shards, plan_kind)
    if processes is None:
        processes = shards > 1
    started = wall_clock.perf_counter()
    hosts = []
    try:
        if processes:
            import multiprocessing

            # Prefer fork (as the sweep pool does): workers inherit the
            # warm interpreter instead of re-importing numpy apiece,
            # which otherwise dominates short runs.  The engine is still
            # built inside the worker from the pickled plan, so the
            # start method never affects results.
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context(
                "fork" if "fork" in methods else "spawn"
            )
            hosts = [
                ProcessShardHost(config, plan, index, epoch, ctx)
                for index in range(shards)
            ]
        else:
            hosts = [
                LocalShardHost(config, plan, index, epoch)
                for index in range(shards)
            ]
        epochs = max(1, -int(-config.duration // epoch))
        reporter = None
        view = None
        if config.progress_interval > 0:
            view = _EngineView()
            reporter = ProgressReporter(
                view,
                config.duration,
                interval=config.progress_interval,
                label=f"{config.label or config.scheme} x{shards}sh",
            )
        pending = [({}, {}, None) for _ in range(shards)]
        for k in range(epochs):
            mirrors_for = [[] for _ in range(shards)]
            migrations_for = [[] for _ in range(shards)]
            for shard_mirrors, shard_migrations, _ in pending:
                for target, items in shard_mirrors.items():
                    mirrors_for[target].extend(items)
                for target, items in shard_migrations.items():
                    migrations_for[target].extend(items)
            for items in migrations_for:
                # Deterministic scheduling order no matter which source
                # shard shipped each hand-off.
                items.sort()
            for index, host in enumerate(hosts):
                host.send("barrier", k, mirrors_for[index], migrations_for[index])
            request_batches = [host.recv() for host in hosts]
            requests_for = [[] for _ in range(shards)]
            for batch in request_batches:
                for supplier, target, t_est in batch:
                    requests_for[plan.owner[supplier]].append(
                        (supplier, target, t_est)
                    )
            for index, host in enumerate(hosts):
                host.send("evaluate", requests_for[index])
            reply_batches = [host.recv() for host in hosts]
            replies_for = [[] for _ in range(shards)]
            for batch in reply_batches:
                for supplier, target, value in batch:
                    replies_for[plan.owner[target]].append(
                        (supplier, target, value)
                    )
            for index, host in enumerate(hosts):
                host.send("epoch", k, replies_for[index])
            pending = [host.recv() for host in hosts]
            if reporter is not None:
                view.update([stats for _, _, stats in pending])
                reporter.beat()
        for host in hosts:
            host.send("finish", collect_state)
        results = [host.recv() for host in hosts]
        if reporter is not None:
            reporter.final()
    finally:
        for host in hosts:
            host.close()
    wall_seconds = wall_clock.perf_counter() - started
    merged = _merge_results(config, plan, results, epoch, wall_seconds)
    if collect_state:
        state = {}
        for result in results:
            state.update(result.state or {})
        return merged, state
    return merged


# ----------------------------------------------------------------------
# campaign support: per-shard checkpoints + merged manifest
# ----------------------------------------------------------------------
def write_spatial_checkpoint(
    day_dir, plan: ShardPlan, state: dict, meta: dict
) -> dict:
    """Write one shard checkpoint file per shard plus ``manifest.json``.

    Each shard file carries its owned cells' exported quadruplet
    columns as canonical JSON; the manifest records one CRC-32 per
    file so a later warm start fails loudly on torn or edited
    checkpoints (same contract as the durable state store).
    """
    day_dir = Path(day_dir)
    day_dir.mkdir(parents=True, exist_ok=True)
    entries = []
    for shard in range(plan.shards):
        cells_payload = {}
        for cell in plan.cells[shard]:
            columns = state.get(cell)
            if not columns:
                continue
            cells_payload[str(cell)] = {
                (
                    f"{'-' if prev is None else prev}:{next_cell}"
                ): [list(times), list(sojourns)]
                for (prev, next_cell), (times, sojourns) in sorted(
                    columns.items(),
                    key=lambda item: (item[0][0] is not None, item[0]),
                )
            }
        payload = {"shard": shard, "cells": cells_payload}
        encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        path = day_dir / f"shard-{shard:02d}.json"
        path.write_text(encoded)
        entries.append(
            {
                "file": path.name,
                "crc32": zlib.crc32(encoded.encode("utf-8")),
                "cells": len(cells_payload),
            }
        )
    manifest = dict(meta)
    #: Manifest schema: v1 (implicit — no field) carried row-band plans
    #: only; v2 stamps the version plus the plan kind that produced the
    #: shard files.  The payload format is unchanged, so v1 manifests
    #: still load.
    manifest["schema"] = 2
    manifest["shards"] = plan.shards
    manifest["plan_kind"] = plan.kind
    manifest["files"] = entries
    (day_dir / "manifest.json").write_text(
        json.dumps(manifest, indent=2, sort_keys=True)
    )
    return manifest


def load_spatial_checkpoint(day_dir) -> dict:
    """Load and CRC-verify a day checkpoint back into export form.

    Accepts schema v1 (pre-plan-kind manifests without a ``schema``
    field) and v2; anything newer fails loudly rather than guessing.
    The exports are keyed by cell id, so a checkpoint written under one
    shard plan warm-starts a run under any other.
    """
    day_dir = Path(day_dir)
    manifest = json.loads((day_dir / "manifest.json").read_text())
    schema = manifest.get("schema", 1)
    if schema not in (1, 2):
        raise ValueError(
            f"spatial checkpoint schema {schema} is newer than this "
            f"reader (understands 1-2): {day_dir / 'manifest.json'}"
        )
    exports: dict = {}
    for entry in manifest["files"]:
        path = day_dir / entry["file"]
        raw = path.read_text()
        if zlib.crc32(raw.encode("utf-8")) != entry["crc32"]:
            raise ValueError(f"spatial checkpoint corrupted: {path}")
        payload = json.loads(raw)
        for cell_text, pairs in payload["cells"].items():
            cell_exports = {}
            for key, (times, sojourns) in pairs.items():
                prev_text, next_text = key.split(":")
                prev = None if prev_text == "-" else int(prev_text)
                cell_exports[(prev, int(next_text))] = (
                    [float(value) for value in times],
                    [float(value) for value in sojourns],
                )
            exports[int(cell_text)] = cell_exports
    return exports


@dataclass
class SpatialDayResult:
    """Summary of one simulated day of a spatial campaign."""

    day: int
    seed: int
    blocking_probability: float
    dropping_probability: float
    events: int
    quadruplets: int
    wall_seconds: float
    checkpoint: str


def run_spatial_campaign(
    config: SimulationConfig,
    shards: int,
    days: int,
    state_dir,
    *,
    processes: bool | None = None,
    epoch: float = 1.0,
    jsonl_path=None,
    plan_kind: str | None = None,
) -> list[SpatialDayResult]:
    """Run ``days`` chained spatial days, warm-starting each from disk.

    Day ``d`` runs with seed ``RandomStreams(config.seed).spawn(d)``;
    its estimator history is checkpointed per shard under
    ``state_dir/day-<d>/`` and day ``d+1`` warm-starts from the
    *written files* (CRC-verified), so a campaign interrupted between
    days resumes from durable state.
    """
    if days < 1:
        raise ValueError("days must be >= 1")
    check_spatial_config(config, epoch)
    rows, cols, wrap = _hex_dimensions(config)
    plan = _resolve_plan(config, shards, plan_kind)
    state_dir = Path(state_dir)
    state_dir.mkdir(parents=True, exist_ok=True)
    streams = RandomStreams(config.seed)
    store = None
    handle = None
    reports: list[SpatialDayResult] = []
    jsonl = Path(jsonl_path) if jsonl_path is not None else None
    try:
        for day in range(days):
            day_seed = streams.spawn(day).seed
            day_config = replace(
                config,
                seed=day_seed,
                warm_state=handle,
                run_id=f"{config.run_id or 'spatial-campaign'}-day{day}",
            )
            result, state = run_spatial(
                day_config,
                shards,
                processes=processes,
                epoch=epoch,
                collect_state=True,
                plan_kind=plan.kind,
            )
            day_dir = state_dir / f"day-{day:03d}"
            write_spatial_checkpoint(
                day_dir,
                plan,
                state,
                {
                    "day": day,
                    "seed": day_seed,
                    "base_seed": config.seed,
                    "hex_rows": rows,
                    "hex_cols": cols,
                    "hex_wrap": wrap,
                    "scheme": config.scheme,
                },
            )
            # Warm-start the next day from the durable files, not the
            # in-memory state: proves the checkpoint round trip daily.
            exports = load_spatial_checkpoint(day_dir)
            if store is not None:
                store.close()
            store = SharedColumnStore(exports)
            handle = store.handle()
            quadruplets = sum(
                len(times)
                for pairs in exports.values()
                for times, _ in pairs.values()
            )
            report = SpatialDayResult(
                day=day,
                seed=day_seed,
                blocking_probability=result.blocking_probability,
                dropping_probability=result.dropping_probability,
                events=result.events_processed,
                quadruplets=quadruplets,
                wall_seconds=result.wall_seconds,
                checkpoint=str(day_dir),
            )
            reports.append(report)
            if jsonl is not None:
                with jsonl.open("a", encoding="utf-8") as stream:
                    stream.write(
                        json.dumps(
                            {
                                "day": report.day,
                                "seed": report.seed,
                                "p_cb": report.blocking_probability,
                                "p_hd": report.dropping_probability,
                                "events": report.events,
                                "quadruplets": report.quadruplets,
                                "checkpoint": report.checkpoint,
                            },
                            sort_keys=True,
                        )
                        + "\n"
                    )
    finally:
        if store is not None:
            store.close()
    return reports
