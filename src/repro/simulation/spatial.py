"""City-scale spatial sharding: one DES engine per hex row-band.

The paper's scheme is strictly local — every base station talks only to
its ``A_0`` neighbours — so a :class:`~repro.cellular.topology.HexTopology`
city partitions cleanly into contiguous row-bands with a one-cell-deep
boundary.  Each shard runs its own engine over the cells it *owns* and
exchanges three kinds of boundary traffic as message batches at epoch
barriers:

* **mirrors** — per boundary cell: its activity flag and its
  estimator's ``max_sojourn`` at the barrier instant (feeds the
  neighbour shard's dirty set and window-controller ``T_soj,max``);
* **reservation requests/replies** — Eq. 5 contributions crossing the
  cut, batched through ``outgoing_reservation_multi``;
* **migrations** — hand-offs whose destination cell lives in another
  shard, shipped one barrier ahead of their crossing time.

Determinism for *any* shard count (the acceptance bar: ``metrics_key()``
bit-identical for N ∈ {1, 2, 4}) comes from an epoch-synchronous
protocol variant with identical semantics at every N, including N=1:

* Cross-cell reads happen **only at barriers**.  Mid-epoch admission is
  cell-local: a new request runs Eq. 1 against the barrier-installed
  ``B_r`` (0 calculations / 0 messages per test — the protocol work is
  accounted at the barrier), a hand-off runs the Eq. 2 overload test at
  its destination, and the window controller is fed the epoch-start
  neighbourhood-max-sojourn mirror.
* ``B_r`` refreshes at each barrier for the *dirty* set — cells whose
  own or neighbouring cells saw an attach/detach/departure/hand-off in
  the finished epoch — via one sorted ``outgoing_reservation_multi``
  call per supplier.  Suppliers and requests are processed in cell-id
  order, and Eq. 6 installs in target-id order, so float addition
  order is shard-independent.
* Every random draw comes from an sha256-derived stream keyed by
  *simulation* coordinates (cell, arrival index, hop count), never by
  scheduling history, so shards draw identical values no matter who
  owns the cell.  Connection ids are likewise deterministic:
  ``birth_seq * num_cells + birth_cell``.
* The epoch length must not exceed the minimum hand-off notice
  (:attr:`HexMobilityModel.MIN_NOTICE`): a crossing landing in epoch
  ``j`` was drawn in epoch ``j-1`` or earlier, so shipping the
  outgoing heap up to ``(k + 2) * epoch`` at the end of epoch ``k``
  delivers every boundary hand-off exactly one barrier ahead of its
  crossing time.  The destination schedules it at the barrier with
  ``now = T_j < crossing time``, preserving engine-time monotonicity.

Events at exactly equal virtual times order by (priority, scheduling
sequence); the protocol never schedules two *cross-shard-visible*
events at the same instant except lifetime-vs-crossing ties, which
resolve identically at every N (DEPARTURE fires before HANDOFF).
Crossing/lifetime instants are continuous exponential draws, so
coincidences between distinct connections have measure zero.

Hot state lives in the struct-of-arrays stores of
:mod:`repro.simulation.columnar`; the per-connection footprint is the
column row plus a two-word handle.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import random
import time as wall_clock
import zlib
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro._kernel import kernel_name, set_kernel
from repro.cellular.network import CellularNetwork
from repro.cellular.topology import HexTopology
from repro.core.admission import make_policy
from repro.core.reservation import aggregate_reservation
from repro.core.window import WindowControllerConfig
from repro.des.engine import Engine
from repro.des.events import Event, EventPriority
from repro.des.random import RandomStreams
from repro.estimation.cache import CacheConfig
from repro.mobility.models import DEFAULT_HEX_POPULATION, HexMobilityModel
from repro.obs.logs import ensure_configured
from repro.obs.progress import ProgressReporter
from repro.obs.telemetry import begin_run, merge_snapshots, new_run_id
from repro.obs.timeseries import TimeSeriesSampler, merge_series
from repro.obs.trace import begin_trace, merge_traces
from repro.simulation.columnar import (
    BANDWIDTH_TABLE,
    ConnectionStore,
    handle_class,
)
from repro.simulation.config import SimulationConfig
from repro.simulation.metrics import (
    CellStatus,
    HourlyBucket,
    MetricsCollector,
    SimulationResult,
)
from repro.simulation.shared_state import SharedColumnsHandle, SharedColumnStore
from repro.traffic.arrivals import (
    ModulatedPoissonArrivals,
    PoissonArrivals,
    RetryPolicy,
)
from repro.traffic.classes import VOICE, TrafficMix

#: Schemes the epoch-synchronous protocol supports.  The adaptive
#: schemes (AC1-3) collapse to the same barrier-driven dirty-set
#: refresh; "static" skips the refresh entirely.
_SCHEMES = ("static", "ac1", "ac2", "ac3")


# ----------------------------------------------------------------------
# partitioning
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardPlan:
    """A row-band partition of a hex city.

    ``owner[cell]`` is the shard owning each cell; ``cells[s]`` the
    ascending cell ids owned by shard ``s``; ``boundary[s][t]`` the
    ascending cells of ``s`` with at least one neighbour owned by
    ``t`` (the mirror set shipped from ``s`` to ``t`` every barrier).
    """

    shards: int
    owner: tuple[int, ...]
    cells: tuple[tuple[int, ...], ...]
    boundary: tuple[dict[int, tuple[int, ...]], ...]


def partition_hex(topology: HexTopology, shards: int) -> ShardPlan:
    """Partition ``topology`` into contiguous row-band shards.

    Hex neighbours span at most one row up/down (wrap included), so a
    row-band cut has a one-cell-deep boundary and every cross-cut edge
    connects adjacent bands (or the first/last band under wrap).
    """
    bands = topology.row_bands(shards)
    owner = [0] * topology.num_cells
    cells: list[tuple[int, ...]] = []
    for shard, (start_row, end_row) in enumerate(bands):
        owned = [
            topology.cell_id(row, col)
            for row in range(start_row, end_row)
            for col in range(topology.cols)
        ]
        for cell in owned:
            owner[cell] = shard
        cells.append(tuple(owned))
    boundary: list[dict[int, tuple[int, ...]]] = []
    for shard in range(shards):
        per_target: dict[int, list[int]] = {}
        for cell in cells[shard]:
            for neighbor in topology.neighbors(cell):
                target = owner[neighbor]
                if target != shard:
                    bucket = per_target.setdefault(target, [])
                    if not bucket or bucket[-1] != cell:
                        bucket.append(cell)
        boundary.append(
            {target: tuple(per_target[target]) for target in sorted(per_target)}
        )
    return ShardPlan(
        shards=shards,
        owner=tuple(owner),
        cells=tuple(cells),
        boundary=tuple(boundary),
    )


def _derived_rng(seed: int, *parts) -> random.Random:
    """A deterministic stream keyed by simulation coordinates.

    Same derivation style as :meth:`repro.des.random.RandomStreams.get`
    (sha256 of a string key), but built on demand from stable keys —
    per-request and per-transition streams never depend on which shard
    draws them or in what order.
    """
    key = ":".join(str(part) for part in ("spatial", seed, *parts))
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def _hex_dimensions(config: SimulationConfig) -> tuple[int, int, bool]:
    extra = config.extra or {}
    rows = extra.get("hex_rows")
    cols = extra.get("hex_cols")
    if rows is None or cols is None:
        raise ValueError(
            "spatial runs need a hex city: set config.extra['hex_rows'] / "
            "['hex_cols'] (see repro.simulation.scenarios.hex_city)"
        )
    return int(rows), int(cols), bool(extra.get("hex_wrap", True))


def check_spatial_config(config: SimulationConfig, epoch: float) -> None:
    """Reject configurations the epoch-synchronous protocol cannot honour."""
    rows, cols, _ = _hex_dimensions(config)
    if rows * cols != config.num_cells:
        raise ValueError(
            f"config.num_cells={config.num_cells} does not match the "
            f"{rows}x{cols} hex grid"
        )
    if config.scheme.lower() not in _SCHEMES:
        raise ValueError(f"unsupported spatial scheme {config.scheme!r}")
    if config.adaptive_qos:
        raise ValueError("adaptive QoS is not supported in spatial runs")
    if config.soft_handoff_window > 0:
        raise ValueError("soft hand-off is not supported in spatial runs")
    if not 0 < epoch <= HexMobilityModel.MIN_NOTICE:
        raise ValueError(
            f"epoch must be in (0, {HexMobilityModel.MIN_NOTICE}] so every "
            "boundary hand-off is known one barrier ahead"
        )


# ----------------------------------------------------------------------
# per-shard engine
# ----------------------------------------------------------------------
@dataclass
class ShardResult:
    """Everything one shard contributes to the merged result."""

    index: int
    cells: dict[int, object]
    statuses: dict[int, CellStatus]
    hourly: dict[int, tuple[int, int, int, int]]
    t_est_traces: dict[int, list]
    reservation_traces: dict[int, list]
    phd_traces: dict[int, list]
    sample_sums: dict[int, tuple[float, float, int]]
    admission_tests: int
    calculations: int
    messages: int
    events: int
    telemetry: dict | None = None
    state: dict | None = None
    store_bytes: int = 0
    peak_live: int = 0
    #: Per-shard time-series samples (tagged ``shard_id``), or ``None``
    #: when sampling was off.
    series: list | None = None
    #: Per-shard Chrome trace events (``pid`` = shard index), or
    #: ``None`` when tracing was off.
    trace: list | None = None


class ShardEngine:
    """One shard's DES engine plus its side of the barrier protocol."""

    def __init__(
        self,
        config: SimulationConfig,
        plan: ShardPlan,
        index: int,
        epoch: float,
    ) -> None:
        check_spatial_config(config, epoch)
        self.config = config
        self.plan = plan
        self.index = index
        self.epoch = epoch
        self.seed = config.seed
        self.duration = config.duration
        self.adaptive = config.scheme.lower() != "static"
        if config.kernel == "auto":
            kernel_name()
        else:
            set_kernel(config.kernel)
        ensure_configured()
        run_id = config.run_id or new_run_id()
        self.telemetry = begin_run(
            run_id=f"{run_id}-s{index}",
            enabled=True if config.telemetry else None,
        )
        # Span tracer: one Perfetto ``pid`` lane per shard, installed
        # before the network grabs its flush-tick handle.
        self.tracer = begin_trace(
            run_id=f"{run_id}-s{index}",
            enabled=True if config.trace else None,
            pid=index,
        )
        rows, cols, wrap = _hex_dimensions(config)
        self.topology = HexTopology(rows, cols, wrap=wrap)
        # Every shard builds the full-topology network so cell ids,
        # neighbour sets, and Eq. 5/6 semantics are exactly the global
        # ones; unowned cells simply never see an event.
        self.network = CellularNetwork(
            self.topology,
            capacity=config.capacity,
            cache_config=CacheConfig(
                interval=config.t_int,
                max_per_pair=config.n_quad,
                weights=config.weights,
                period=config.day_seconds,
            ),
            window_config=WindowControllerConfig(
                target_drop_probability=config.target_drop_probability,
                initial_window=config.t_start,
                step_policy=config.step_policy,
            ),
            handoff_overload=config.handoff_overload,
            reservation_cache=config.reservation_cache,
            coalesced_tick=False,
            grouped_flush=config.grouped_flush,
        )
        self.owned = plan.cells[index]
        self._owned_set = frozenset(self.owned)
        if config.warm_state is not None:
            config.warm_state.hydrate(self.network, cells=self._owned_set)
        if not self.adaptive:
            for cell in range(self.topology.num_cells):
                self.network.cell(cell).reserved_target = config.static_guard
        self.population = DEFAULT_HEX_POPULATION
        self.mix = TrafficMix(config.voice_ratio)
        if config.load_profile is not None:
            self.arrivals = ModulatedPoissonArrivals(
                config.load_profile,
                self.mix.mean_bandwidth,
                config.mean_lifetime,
            )
        else:
            self.arrivals = PoissonArrivals(
                self.mix.arrival_rate_for_load(
                    config.offered_load, config.mean_lifetime
                )
            )
        self.retry = RetryPolicy(
            delay=config.retry_delay,
            giveup_step=config.retry_giveup_step,
            enabled=config.retry_enabled,
        )
        self.metrics = MetricsCollector(
            self.topology.num_cells,
            warmup=config.warmup,
            tracked_cells=tuple(
                cell for cell in config.tracked_cells if cell in self._owned_set
            ),
            hourly=config.hourly_stats,
            hour_seconds=config.day_seconds / 24.0,
        )
        self.engine = Engine()
        self.sampler: TimeSeriesSampler | None = None
        if config.series_enabled:
            self.sampler = TimeSeriesSampler(
                self.engine,
                metrics=self.metrics,
                stations=[self.network.station(cell) for cell in self.owned],
                capacity=config.capacity,
                interval=config.series_interval,
                wall_interval=config.series_wall_interval,
                max_samples=config.series_max_samples,
                stream=config.series_path or None,
                shard_id=index,
                run_id=f"{run_id}-s{index}",
                label=config.label or config.scheme,
                telemetry=self.telemetry,
            )
        #: Wall time spent inside ``engine.run`` vs total shard wall
        #: time — their gap is the barrier-wait fraction the samples
        #: and the dashboard report.
        self._wall_started = wall_clock.perf_counter()
        self._run_wall = 0.0
        self.store = ConnectionStore(self.topology.num_cells)
        self._handle_cls = handle_class(self.store)
        self._handles: dict[int, object] = {}
        self._end_events: dict[int, Event] = {}
        self._crossing_events: dict[int, Event] = {}
        #: Boundary crossings awaiting shipment: (ctime, row, serial, dest).
        self._outgoing: list[tuple[float, int, int, int]] = []
        #: Per-arrival-cell renewal streams (order-independent names, so
        #: every shard count sees identical per-cell arrival processes).
        streams = RandomStreams(config.seed)
        self._arrival_rngs = {
            cell: streams.get(f"spatial-arrivals:{cell}")
            for cell in self.owned
        }
        self._arrival_index = {cell: 0 for cell in self.owned}
        self._activity = {cell: False for cell in self.owned}
        self._remote_activity: dict[int, bool] = {}
        self._remote_ms: dict[int, float] = {}
        self._nms = {cell: 0.0 for cell in self.owned}
        self._pending_install: list[int] = []
        self._local_requests: dict[int, list[tuple[int, float]]] = {}
        self._reply_values: dict[tuple[int, int], float] = {}
        self._sample_sums = {cell: [0.0, 0.0, 0] for cell in self.owned}
        #: Semantic event count: requests (retries included), hand-off
        #: arrivals, lifetime completions.  Engine bookkeeping events
        #: (departure halves, samples) are excluded so the count is the
        #: same for every shard count; the coordinator adds the global
        #: sample-tick count once.
        self.semantic_events = 0
        self.peak_live = 0
        for cell in self.owned:
            first = self.arrivals.next_arrival(0.0, self._arrival_rngs[cell])
            if first is not None and first <= self.duration:
                self.engine.call_at(
                    first,
                    self._on_arrival,
                    cell,
                    priority=EventPriority.ARRIVAL,
                )
        if config.sample_interval > 0 and self.owned:
            self.engine.call_at(
                config.sample_interval,
                self._on_sample,
                priority=EventPriority.MONITOR,
            )

    # -- barrier protocol ------------------------------------------------
    def barrier_begin(
        self,
        k: int,
        mirrors: list[tuple[int, bool, float]],
        migrations: list[tuple],
    ) -> list[tuple[int, int, float]]:
        """Open epoch ``k``: apply boundary state, emit cross-cut requests.

        Returns ``(supplier, target, t_est)`` requests whose supplier
        lives in another shard.
        """
        with self.tracer.span("barrier.begin", epoch=k, shard=self.index):
            return self._barrier_begin(k, mirrors, migrations)

    def _barrier_begin(
        self,
        k: int,
        mirrors: list[tuple[int, bool, float]],
        migrations: list[tuple],
    ) -> list[tuple[int, int, float]]:
        barrier = k * self.epoch
        self._barrier_time = barrier
        self._remote_activity = {}
        self._remote_ms = {}
        for cell, active, max_sojourn in mirrors:
            self._remote_activity[cell] = active
            self._remote_ms[cell] = max_sojourn
        station = self.network.station
        local_ms = {
            cell: station(cell).estimator.max_sojourn(barrier)
            for cell in self.owned
        }
        neighbors = self.topology.neighbors
        for cell in self.owned:
            best = 0.0
            for neighbor in neighbors(cell):
                value = local_ms.get(neighbor)
                if value is None:
                    value = self._remote_ms.get(neighbor, 0.0)
                if value > best:
                    best = value
            self._nms[cell] = best
        for payload in migrations:
            self.engine.call_at(
                payload[0],
                self._on_migration,
                payload,
                priority=EventPriority.HANDOFF,
            )
        requests_out: list[tuple[int, int, float]] = []
        self._pending_install = []
        self._local_requests = {}
        self._reply_values = {}
        if self.adaptive and k > 0:
            activity = self._activity
            remote_activity = self._remote_activity
            owner = self.plan.owner
            metrics = self.metrics
            for cell in self.owned:
                dirty = activity[cell]
                if not dirty:
                    for neighbor in neighbors(cell):
                        if activity.get(
                            neighbor, False
                        ) or remote_activity.get(neighbor, False):
                            dirty = True
                            break
                if not dirty:
                    continue
                cell_station = station(cell)
                t_est = cell_station.t_est
                cell_neighbors = neighbors(cell)
                # §4.1 message pattern, folded into the barrier: one
                # T_est announcement + one Eq. 5 reply per neighbour.
                metrics.total_calculations += 1
                metrics.total_messages += 2 * len(cell_neighbors)
                cell_station.messages_sent += len(cell_neighbors)
                self._pending_install.append(cell)
                for neighbor in cell_neighbors:
                    if owner[neighbor] == self.index:
                        self._local_requests.setdefault(neighbor, []).append(
                            (cell, t_est)
                        )
                    else:
                        requests_out.append((neighbor, cell, t_est))
        for cell in self.owned:
            self._activity[cell] = False
        return requests_out

    def evaluate(
        self, remote_requests: list[tuple[int, int, float]]
    ) -> list[tuple[int, int, float]]:
        """Answer Eq. 5 for every supplier this shard owns.

        Suppliers are processed in cell-id order and each supplier's
        requests in target-id order, so the batched estimator walk is
        shard-count-independent.  Returns replies whose target lives in
        another shard.
        """
        with self.tracer.span(
            "barrier.evaluate", shard=self.index, requests=len(remote_requests)
        ):
            return self._evaluate(remote_requests)

    def _evaluate(
        self, remote_requests: list[tuple[int, int, float]]
    ) -> list[tuple[int, int, float]]:
        merged = self._local_requests
        for supplier, target, t_est in remote_requests:
            merged.setdefault(supplier, []).append((target, t_est))
        owner = self.plan.owner
        replies_out: list[tuple[int, int, float]] = []
        for supplier in sorted(merged):
            requests = sorted(merged[supplier])
            station = self.network.station(supplier)
            station.messages_sent += len(requests)
            values = station.outgoing_reservation_multi(
                self._barrier_time, requests
            )
            for (target, _), value in zip(requests, values):
                if owner[target] == self.index:
                    self._reply_values[(supplier, target)] = value
                else:
                    replies_out.append((supplier, target, value))
        self._local_requests = {}
        return replies_out

    def run_epoch(
        self, k: int, replies: list[tuple[int, int, float]]
    ) -> tuple[dict[int, list], dict[int, list], tuple[float, int, int]]:
        """Install Eq. 6, run to the epoch end, ship boundary batches.

        Returns ``(mirrors, migrations, stats)``: the boundary batches
        keyed by destination shard, plus ``(now, events_processed,
        heap_len)`` so the coordinator can aggregate progress without
        another round trip.
        """
        for supplier, target, value in replies:
            self._reply_values[(supplier, target)] = value
        station = self.network.station
        neighbors = self.topology.neighbors
        reply_values = self._reply_values
        for cell in self._pending_install:
            contributions = [
                reply_values[(neighbor, cell)] for neighbor in neighbors(cell)
            ]
            target_station = station(cell)
            target_station.cell.reserved_target = aggregate_reservation(
                contributions
            )
            target_station.reservation_calculations += 1
        self._pending_install = []
        self._reply_values = {}
        until = min((k + 1) * self.epoch, self.duration)
        sampler = self.sampler
        observer = sampler.maybe_sample if sampler is not None else None
        run_started = wall_clock.perf_counter()
        with self.tracer.span("epoch.run", epoch=k, shard=self.index):
            self.engine.run(until=until, observer=observer)
        self._run_wall += wall_clock.perf_counter() - run_started
        if self.store.live > self.peak_live:
            self.peak_live = self.store.live
        with self.tracer.span("barrier.ship", epoch=k, shard=self.index):
            mirrors, migrations = self._ship(k, until)
        if sampler is not None and sampler.due(until):
            # Boundary sample (on the configured cadence, not every
            # epoch): tags the epoch and the fraction of shard wall time
            # spent waiting at barriers instead of running events.
            elapsed = wall_clock.perf_counter() - self._wall_started
            frac = 1.0 - self._run_wall / elapsed if elapsed > 0 else 0.0
            sampler.sample(epoch=k, barrier_wait_frac=round(frac, 4))
        stats = (
            self.engine.now,
            self.engine.events_processed,
            self.engine.queue_len,
        )
        return mirrors, migrations, stats

    def _ship(
        self, k: int, until: float
    ) -> tuple[dict[int, list], dict[int, list]]:
        """Pop due boundary crossings and snapshot boundary mirrors."""
        station = self.network.station
        # Ship every boundary crossing landing in the next epoch.  The
        # epoch <= MIN_NOTICE bound guarantees anything landing later
        # than that is still undrawn or already heaped for a later
        # barrier.
        deadline = (k + 2) * self.epoch
        outgoing = self._outgoing
        store = self.store
        columns = store.columns
        owner = self.plan.owner
        migrations: dict[int, list] = {}
        while outgoing and outgoing[0][0] <= deadline:
            ctime, row, serial, dest = heapq.heappop(outgoing)
            if store.serial_of(row) != serial:
                continue  # connection already ended; row recycled
            if float(columns["end_time"][row]) <= ctime:
                # The lifetime end this epoch or next beats the crossing
                # (DEPARTURE fires before HANDOFF at equal times); the
                # local end event will cancel the crossing.
                continue
            crossing = self._crossing_events.get(row)
            if crossing is None or crossing.cancelled or crossing.time != ctime:
                continue
            end_event = self._end_events.pop(row)
            end_event.cancel()
            payload = (
                ctime,
                dest,
                int(columns["cell"][row]),
                int(columns["birth_cell"][row]),
                int(columns["birth_seq"][row]),
                int(columns["hops"][row]),
                int(columns["heading"][row]),
                int(columns["pop"][row]),
                int(columns["bw_code"][row]),
                float(columns["end_time"][row]),
            )
            migrations.setdefault(owner[dest], []).append(payload)
        # Boundary mirrors: engine.now == until and nothing runs before
        # the next barrier, so these are the barrier-time values.
        mirrors: dict[int, list] = {}
        for target, cells in self.plan.boundary[self.index].items():
            mirrors[target] = [
                (
                    cell,
                    self._activity[cell],
                    station(cell).estimator.max_sojourn(until),
                )
                for cell in cells
            ]
        return mirrors, migrations

    # -- event handlers --------------------------------------------------
    def _on_arrival(self, cell_id: int) -> None:
        now = self.engine.now
        next_time = self.arrivals.next_arrival(now, self._arrival_rngs[cell_id])
        if next_time is not None and next_time <= self.duration:
            self.engine.call_at(
                next_time,
                self._on_arrival,
                cell_id,
                priority=EventPriority.ARRIVAL,
            )
        index = self._arrival_index[cell_id]
        self._arrival_index[cell_id] = index + 1
        self._handle_request(cell_id, index, 1)

    def _handle_request(self, cell_id: int, arr_index: int, attempt: int) -> None:
        now = self.engine.now
        self.semantic_events += 1
        rng = _derived_rng(self.seed, "req", cell_id, arr_index, attempt)
        traffic_class = self.mix.sample(rng)
        cell = self.network.cell(cell_id)
        admitted = cell.fits_new_connection(traffic_class.bandwidth)
        self.metrics.record_admission_test(0, 0)
        self.metrics.record_request(cell_id, now, blocked=not admitted)
        if not admitted:
            if self.retry.should_retry(attempt, rng):
                self.engine.call_in(
                    self.retry.delay,
                    self._handle_request,
                    cell_id,
                    arr_index,
                    attempt + 1,
                    priority=EventPriority.ARRIVAL,
                )
            return
        # Same draw order as HexMobilityModel.spawn: population class,
        # then an initial heading for moving mobiles.
        draw = rng.random()
        cumulative = 0.0
        pop_index = len(self.population) - 1
        for position, member in enumerate(self.population):
            cumulative += member.fraction
            if draw < cumulative:
                pop_index = position
                break
        member = self.population[pop_index]
        heading = rng.randrange(6) if member.mean_sojourn > 0 else 0
        lifetime = rng.expovariate(1.0 / self.config.mean_lifetime)
        store = self.store
        row = store.alloc()
        columns = store.columns
        columns["entry_time"][row] = now
        columns["end_time"][row] = now + lifetime
        columns["cell"][row] = cell_id
        columns["prev"][row] = -1
        columns["birth_cell"][row] = cell_id
        columns["birth_seq"][row] = arr_index
        columns["hops"][row] = 0
        columns["bw_code"][row] = 0 if traffic_class is VOICE else 1
        columns["pop"][row] = pop_index
        columns["heading"][row] = heading
        handle = self._handle_cls(row)
        self._handles[row] = handle
        cell.attach(handle)
        self._activity[cell_id] = True
        self._end_events[row] = self.engine.call_at(
            now + lifetime,
            self._on_lifetime_end,
            row,
            priority=EventPriority.DEPARTURE,
        )
        self._schedule_crossing(row)

    def _schedule_crossing(self, row: int) -> None:
        store = self.store
        columns = store.columns
        member = self.population[columns["pop"][row]]
        if member.mean_sojourn <= 0:
            return
        cell_id = int(columns["cell"][row])
        # Same draw order as HexMobilityModel.next_transition, keyed by
        # birth coordinates + hop count so the stream is identical no
        # matter which shard executes the hop.
        rng = _derived_rng(
            self.seed,
            "hop",
            int(columns["birth_cell"][row]),
            int(columns["birth_seq"][row]),
            int(columns["hops"][row]),
        )
        sojourn = rng.expovariate(1.0 / member.mean_sojourn)
        heading = int(columns["heading"][row]) % 6
        if rng.random() < member.heading_persistence:
            index = heading
        else:
            index = (heading + rng.choice((-1, 1))) % 6
        columns["heading"][row] = index
        neighbors = self.topology.neighbors(cell_id)
        next_cell = neighbors[index % len(neighbors)]
        ctime = self.engine.now + max(sojourn, HexMobilityModel.MIN_NOTICE)
        serial = store.serial_of(row)
        self._crossing_events[row] = self.engine.call_at(
            ctime,
            self._on_crossing,
            row,
            serial,
            next_cell,
            priority=EventPriority.HANDOFF,
        )
        if self.plan.owner[next_cell] != self.index:
            heapq.heappush(self._outgoing, (ctime, row, serial, next_cell))

    def _on_crossing(self, row: int, serial: int, next_cell: int) -> None:
        store = self.store
        if store.serial_of(row) != serial:
            return
        self._crossing_events.pop(row, None)
        now = self.engine.now
        columns = store.columns
        old_cell = int(columns["cell"][row])
        prev = int(columns["prev"][row])
        self.network.station(old_cell).record_departure(
            now,
            None if prev < 0 else prev,
            next_cell,
            float(columns["entry_time"][row]),
        )
        handle = self._handles[row]
        self.network.cell(old_cell).detach(handle)
        self._activity[old_cell] = True
        if self.plan.owner[next_cell] != self.index:
            # Departure half only: the arrival half was shipped at the
            # previous barrier and runs on the destination's owner.
            del self._handles[row]
            store.free(row)
            return
        self.semantic_events += 1
        dropped = not self.network.cell(next_cell).fits_handoff(
            BANDWIDTH_TABLE[columns["bw_code"][row]]
        )
        self.network.station(next_cell).window.on_handoff(
            dropped, self._nms[next_cell], now
        )
        self.metrics.record_handoff(next_cell, now, dropped=dropped)
        self._activity[next_cell] = True
        if dropped:
            end_event = self._end_events.pop(row, None)
            if end_event is not None:
                end_event.cancel()
            del self._handles[row]
            store.free(row)
            return
        columns["prev"][row] = old_cell
        columns["entry_time"][row] = now
        columns["cell"][row] = next_cell
        columns["hops"][row] += 1
        self.network.cell(next_cell).attach(handle)
        self._schedule_crossing(row)

    def _on_migration(self, payload: tuple) -> None:
        (
            _,
            dest,
            old_cell,
            birth_cell,
            birth_seq,
            hops,
            heading,
            pop_index,
            bw_code,
            end_time,
        ) = payload
        now = self.engine.now
        self.semantic_events += 1
        dropped = not self.network.cell(dest).fits_handoff(
            BANDWIDTH_TABLE[bw_code]
        )
        self.network.station(dest).window.on_handoff(
            dropped, self._nms[dest], now
        )
        self.metrics.record_handoff(dest, now, dropped=dropped)
        self._activity[dest] = True
        if dropped:
            return
        store = self.store
        row = store.alloc()
        columns = store.columns
        columns["entry_time"][row] = now
        columns["end_time"][row] = end_time
        columns["cell"][row] = dest
        columns["prev"][row] = old_cell
        columns["birth_cell"][row] = birth_cell
        columns["birth_seq"][row] = birth_seq
        columns["hops"][row] = hops + 1
        columns["bw_code"][row] = bw_code
        columns["pop"][row] = pop_index
        columns["heading"][row] = heading
        handle = self._handle_cls(row)
        self._handles[row] = handle
        self.network.cell(dest).attach(handle)
        self._end_events[row] = self.engine.call_at(
            end_time,
            self._on_lifetime_end,
            row,
            priority=EventPriority.DEPARTURE,
        )
        self._schedule_crossing(row)

    def _on_lifetime_end(self, row: int) -> None:
        now = self.engine.now
        self.semantic_events += 1
        self._end_events.pop(row, None)
        crossing = self._crossing_events.pop(row, None)
        if crossing is not None:
            crossing.cancel()
        store = self.store
        cell_id = int(store.columns["cell"][row])
        self.network.cell(cell_id).detach(self._handles.pop(row))
        self.metrics.record_completion(cell_id, now)
        self._activity[cell_id] = True
        store.free(row)

    def _on_sample(self) -> None:
        now = self.engine.now
        warm = now >= self.config.warmup
        station = self.network.station
        for cell_id in self.owned:
            cell_station = station(cell_id)
            reserved = cell_station.cell.reserved_target
            used = cell_station.cell.used_bandwidth
            self.metrics.sample_cell(
                cell_id, now, reserved, used, cell_station.t_est
            )
            if warm:
                sums = self._sample_sums[cell_id]
                sums[0] += reserved
                sums[1] += used
                sums[2] += 1
        next_time = now + self.config.sample_interval
        if next_time <= self.duration:
            self.engine.call_at(
                next_time, self._on_sample, priority=EventPriority.MONITOR
            )

    # -- finalisation ----------------------------------------------------
    def _harvest_telemetry(self) -> dict | None:
        tel = self.telemetry
        if not tel.enabled:
            return None
        engine = self.engine
        tel.counter("des.events_fired").inc(engine.events_processed)
        tel.counter("des.events_cancelled").inc(engine.events_cancelled)
        tel.counter("des.heap_compactions").inc(engine.heap_compactions)
        tel.counter("spatial.semantic_events").inc(self.semantic_events)
        tel.gauge("spatial.store_bytes").set(self.store.nbytes)
        tel.gauge("spatial.peak_live_connections").set(self.peak_live)
        messages = updates = 0
        for cell_id in self.owned:
            station = self.network.station(cell_id)
            messages += station.messages_sent
            updates += station.reservation_calculations
        tel.counter("cellular.messages_sent").inc(messages)
        tel.counter("cellular.reservation_updates").inc(updates)
        tel.counter("cellular.admission_tests").inc(
            self.metrics.total_admission_tests
        )
        return tel.snapshot()

    def finish(self, collect_state: bool = False) -> ShardResult:
        series = None
        if self.sampler is not None:
            self.sampler.final()
            series = self.sampler.series()
        trace = self.tracer.events()
        metrics = self.metrics
        statuses = {}
        for cell_id in self.owned:
            station = self.network.station(cell_id)
            counters = metrics.cells[cell_id]
            statuses[cell_id] = CellStatus(
                cell_id=cell_id,
                blocking_probability=counters.blocking_probability,
                dropping_probability=counters.dropping_probability,
                t_est=station.t_est,
                reserved_target=station.cell.reserved_target,
                used_bandwidth=station.cell.used_bandwidth,
            )
        hourly = {
            hour: (
                bucket.new_requests,
                bucket.blocked,
                bucket.handoff_attempts,
                bucket.handoff_drops,
            )
            for hour, bucket in metrics.hourly.items()
        }
        state = None
        if collect_state:
            state = {}
            for cell_id in self.owned:
                cache = getattr(
                    self.network.station(cell_id).estimator, "cache", None
                )
                if cache is None:
                    continue
                columns = cache.export_columns(self.duration)
                if columns:
                    state[cell_id] = columns
        return ShardResult(
            index=self.index,
            cells={cell: metrics.cells[cell] for cell in self.owned},
            statuses=statuses,
            hourly=hourly,
            t_est_traces=dict(metrics.t_est_traces),
            reservation_traces=dict(metrics.reservation_traces),
            phd_traces=dict(metrics.phd_traces),
            sample_sums={
                cell: tuple(sums) for cell, sums in self._sample_sums.items()
            },
            admission_tests=metrics.total_admission_tests,
            calculations=metrics.total_calculations,
            messages=metrics.total_messages,
            events=self.semantic_events,
            telemetry=self._harvest_telemetry(),
            state=state,
            store_bytes=self.store.nbytes,
            peak_live=self.peak_live,
            series=series,
            trace=trace,
        )


# ----------------------------------------------------------------------
# shard hosts
# ----------------------------------------------------------------------
class LocalShardHost:
    """In-process shard host: the sequential reference executor.

    Runs the identical barrier protocol without processes — the N=1
    path, the determinism tests, and a zero-overhead fallback when the
    host has fewer cores than shards.
    """

    def __init__(self, config, plan, index, epoch):
        self._engine = ShardEngine(config, plan, index, epoch)
        self._pending = None

    def send(self, op: str, *args) -> None:
        engine = self._engine
        if op == "barrier":
            self._pending = engine.barrier_begin(*args)
        elif op == "evaluate":
            self._pending = engine.evaluate(*args)
        elif op == "epoch":
            self._pending = engine.run_epoch(*args)
        elif op == "finish":
            self._pending = engine.finish(*args)
        else:  # pragma: no cover - protocol misuse
            raise ValueError(f"unknown shard op {op!r}")

    def recv(self):
        pending, self._pending = self._pending, None
        return pending

    def close(self) -> None:
        pass


def _shard_worker(conn, config, plan, index, epoch) -> None:
    """Persistent worker process: one ShardEngine driven over a pipe."""
    import traceback

    try:
        engine = ShardEngine(config, plan, index, epoch)
    except Exception:
        conn.send(("error", traceback.format_exc()))
        return
    while True:
        try:
            op, args = conn.recv()
        except EOFError:
            return
        if op == "stop":
            return
        try:
            if op == "barrier":
                value = engine.barrier_begin(*args)
            elif op == "evaluate":
                value = engine.evaluate(*args)
            elif op == "epoch":
                value = engine.run_epoch(*args)
            elif op == "finish":
                value = engine.finish(*args)
            else:
                raise ValueError(f"unknown shard op {op!r}")
        except Exception:
            conn.send(("error", traceback.format_exc()))
            return
        conn.send(("ok", value))


class ProcessShardHost:
    """A shard in a persistent worker process, driven over a Pipe.

    The coordinator sends one command per barrier phase to every host
    before collecting any reply, so shards run their epochs in
    parallel.
    """

    def __init__(self, config, plan, index, epoch, ctx):
        parent_conn, child_conn = ctx.Pipe()
        self._conn = parent_conn
        self._process = ctx.Process(
            target=_shard_worker,
            args=(child_conn, config, plan, index, epoch),
            daemon=True,
        )
        self._process.start()
        child_conn.close()

    def send(self, op: str, *args) -> None:
        self._conn.send((op, args))

    def recv(self):
        status, value = self._conn.recv()
        if status != "ok":
            raise RuntimeError(f"shard worker failed:\n{value}")
        return value

    def close(self) -> None:
        try:
            self._conn.send(("stop", ()))
        except (BrokenPipeError, OSError):  # pragma: no cover - dying worker
            pass
        self._process.join(timeout=10)
        if self._process.is_alive():  # pragma: no cover - hung worker
            self._process.terminate()
            self._process.join(timeout=5)
        self._conn.close()


# ----------------------------------------------------------------------
# coordinator
# ----------------------------------------------------------------------
class _EngineView:
    """Coordinator-side engine facade for :class:`ProgressReporter`.

    Aggregates the per-shard ``(now, events, heap)`` stats returned at
    each barrier into the two attributes the reporter reads, so one
    progress line covers the whole sharded run.
    """

    def __init__(self) -> None:
        self.now = 0.0
        self.events_processed = 0

    def update(self, stats_list) -> None:
        self.now = min(stats[0] for stats in stats_list)
        self.events_processed = sum(stats[1] for stats in stats_list)


def _merge_results(
    config: SimulationConfig,
    plan: ShardPlan,
    results: list[ShardResult],
    epoch: float,
    wall_seconds: float,
) -> SimulationResult:
    """Merge shard results in cell-id order (shard-count-invariant)."""
    num_cells = len(plan.owner)
    by_cell_counters = {}
    by_cell_status = {}
    for result in results:
        by_cell_counters.update(result.cells)
        by_cell_status.update(result.statuses)
    cells = [by_cell_counters[cell] for cell in range(num_cells)]
    statuses = [by_cell_status[cell] for cell in range(num_cells)]
    reservation_sum = 0.0
    used_sum = 0.0
    samples = 0
    sample_sums = {}
    for result in results:
        sample_sums.update(result.sample_sums)
    for cell in range(num_cells):
        cell_res, cell_used, cell_samples = sample_sums[cell]
        reservation_sum += cell_res
        used_sum += cell_used
        samples += cell_samples
    tests = sum(result.admission_tests for result in results)
    calculations = sum(result.calculations for result in results)
    messages = sum(result.messages for result in results)
    hourly_totals: dict[int, list[int]] = {}
    for result in results:
        for hour, values in result.hourly.items():
            bucket = hourly_totals.setdefault(hour, [0, 0, 0, 0])
            for position in range(4):
                bucket[position] += values[position]
    hourly = [
        HourlyBucket(hour, *hourly_totals[hour])
        for hour in sorted(hourly_totals)
    ]
    t_est_traces = {}
    reservation_traces = {}
    phd_traces = {}
    for result in results:
        t_est_traces.update(result.t_est_traces)
        reservation_traces.update(result.reservation_traces)
        phd_traces.update(result.phd_traces)
    events = sum(result.events for result in results)
    if config.sample_interval > 0:
        events += int(config.duration / config.sample_interval + 1e-9)
    snapshots = [
        result.telemetry for result in results if result.telemetry is not None
    ]
    if config.scheme.lower() == "static":
        policy = make_policy("static", guard_bandwidth=config.static_guard)
    else:
        policy = make_policy(config.scheme)
    return SimulationResult(
        label=config.label or config.scheme,
        scheme=policy.name,
        offered_load=config.offered_load,
        duration=config.duration,
        warmup=config.warmup,
        num_cells=num_cells,
        cells=cells,
        statuses=statuses,
        average_reservation=reservation_sum / samples if samples else 0.0,
        average_used=used_sum / samples if samples else 0.0,
        average_calculations=calculations / tests if tests else 0.0,
        average_messages=messages / tests if tests else 0.0,
        total_admission_tests=tests,
        hourly=hourly,
        t_est_traces=t_est_traces,
        reservation_traces=reservation_traces,
        phd_traces=phd_traces,
        events_processed=events,
        wall_seconds=wall_seconds,
        run_id=config.run_id or new_run_id(),
        telemetry=merge_snapshots(snapshots) if snapshots else None,
        timeseries=merge_series(result.series for result in results),
        trace_events=merge_traces(result.trace for result in results),
    )


def run_spatial(
    config: SimulationConfig,
    shards: int,
    *,
    processes: bool | None = None,
    epoch: float = 1.0,
    collect_state: bool = False,
):
    """Run a hex city across ``shards`` row-band shards.

    ``processes=None`` uses worker processes whenever ``shards > 1``;
    ``False`` forces the in-process sequential hosts (tests, or
    core-starved machines); ``True`` forces one process per shard.
    Returns the merged :class:`SimulationResult` — bit-identical in
    :meth:`~SimulationResult.metrics_key` for every shard count — or a
    ``(result, state)`` pair when ``collect_state`` is set, where
    ``state`` maps every cell to its exported quadruplet columns.
    """
    check_spatial_config(config, epoch)
    rows, cols, wrap = _hex_dimensions(config)
    topology = HexTopology(rows, cols, wrap=wrap)
    plan = partition_hex(topology, shards)
    if processes is None:
        processes = shards > 1
    started = wall_clock.perf_counter()
    hosts = []
    try:
        if processes:
            import multiprocessing

            # Prefer fork (as the sweep pool does): workers inherit the
            # warm interpreter instead of re-importing numpy apiece,
            # which otherwise dominates short runs.  The engine is still
            # built inside the worker from the pickled plan, so the
            # start method never affects results.
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context(
                "fork" if "fork" in methods else "spawn"
            )
            hosts = [
                ProcessShardHost(config, plan, index, epoch, ctx)
                for index in range(shards)
            ]
        else:
            hosts = [
                LocalShardHost(config, plan, index, epoch)
                for index in range(shards)
            ]
        epochs = max(1, -int(-config.duration // epoch))
        reporter = None
        view = None
        if config.progress_interval > 0:
            view = _EngineView()
            reporter = ProgressReporter(
                view,
                config.duration,
                interval=config.progress_interval,
                label=f"{config.label or config.scheme} x{shards}sh",
            )
        pending = [({}, {}, None) for _ in range(shards)]
        for k in range(epochs):
            mirrors_for = [[] for _ in range(shards)]
            migrations_for = [[] for _ in range(shards)]
            for shard_mirrors, shard_migrations, _ in pending:
                for target, items in shard_mirrors.items():
                    mirrors_for[target].extend(items)
                for target, items in shard_migrations.items():
                    migrations_for[target].extend(items)
            for items in migrations_for:
                # Deterministic scheduling order no matter which source
                # shard shipped each hand-off.
                items.sort()
            for index, host in enumerate(hosts):
                host.send("barrier", k, mirrors_for[index], migrations_for[index])
            request_batches = [host.recv() for host in hosts]
            requests_for = [[] for _ in range(shards)]
            for batch in request_batches:
                for supplier, target, t_est in batch:
                    requests_for[plan.owner[supplier]].append(
                        (supplier, target, t_est)
                    )
            for index, host in enumerate(hosts):
                host.send("evaluate", requests_for[index])
            reply_batches = [host.recv() for host in hosts]
            replies_for = [[] for _ in range(shards)]
            for batch in reply_batches:
                for supplier, target, value in batch:
                    replies_for[plan.owner[target]].append(
                        (supplier, target, value)
                    )
            for index, host in enumerate(hosts):
                host.send("epoch", k, replies_for[index])
            pending = [host.recv() for host in hosts]
            if reporter is not None:
                view.update([stats for _, _, stats in pending])
                reporter.beat()
        for host in hosts:
            host.send("finish", collect_state)
        results = [host.recv() for host in hosts]
        if reporter is not None:
            reporter.final()
    finally:
        for host in hosts:
            host.close()
    wall_seconds = wall_clock.perf_counter() - started
    merged = _merge_results(config, plan, results, epoch, wall_seconds)
    if collect_state:
        state = {}
        for result in results:
            state.update(result.state or {})
        return merged, state
    return merged


# ----------------------------------------------------------------------
# campaign support: per-shard checkpoints + merged manifest
# ----------------------------------------------------------------------
def write_spatial_checkpoint(
    day_dir, plan: ShardPlan, state: dict, meta: dict
) -> dict:
    """Write one shard checkpoint file per shard plus ``manifest.json``.

    Each shard file carries its owned cells' exported quadruplet
    columns as canonical JSON; the manifest records one CRC-32 per
    file so a later warm start fails loudly on torn or edited
    checkpoints (same contract as the durable state store).
    """
    day_dir = Path(day_dir)
    day_dir.mkdir(parents=True, exist_ok=True)
    entries = []
    for shard in range(plan.shards):
        cells_payload = {}
        for cell in plan.cells[shard]:
            columns = state.get(cell)
            if not columns:
                continue
            cells_payload[str(cell)] = {
                (
                    f"{'-' if prev is None else prev}:{next_cell}"
                ): [list(times), list(sojourns)]
                for (prev, next_cell), (times, sojourns) in sorted(
                    columns.items(),
                    key=lambda item: (item[0][0] is not None, item[0]),
                )
            }
        payload = {"shard": shard, "cells": cells_payload}
        encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        path = day_dir / f"shard-{shard:02d}.json"
        path.write_text(encoded)
        entries.append(
            {
                "file": path.name,
                "crc32": zlib.crc32(encoded.encode("utf-8")),
                "cells": len(cells_payload),
            }
        )
    manifest = dict(meta)
    manifest["shards"] = plan.shards
    manifest["files"] = entries
    (day_dir / "manifest.json").write_text(
        json.dumps(manifest, indent=2, sort_keys=True)
    )
    return manifest


def load_spatial_checkpoint(day_dir) -> dict:
    """Load and CRC-verify a day checkpoint back into export form."""
    day_dir = Path(day_dir)
    manifest = json.loads((day_dir / "manifest.json").read_text())
    exports: dict = {}
    for entry in manifest["files"]:
        path = day_dir / entry["file"]
        raw = path.read_text()
        if zlib.crc32(raw.encode("utf-8")) != entry["crc32"]:
            raise ValueError(f"spatial checkpoint corrupted: {path}")
        payload = json.loads(raw)
        for cell_text, pairs in payload["cells"].items():
            cell_exports = {}
            for key, (times, sojourns) in pairs.items():
                prev_text, next_text = key.split(":")
                prev = None if prev_text == "-" else int(prev_text)
                cell_exports[(prev, int(next_text))] = (
                    [float(value) for value in times],
                    [float(value) for value in sojourns],
                )
            exports[int(cell_text)] = cell_exports
    return exports


@dataclass
class SpatialDayResult:
    """Summary of one simulated day of a spatial campaign."""

    day: int
    seed: int
    blocking_probability: float
    dropping_probability: float
    events: int
    quadruplets: int
    wall_seconds: float
    checkpoint: str


def run_spatial_campaign(
    config: SimulationConfig,
    shards: int,
    days: int,
    state_dir,
    *,
    processes: bool | None = None,
    epoch: float = 1.0,
    jsonl_path=None,
) -> list[SpatialDayResult]:
    """Run ``days`` chained spatial days, warm-starting each from disk.

    Day ``d`` runs with seed ``RandomStreams(config.seed).spawn(d)``;
    its estimator history is checkpointed per shard under
    ``state_dir/day-<d>/`` and day ``d+1`` warm-starts from the
    *written files* (CRC-verified), so a campaign interrupted between
    days resumes from durable state.
    """
    if days < 1:
        raise ValueError("days must be >= 1")
    check_spatial_config(config, epoch)
    rows, cols, wrap = _hex_dimensions(config)
    plan = partition_hex(HexTopology(rows, cols, wrap=wrap), shards)
    state_dir = Path(state_dir)
    state_dir.mkdir(parents=True, exist_ok=True)
    streams = RandomStreams(config.seed)
    store = None
    handle = None
    reports: list[SpatialDayResult] = []
    jsonl = Path(jsonl_path) if jsonl_path is not None else None
    try:
        for day in range(days):
            day_seed = streams.spawn(day).seed
            day_config = replace(
                config,
                seed=day_seed,
                warm_state=handle,
                run_id=f"{config.run_id or 'spatial-campaign'}-day{day}",
            )
            result, state = run_spatial(
                day_config,
                shards,
                processes=processes,
                epoch=epoch,
                collect_state=True,
            )
            day_dir = state_dir / f"day-{day:03d}"
            write_spatial_checkpoint(
                day_dir,
                plan,
                state,
                {
                    "day": day,
                    "seed": day_seed,
                    "base_seed": config.seed,
                    "hex_rows": rows,
                    "hex_cols": cols,
                    "hex_wrap": wrap,
                    "scheme": config.scheme,
                },
            )
            # Warm-start the next day from the durable files, not the
            # in-memory state: proves the checkpoint round trip daily.
            exports = load_spatial_checkpoint(day_dir)
            if store is not None:
                store.close()
            store = SharedColumnStore(exports)
            handle = store.handle()
            quadruplets = sum(
                len(times)
                for pairs in exports.values()
                for times, _ in pairs.values()
            )
            report = SpatialDayResult(
                day=day,
                seed=day_seed,
                blocking_probability=result.blocking_probability,
                dropping_probability=result.dropping_probability,
                events=result.events_processed,
                quadruplets=quadruplets,
                wall_seconds=result.wall_seconds,
                checkpoint=str(day_dir),
            )
            reports.append(report)
            if jsonl is not None:
                with jsonl.open("a", encoding="utf-8") as stream:
                    stream.write(
                        json.dumps(
                            {
                                "day": report.day,
                                "seed": report.seed,
                                "p_cb": report.blocking_probability,
                                "p_hd": report.dropping_probability,
                                "events": report.events,
                                "quadruplets": report.quadruplets,
                                "checkpoint": report.checkpoint,
                            },
                            sort_keys=True,
                        )
                        + "\n"
                    )
    finally:
        if store is not None:
            store.close()
    return reports
